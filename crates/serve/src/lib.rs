//! `silo-serve` — simulation-as-a-service infrastructure.
//!
//! A long-running daemon that accepts scenario submissions over a
//! dependency-free HTTP/1.1 layer, decomposes each job into individual
//! sweep points on a bounded worker pool, and stores every completed
//! row in an on-disk **content-addressed cache** keyed by a canonical
//! hash of the point's full configuration. Overlapping sweeps — across
//! clients, across restarts — only ever compute the points nobody has
//! computed before.
//!
//! The crate is deliberately simulator-agnostic: it depends only on
//! `silo-types` and drives any [`JobEngine`] implementation. The
//! `silo-sim` crate provides the real engine (scenario parsing via
//! `Simulation::builder()`, point execution via its bench harness) and
//! hosts the `silo-sim serve` subcommand; tests here use mock engines.
//! This split keeps the dependency graph acyclic — the daemon cannot
//! know about the simulator whose binary embeds it.
//!
//! ## Endpoints
//!
//! | Method & path            | Purpose                                      |
//! |--------------------------|----------------------------------------------|
//! | `POST /jobs`             | Submit a scenario body; `202` with job id    |
//! | `GET /jobs/{id}`         | Job progress snapshot                        |
//! | `GET /jobs/{id}/result`  | Block until done; full result document       |
//! | `GET /jobs/{id}/stream`  | Rows streamed live as chunked NDJSON; with   |
//! |                          | `?telemetry=epoch` (or `x-silo-stream:       |
//! |                          | epoch`), typed records interleaving epoch    |
//! |                          | telemetry with rows                          |
//! | `GET /status`            | Daemon counters (queue, compute, cache)      |
//! | `GET /healthz`           | Liveness probe (no job-state lock taken)     |
//! | `GET /metrics`           | Prometheus text exposition of daemon metrics |
//! | `GET /trace`             | Request/job spans as Chrome trace-event JSON |
//! | `GET /logs`              | Structured log tail as NDJSON                |
//! |                          | (`?level=info&n=100`)                        |
//! | `GET /version`           | Workspace version                            |
//! | `POST /shutdown`         | Graceful shutdown (drain, journal persists)  |
//!
//! Backpressure is explicit: `429` when a client exceeds its active-job
//! quota, `503` when the global point queue is full or the daemon is
//! draining.

#![forbid(unsafe_code)]

pub mod cache;
pub mod http;
pub mod server;

pub use cache::RowCache;
pub use server::{start, ServeConfig, ServerHandle};

pub use silo_obs as obs;

/// A planned job: the engine's job value plus how many sweep points it
/// decomposes into and the canonical hash of the whole sweep.
pub struct JobPlan<J> {
    /// Engine-defined job state, shared by every point of the job.
    pub job: J,
    /// Number of sweep points; indices `0..points` address them.
    pub points: usize,
    /// Canonical content hash of the full sweep (stable across
    /// scenario-file key reordering and whitespace).
    pub sweep_hash: String,
}

/// A completed sweep point: the rendered row plus any auxiliary typed
/// event records produced alongside it.
///
/// Events are newline-free NDJSON objects (e.g. `{"type":"epoch",...}`
/// epoch-telemetry records) that the daemon stores next to the row in
/// the cache and interleaves ahead of the row on the opt-in stream.
/// They are *not* part of the result document, so the `silo-bench/v1`
/// bytes stay identical whether or not any events exist.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PointOutput {
    /// The rendered result row.
    pub row: String,
    /// Auxiliary typed records, in emission order.
    pub events: Vec<String>,
}

impl PointOutput {
    /// A point with a row and no auxiliary events.
    pub fn row_only(row: String) -> Self {
        PointOutput {
            row,
            events: Vec::new(),
        }
    }
}

/// The pluggable simulator behind the daemon.
///
/// Implementations must be deterministic for caching to be sound: for
/// a fixed submission body, `point_key(i)` must identify the complete
/// configuration of point `i`, and `run_point(i)` must be a pure
/// function of that configuration — equal keys ⇒ byte-equal rows (and
/// byte-equal event records). `document` must likewise depend only on
/// the job and its rows, so a result reconstructed from cached rows is
/// bit-identical to one computed fresh.
pub trait JobEngine: Send + Sync + 'static {
    /// Per-job state shared by all of the job's points.
    type Job: Send + Sync + 'static;

    /// Parses and validates a submission body into a planned job.
    ///
    /// # Errors
    ///
    /// A human-readable validation message; the daemon answers `400`.
    fn plan(&self, body: &str) -> Result<JobPlan<Self::Job>, String>;

    /// The content-address of point `index`: lowercase hex (8–128
    /// chars), covering every input that affects the row's bytes.
    fn point_key(&self, job: &Self::Job, index: usize) -> String;

    /// Runs point `index` to completion, returning the rendered row
    /// plus any auxiliary event records.
    ///
    /// # Errors
    ///
    /// A human-readable failure; the daemon fails every subscribed job.
    fn run_point(&self, job: &Self::Job, index: usize) -> Result<PointOutput, String>;

    /// Renders the final result document from the job's completed rows
    /// (one per point, in point order).
    fn document(&self, job: &Self::Job, rows: &[String]) -> String;
}
