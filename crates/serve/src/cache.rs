//! The on-disk content-addressed result cache.
//!
//! Every completed sweep point's rendered row is stored under its
//! canonical content hash (64 lowercase hex characters, computed by the
//! [`crate::JobEngine`] — for `silo-sim` a SHA-256 over the resolved
//! point descriptor). Layout shards by the first two hex characters so
//! no directory grows unboundedly:
//!
//! ```text
//! <root>/rows/ab/abcdef....json
//! ```
//!
//! Properties the daemon relies on:
//!
//! * **Pure function of the key.** A row is immutable once written;
//!   `get` after `put` returns the identical bytes. Writes go through a
//!   temp file + rename, so a row is never observed half-written, even
//!   by a concurrent daemon sharing the directory.
//! * **Safe to delete.** Removing any file (or the whole directory)
//!   only costs recompute — which is also the eviction story: when the
//!   entry count exceeds the configured cap after a write, the
//!   oldest-modified rows are removed until the cap holds again.
//! * **Crash tolerant.** A `kill -9` loses at most rows not yet
//!   renamed into place; everything completed before the crash is
//!   served on restart (the `--resume` path).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Subdirectory of the cache root holding row files.
const ROWS_DIR: &str = "rows";
/// Subdirectory holding auxiliary event records (NDJSON sidecars,
/// e.g. epoch telemetry), parallel to `rows/` and keyed identically.
/// Sidecars are not counted against the entry cap; evicting a row
/// best-effort removes its sidecar too.
const EVENTS_DIR: &str = "events";
/// Row file extension.
const ROW_EXT: &str = "json";
/// Event sidecar extension.
const EVENTS_EXT: &str = "ndjson";

/// A content-addressed row store rooted at one directory.
pub struct RowCache {
    root: PathBuf,
    /// Maximum row files kept; exceeding it evicts oldest-modified
    /// entries. Zero disables the cache entirely (every `get` misses,
    /// every `put` is dropped).
    max_entries: usize,
    /// Approximate entry count (exact while one daemon owns the dir).
    entries: AtomicU64,
    /// Rows removed by cap enforcement since this cache was opened.
    evictions: AtomicU64,
    /// Serializes evictions so concurrent writers don't scan twice.
    evict_lock: Mutex<()>,
}

impl RowCache {
    /// Opens (creating if needed) a cache rooted at `root`, counting any
    /// rows already present from previous runs.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating or scanning the directory.
    pub fn open(root: &Path, max_entries: usize) -> io::Result<RowCache> {
        let rows = root.join(ROWS_DIR);
        std::fs::create_dir_all(&rows)?;
        let mut count = 0u64;
        for shard in std::fs::read_dir(&rows)? {
            let shard = shard?.path();
            if shard.is_dir() {
                count += std::fs::read_dir(&shard)?.count() as u64;
            }
        }
        Ok(RowCache {
            root: root.to_path_buf(),
            max_entries,
            entries: AtomicU64::new(count),
            evictions: AtomicU64::new(0),
            evict_lock: Mutex::new(()),
        })
    }

    /// Rows removed by cap enforcement since this cache was opened.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Current row count (approximate under concurrent external writers).
    pub fn len(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The file path for `key` under `dir` with `ext`, or `None` for
    /// malformed keys. Keys must be lowercase hex (the engine hashes
    /// into this form); anything else is rejected so a buggy engine
    /// can never address outside the cache directory.
    fn path_in(&self, dir: &str, ext: &str, key: &str) -> Option<PathBuf> {
        if key.len() < 8
            || key.len() > 128
            || !key
                .bytes()
                .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
        {
            return None;
        }
        Some(
            self.root
                .join(dir)
                .join(&key[..2])
                .join(format!("{key}.{ext}")),
        )
    }

    /// The row file path for `key`, or `None` for malformed keys.
    fn path_for(&self, key: &str) -> Option<PathBuf> {
        self.path_in(ROWS_DIR, ROW_EXT, key)
    }

    /// The event sidecar path for `key`, or `None` for malformed keys.
    fn events_path_for(&self, key: &str) -> Option<PathBuf> {
        self.path_in(EVENTS_DIR, EVENTS_EXT, key)
    }

    /// Fetches the row stored under `key`, if present.
    pub fn get(&self, key: &str) -> Option<String> {
        if self.max_entries == 0 {
            return None;
        }
        std::fs::read_to_string(self.path_for(key)?).ok()
    }

    /// Stores `row` under `key` (atomic: temp file + rename). Overwrites
    /// are idempotent — rows are pure functions of their key.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` for malformed keys and propagates
    /// filesystem errors.
    pub fn put(&self, key: &str, row: &str) -> io::Result<()> {
        if self.max_entries == 0 {
            return Ok(());
        }
        let path = self
            .path_for(key)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "malformed cache key"))?;
        let dir = path.parent().expect("row path has a shard directory");
        std::fs::create_dir_all(dir)?;
        // The temp name includes the key, so two daemons writing the
        // same row race only against identical bytes.
        let tmp = dir.join(format!("{key}.tmp"));
        std::fs::write(&tmp, row)?;
        let existed = path.exists();
        std::fs::rename(&tmp, &path)?;
        if !existed {
            let now = self.entries.fetch_add(1, Ordering::Relaxed) + 1;
            if now > self.max_entries as u64 {
                self.evict();
            }
        }
        Ok(())
    }

    /// Fetches the auxiliary event records stored alongside `key`, if
    /// any. Absence is normal: rows written before events existed, or
    /// points that produced none.
    pub fn get_events(&self, key: &str) -> Option<Vec<String>> {
        if self.max_entries == 0 {
            return None;
        }
        let text = std::fs::read_to_string(self.events_path_for(key)?).ok()?;
        Some(text.lines().map(str::to_string).collect())
    }

    /// Stores `events` as the NDJSON sidecar of `key` (atomic, like
    /// [`RowCache::put`]). An empty slice is a no-op — absence and
    /// emptiness are indistinguishable by design.
    ///
    /// # Errors
    ///
    /// Returns `InvalidInput` for malformed keys and propagates
    /// filesystem errors.
    pub fn put_events(&self, key: &str, events: &[String]) -> io::Result<()> {
        if self.max_entries == 0 || events.is_empty() {
            return Ok(());
        }
        let path = self
            .events_path_for(key)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "malformed cache key"))?;
        let dir = path.parent().expect("events path has a shard directory");
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!("{key}.tmp"));
        let mut text = String::new();
        for e in events {
            text.push_str(e);
            text.push('\n');
        }
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, &path)
    }

    /// Removes oldest-modified rows until the count is back under the
    /// cap. Failures are ignored — eviction is best-effort; a row that
    /// survives costs nothing but disk.
    fn evict(&self) {
        let Ok(_guard) = self.evict_lock.lock() else {
            return;
        };
        if self.entries.load(Ordering::Relaxed) <= self.max_entries as u64 {
            return;
        }
        let mut rows: Vec<(std::time::SystemTime, PathBuf)> = Vec::new();
        let Ok(shards) = std::fs::read_dir(self.root.join(ROWS_DIR)) else {
            return;
        };
        for shard in shards.flatten() {
            let Ok(files) = std::fs::read_dir(shard.path()) else {
                continue;
            };
            for f in files.flatten() {
                if let Ok(meta) = f.metadata() {
                    let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
                    rows.push((mtime, f.path()));
                }
            }
        }
        self.entries.store(rows.len() as u64, Ordering::Relaxed);
        if rows.len() <= self.max_entries {
            return;
        }
        rows.sort();
        let excess = rows.len() - self.max_entries;
        for (_, path) in rows.into_iter().take(excess) {
            if std::fs::remove_file(&path).is_ok() {
                self.entries.fetch_sub(1, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                if let Some(key) = path.file_stem().and_then(|s| s.to_str()) {
                    if let Some(events) = self.events_path_for(key) {
                        let _ = std::fs::remove_file(events);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("silo-serve-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> String {
        silo_types::sha::sha256_hex(&n.to_le_bytes())
    }

    #[test]
    fn put_then_get_roundtrips_and_persists_across_opens() {
        let dir = temp_dir("roundtrip");
        let cache = RowCache::open(&dir, 100).expect("open");
        assert!(cache.is_empty());
        assert_eq!(cache.get(&key(1)), None);
        cache.put(&key(1), "{\"row\":1}").expect("put");
        assert_eq!(cache.get(&key(1)).as_deref(), Some("{\"row\":1}"));
        assert_eq!(cache.len(), 1);
        drop(cache);
        // A fresh daemon over the same directory sees the row.
        let cache = RowCache::open(&dir, 100).expect("reopen");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key(1)).as_deref(), Some("{\"row\":1}"));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn malformed_keys_are_rejected_not_written() {
        let dir = temp_dir("badkey");
        let cache = RowCache::open(&dir, 10).expect("open");
        for bad in [
            "",
            "short",
            "../../../etc/passwd",
            "ABCDEF0123456789",
            &"g".repeat(64),
        ] {
            assert!(cache.get(bad).is_none(), "{bad}");
            assert!(cache.put(bad, "x").is_err(), "{bad}");
        }
        assert!(cache.is_empty());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn overwrites_do_not_double_count() {
        let dir = temp_dir("overwrite");
        let cache = RowCache::open(&dir, 10).expect("open");
        cache.put(&key(7), "a").expect("put");
        cache.put(&key(7), "a").expect("put again");
        assert_eq!(cache.len(), 1);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn eviction_keeps_the_newest_rows() {
        let dir = temp_dir("evict");
        let cache = RowCache::open(&dir, 3).expect("open");
        for n in 0..5u64 {
            cache.put(&key(n), &format!("row{n}")).expect("put");
            // mtime granularity on some filesystems is coarse; space the
            // writes so oldest-first ordering is unambiguous.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(cache.len() <= 3, "cap enforced, len {}", cache.len());
        // The newest row always survives.
        assert_eq!(cache.get(&key(4)).as_deref(), Some("row4"));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn event_sidecars_roundtrip_and_track_row_eviction() {
        let dir = temp_dir("events");
        let cache = RowCache::open(&dir, 2).expect("open");
        assert_eq!(cache.get_events(&key(1)), None);
        cache.put(&key(1), "row1").expect("put");
        cache
            .put_events(&key(1), &["{\"type\":\"epoch\",\"n\":0}".to_string()])
            .expect("put events");
        assert_eq!(
            cache.get_events(&key(1)),
            Some(vec!["{\"type\":\"epoch\",\"n\":0}".to_string()])
        );
        // Empty event lists are a no-op, indistinguishable from absence.
        cache.put_events(&key(2), &[]).expect("empty put");
        assert_eq!(cache.get_events(&key(2)), None);
        // Sidecars don't count against the row cap.
        assert_eq!(cache.len(), 1);
        // Evicting the row takes the sidecar with it.
        for n in 10..13u64 {
            cache.put(&key(n), "filler").expect("put");
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert_eq!(cache.get(&key(1)), None, "row evicted");
        assert_eq!(cache.get_events(&key(1)), None, "sidecar evicted");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn zero_cap_disables_the_cache() {
        let dir = temp_dir("disabled");
        let cache = RowCache::open(&dir, 0).expect("open");
        cache.put(&key(1), "row").expect("put is a no-op");
        assert_eq!(cache.get(&key(1)), None);
        assert!(cache.is_empty());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
