//! Hand-rolled HTTP/1.1 over `std::net` — the serve counterpart of the
//! dependency-free `json.rs` in `silo-sim`: exactly what the daemon
//! needs and nothing more.
//!
//! One request per connection (`Connection: close` everywhere), plain
//! and chunked responses, hard limits on every dimension an untrusted
//! peer controls (request-line length, header count/size, body size).
//! Parse failures map to typed [`HttpError`]s carrying the status code
//! the handler should answer with.

use std::fmt;
use std::io::{BufRead, Write};

/// Largest accepted request line or single header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Largest accepted header count.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body (scenario files are a few KiB).
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// A request-parsing failure, carrying the HTTP status to answer with.
#[derive(Debug)]
pub struct HttpError {
    /// Response status code (400, 413, 505, ...).
    pub status: u16,
    /// Human-readable reason, returned in the error body.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

/// A parsed request: method, split path/query, lower-cased header
/// names, and the complete body.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (upper-case as sent).
    pub method: String,
    /// The path component, query string stripped.
    pub path: String,
    /// `key=value` pairs of the query string, undecoded, in order.
    pub query: Vec<(String, String)>,
    /// Headers with ASCII-lower-cased names, in order.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes).
    pub body: String,
}

impl Request {
    /// First header named `name` (give it lower-cased), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter named `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one line terminated by `\n`, stripping the `\r\n` / `\n`
/// terminator, with a length cap.
fn read_line(reader: &mut impl BufRead) -> Result<String, HttpError> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let n = std::io::Read::read(reader, &mut byte)
            .map_err(|e| HttpError::new(400, format!("read failed: {e}")))?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed mid-request"));
        }
        if byte[0] == b'\n' {
            break;
        }
        if buf.len() >= MAX_LINE {
            return Err(HttpError::new(431, "header line too long"));
        }
        buf.push(byte[0]);
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| HttpError::new(400, "non-UTF-8 header bytes"))
}

/// Reads and parses one full request from `reader`.
///
/// # Errors
///
/// Returns an [`HttpError`] with the status the caller should answer:
/// 400 for malformed syntax, 413 for an oversized body, 431 for
/// oversized headers, 505 for non-1.x versions.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let request_line = read_line(reader)?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::new(400, "empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "request line lacks a path"))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "request line lacks a version"))?;
    if parts.next().is_some() {
        return Err(HttpError::new(400, "malformed request line"));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(505, format!("unsupported {version}")));
    }
    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_text
        .split('&')
        .filter(|p| !p.is_empty())
        .map(|p| match p.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (p.to_string(), String::new()),
        })
        .collect();

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::new(431, "too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::new(400, format!("malformed header '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::new(400, format!("bad content-length '{v}'")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(HttpError::new(413, "request body too large"));
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(reader, &mut body)
        .map_err(|e| HttpError::new(400, format!("short body: {e}")))?;
    let body =
        String::from_utf8(body).map_err(|_| HttpError::new(400, "non-UTF-8 request body"))?;

    Ok(Request {
        method,
        path: path.to_string(),
        query,
        headers,
        body,
    })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

fn head(status: u16, content_type: &str) -> String {
    format!(
        "HTTP/1.1 {status} {}\r\n\
         Server: silo-serve/{}\r\n\
         Content-Type: {content_type}\r\n\
         Connection: close\r\n",
        reason(status),
        silo_types::VERSION,
    )
}

/// Writes a complete fixed-length response.
///
/// # Errors
///
/// Propagates socket write errors (the peer hung up).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        w,
        "{}Content-Length: {}\r\n\r\n{body}",
        head(status, content_type),
        body.len(),
    )?;
    w.flush()
}

/// Starts a chunked response; follow with [`write_chunk`] calls and one
/// [`finish_chunked`].
///
/// # Errors
///
/// Propagates socket write errors.
pub fn start_chunked(w: &mut impl Write, status: u16, content_type: &str) -> std::io::Result<()> {
    write!(
        w,
        "{}Transfer-Encoding: chunked\r\n\r\n",
        head(status, content_type)
    )?;
    w.flush()
}

/// Writes one chunk of a chunked response (empty data is skipped — an
/// empty chunk would terminate the stream).
///
/// # Errors
///
/// Propagates socket write errors.
pub fn write_chunk(w: &mut impl Write, data: &str) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n{data}\r\n", data.len())?;
    w.flush()
}

/// Terminates a chunked response.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn finish_chunked(w: &mut impl Write) -> std::io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

/// Escapes `s` for embedding in a JSON string literal (the daemon's
/// hand-built status/error bodies).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let req = parse(
            "POST /jobs?priority=3&stream HTTP/1.1\r\n\
             Host: localhost\r\n\
             X-Client: alice\r\n\
             Content-Length: 11\r\n\
             \r\n\
             cores = 16\n",
        )
        .expect("valid request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.query_param("priority"), Some("3"));
        assert_eq!(req.query_param("stream"), Some(""));
        assert_eq!(req.header("x-client"), Some("alice"));
        assert_eq!(req.body, "cores = 16\n");
    }

    #[test]
    fn parses_a_bare_get() {
        let req = parse("GET /status HTTP/1.1\r\n\r\n").expect("valid");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/status");
        assert!(req.body.is_empty());
        assert!(req.query.is_empty());
    }

    #[test]
    fn rejects_malformed_requests_with_the_right_status() {
        assert_eq!(parse("GARBAGE\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET /x HTTP/2\r\n\r\n").unwrap_err().status, 505);
        assert_eq!(
            parse("GET /x HTTP/1.1\r\nbroken header\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        // Declared body longer than the stream.
        assert_eq!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")
                .unwrap_err()
                .status,
            400
        );
        let huge = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert_eq!(parse(&huge).unwrap_err().status, 413);
    }

    #[test]
    fn oversized_header_lines_are_431() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_LINE + 10));
        assert_eq!(parse(&raw).unwrap_err().status, 431);
    }

    #[test]
    fn responses_carry_the_version_header_and_length() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", "{\"ok\":true}").expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains(&format!("Server: silo-serve/{}", silo_types::VERSION)));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn chunked_stream_roundtrips() {
        let mut out = Vec::new();
        start_chunked(&mut out, 200, "application/x-ndjson").expect("start");
        write_chunk(&mut out, "row1\n").expect("chunk");
        write_chunk(&mut out, "").expect("empty chunk skipped");
        write_chunk(&mut out, "row2\n").expect("chunk");
        finish_chunked(&mut out).expect("finish");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(
            text.ends_with("5\r\nrow1\n\r\n5\r\nrow2\n\r\n0\r\n\r\n"),
            "{text}"
        );
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }
}
