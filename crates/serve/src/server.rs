//! The daemon: accept loop, priority point queue, bounded worker pool,
//! write-ahead job journal, and the HTTP routes tying them together.
//!
//! A job arrives as a scenario body (`POST /jobs`), is planned by the
//! [`JobEngine`] into an ordered list of sweep points, and each point
//! becomes one queue entry keyed by its content hash. Points already in
//! the [`RowCache`] are satisfied at submission without touching the
//! queue; points another job is already computing are *subscribed to*
//! rather than re-enqueued, so concurrent overlapping sweeps share
//! work. Completed rows are written back to the cache, making every
//! result durable the moment it exists.
//!
//! Durability is write-ahead: the submission body is journalled to
//! `<cache>/queue/<id>.job` before any point runs and removed when the
//! job finishes, so a crash (even `kill -9`) loses no accepted work —
//! restarting with `resume` replays the journal and completed points
//! come straight from the cache.

use std::collections::{BinaryHeap, HashMap};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use silo_obs::metrics::{Counter, Gauge, Histo, Registry};
use silo_obs::{EventLog, LogLevel, SpanRecorder};

use crate::cache::RowCache;
use crate::http;
use crate::{JobEngine, JobPlan, PointOutput};

/// Subdirectory of the cache root holding the write-ahead job journal.
const QUEUE_DIR: &str = "queue";
/// How often blocked waiters re-check the shutdown flag.
const WAIT_TICK: Duration = Duration::from_millis(200);

/// Daemon configuration. `Default` gives sensible local-use values;
/// the CLI overrides from flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads running sweep points.
    pub workers: usize,
    /// Maximum sweep points queued across all jobs; submissions that
    /// would exceed it are rejected with 503 (backpressure).
    pub queue_capacity: usize,
    /// Maximum simultaneously active (incomplete) jobs per client;
    /// submissions over quota are rejected with 429.
    pub client_quota: usize,
    /// Root directory of the content-addressed row cache + journal.
    pub cache_dir: PathBuf,
    /// Maximum rows kept in the cache (oldest evicted beyond this);
    /// zero disables caching.
    pub cache_cap: usize,
    /// Replay journalled jobs from a previous run at startup.
    pub resume: bool,
    /// Write the span ring as Chrome trace-event JSON to this file when
    /// the daemon shuts down (`GET /trace` serves the same document
    /// live).
    pub trace_out: Option<PathBuf>,
    /// Maximum request/job spans kept in the trace ring (oldest
    /// evicted).
    pub trace_capacity: usize,
    /// Append every structured log record as an NDJSON line to this
    /// file (`GET /logs` serves the bounded in-memory tail either way).
    pub log_out: Option<PathBuf>,
    /// Maximum structured log records kept in the in-memory ring
    /// (oldest evicted; the `log_out` file keeps everything).
    pub log_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 2,
            queue_capacity: 1024,
            client_quota: 4,
            cache_dir: PathBuf::from(".silo-serve"),
            cache_cap: 100_000,
            resume: false,
            trace_out: None,
            trace_capacity: 4096,
            log_out: None,
            log_capacity: 4096,
        }
    }
}

/// The daemon's metric handles, all registered on one [`Registry`]
/// rendered by `GET /metrics`. Counters and the run-latency histogram
/// are bumped at event sites; the queue/jobs gauges are synced from
/// authoritative daemon state at scrape time, and the busy-workers
/// gauge tracks `run_point` entry/exit.
struct Metrics {
    registry: Registry,
    /// `silo_serve_queue_depth` — sweep points currently queued.
    queue_depth: Gauge,
    /// `silo_serve_workers_busy` — workers inside `run_point` right now.
    workers_busy: Gauge,
    /// `silo_serve_jobs_active` — jobs not yet complete or failed.
    jobs_active: Gauge,
    /// `silo_serve_cache_hits_total` — points served without compute.
    cache_hits: Counter,
    /// `silo_serve_cache_misses_total` — points actually computed.
    cache_misses: Counter,
    /// `silo_serve_point_run_microseconds` — per-point run wall time.
    run_us: Histo,
    /// `silo_serve_stream_bytes_total` — NDJSON bytes streamed.
    stream_bytes: Counter,
    /// `silo_obs_spans_dropped_total` — spans evicted from the bounded
    /// trace ring (synced from the recorder at scrape time).
    spans_dropped: Counter,
    /// `silo_serve_uptime_seconds` — seconds since the daemon started
    /// (synced at scrape time).
    uptime: Gauge,
}

impl Metrics {
    fn new() -> Metrics {
        let registry = Registry::new();
        registry.declare_counter(
            "silo_serve_requests_total",
            "HTTP requests handled, by endpoint and response status.",
        );
        registry
            .gauge_with(
                "silo_build_info",
                "Build metadata carried in labels; the value is always 1.",
                &[("version", silo_types::VERSION)],
            )
            .set(1);
        Metrics {
            queue_depth: registry.gauge(
                "silo_serve_queue_depth",
                "Sweep points currently queued across all jobs.",
            ),
            workers_busy: registry.gauge(
                "silo_serve_workers_busy",
                "Worker threads currently running a sweep point.",
            ),
            jobs_active: registry.gauge(
                "silo_serve_jobs_active",
                "Jobs accepted but not yet complete or failed.",
            ),
            cache_hits: registry.counter(
                "silo_serve_cache_hits_total",
                "Sweep points served from the row cache or shared inflight work.",
            ),
            cache_misses: registry.counter(
                "silo_serve_cache_misses_total",
                "Sweep points computed because no cached row existed.",
            ),
            run_us: registry.histogram(
                "silo_serve_point_run_microseconds",
                "Wall-clock microseconds per computed sweep point.",
            ),
            stream_bytes: registry.counter(
                "silo_serve_stream_bytes_total",
                "Bytes streamed over /jobs/{id}/stream chunks.",
            ),
            spans_dropped: registry.counter(
                "silo_obs_spans_dropped_total",
                "Trace spans evicted from the bounded span ring.",
            ),
            uptime: registry.gauge(
                "silo_serve_uptime_seconds",
                "Seconds since the daemon started.",
            ),
            registry,
        }
    }

    /// The per-endpoint/per-status request counter series.
    fn requests(&self, endpoint: &str, status: u16) -> Counter {
        self.registry.counter_with(
            "silo_serve_requests_total",
            "HTTP requests handled, by endpoint and response status.",
            &[("endpoint", endpoint), ("status", &status.to_string())],
        )
    }
}

/// One queued sweep point. Ordering (for the max-heap): higher
/// priority first, then older job, then lower point index — so a
/// high-priority sweep preempts queued work but points within a job
/// still complete in order.
#[derive(Debug, PartialEq, Eq)]
struct QueuedPoint {
    priority: i64,
    job: u64,
    idx: usize,
    key: String,
    /// Enqueue timestamp on the span recorder's clock, for the
    /// queue-wait span. Not part of the ordering (keys are unique in
    /// the queue, so the tiebreak never reaches it).
    enqueued_us: u64,
}

impl Ord for QueuedPoint {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.job.cmp(&self.job))
            .then_with(|| other.idx.cmp(&self.idx))
            .then_with(|| self.key.cmp(&other.key))
    }
}

impl PartialOrd for QueuedPoint {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Where a job is in its lifecycle.
enum JobPhase {
    Active,
    Complete,
    Failed(String),
}

/// Everything the daemon tracks about one job.
struct JobState<J> {
    client: String,
    job: Arc<J>,
    sweep_hash: String,
    /// Completed row text per point, filled as points finish.
    rows: Vec<Option<String>>,
    /// Auxiliary event records per point (empty when the point produced
    /// none, or when a cache hit predates event sidecars).
    events: Vec<Vec<String>>,
    done: usize,
    /// Points satisfied from the cache at submission.
    cached: usize,
    phase: JobPhase,
}

/// Mutable daemon state behind the mutex.
struct State<J> {
    next_job: u64,
    queue: BinaryHeap<QueuedPoint>,
    jobs: HashMap<u64, JobState<J>>,
    /// Content key -> subscribers `(job, point index)` awaiting it.
    /// Presence means the point is queued or running; later jobs
    /// needing the same key subscribe instead of re-enqueueing.
    inflight: HashMap<String, Vec<(u64, usize)>>,
    /// Active (incomplete) job count per client, for quota checks.
    active_jobs: HashMap<String, usize>,
}

/// Shared daemon internals: engine, cache, state, and wakeups.
struct Shared<E: JobEngine> {
    engine: E,
    cache: RowCache,
    cfg: ServeConfig,
    bound: SocketAddr,
    state: Mutex<State<E::Job>>,
    /// Signals workers that the queue grew.
    work_cv: Condvar,
    /// Signals result/stream waiters that rows landed.
    row_cv: Condvar,
    shutdown: AtomicBool,
    /// Points actually computed by `run_point` (not cache hits) —
    /// the counter the zero-recompute acceptance test watches.
    computed: AtomicU64,
    /// Points satisfied from the cache or by inflight sharing.
    cache_hits: AtomicU64,
    /// Metric handles behind `GET /metrics`.
    metrics: Metrics,
    /// Request/job lifecycle spans behind `GET /trace` / `--trace-out`.
    spans: SpanRecorder,
    /// Structured event log behind `GET /logs` / `--log-out`.
    log: EventLog,
    /// Daemon start time, for the uptime gauge.
    started: Instant,
}

impl<E: JobEngine> Shared<E> {
    fn lock_state(&self) -> MutexGuard<'_, State<E::Job>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn journal_path(&self, id: u64) -> PathBuf {
        self.cfg.cache_dir.join(QUEUE_DIR).join(format!("{id}.job"))
    }
}

/// A running daemon: bound address plus the accept/worker threads.
pub struct ServerHandle<E: JobEngine> {
    shared: Arc<Shared<E>>,
    threads: Vec<JoinHandle<()>>,
}

impl<E: JobEngine> ServerHandle<E> {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.bound
    }

    /// Sweep points computed (cache misses run to completion).
    pub fn points_computed(&self) -> u64 {
        self.shared.computed.load(Ordering::Relaxed)
    }

    /// Sweep points served from the cache or shared inflight work.
    pub fn points_cached(&self) -> u64 {
        self.shared.cache_hits.load(Ordering::Relaxed)
    }

    /// Initiates graceful shutdown: running points finish and persist,
    /// queued points stay journalled for a later `resume`.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// The current `GET /metrics` exposition text.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.registry.render()
    }

    /// The current `GET /trace` Chrome trace-event document.
    pub fn trace_json(&self) -> String {
        self.shared.spans.chrome_json()
    }

    /// The daemon's structured event log (the ring `GET /logs` serves).
    pub fn log(&self) -> &EventLog {
        &self.shared.log
    }

    /// Blocks until the accept loop and all workers have exited, then
    /// writes the trace file if `trace_out` is configured.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
        if let Some(path) = &self.shared.cfg.trace_out {
            match std::fs::write(path, self.shared.spans.chrome_json()) {
                Ok(()) => eprintln!("silo-serve: wrote trace to {}", path.display()),
                Err(e) => eprintln!("silo-serve: trace write to {} failed: {e}", path.display()),
            }
        }
    }
}

/// Starts the daemon: binds, opens the cache, optionally replays the
/// journal, then spawns the worker pool and accept loop.
///
/// # Errors
///
/// Propagates bind and cache-directory I/O failures.
pub fn start<E: JobEngine>(engine: E, cfg: ServeConfig) -> io::Result<ServerHandle<E>> {
    let cache = RowCache::open(&cfg.cache_dir, cfg.cache_cap)?;
    std::fs::create_dir_all(cfg.cache_dir.join(QUEUE_DIR))?;
    let log = match &cfg.log_out {
        Some(path) => EventLog::with_sink(cfg.log_capacity.max(1), path)?,
        None => EventLog::new(cfg.log_capacity.max(1)),
    };
    let listener = TcpListener::bind(&cfg.addr)?;
    let bound = listener.local_addr()?;
    let shared = Arc::new(Shared {
        engine,
        cache,
        bound,
        state: Mutex::new(State {
            next_job: 1,
            queue: BinaryHeap::new(),
            jobs: HashMap::new(),
            inflight: HashMap::new(),
            active_jobs: HashMap::new(),
        }),
        work_cv: Condvar::new(),
        row_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        computed: AtomicU64::new(0),
        cache_hits: AtomicU64::new(0),
        metrics: Metrics::new(),
        spans: SpanRecorder::new(cfg.trace_capacity.max(1)),
        log,
        started: Instant::now(),
        cfg,
    });
    shared.log.info(
        "serve.daemon",
        "listening",
        &[
            ("addr", &bound.to_string()),
            ("workers", &shared.cfg.workers.to_string()),
        ],
    );
    if shared.cfg.resume {
        resume_journal(&shared);
    }
    let mut threads = Vec::with_capacity(shared.cfg.workers + 1);
    for i in 0..shared.cfg.workers {
        let s = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("silo-serve-worker-{i}"))
                .spawn(move || worker_loop(&s))?,
        );
    }
    let s = Arc::clone(&shared);
    threads.push(
        std::thread::Builder::new()
            .name("silo-serve-accept".to_string())
            .spawn(move || accept_loop(&s, &listener))?,
    );
    Ok(ServerHandle { shared, threads })
}

fn initiate_shutdown<E: JobEngine>(shared: &Shared<E>) {
    if !shared.shutdown.swap(true, Ordering::SeqCst) {
        shared.log.info(
            "serve.daemon",
            "drain initiated; running points finish, queued points stay journalled",
            &[],
        );
    }
    shared.work_cv.notify_all();
    shared.row_cv.notify_all();
    // The accept loop blocks in `accept()`; poke it awake.
    let _ = TcpStream::connect(shared.bound);
}

// ---------------------------------------------------------------------------
// Submission

enum SubmitError {
    Invalid(String),
    QuotaExceeded { limit: usize },
    QueueFull { capacity: usize },
    ShuttingDown,
    Io(String),
}

impl SubmitError {
    fn status(&self) -> u16 {
        match self {
            SubmitError::Invalid(_) => 400,
            SubmitError::QuotaExceeded { .. } => 429,
            SubmitError::QueueFull { .. } | SubmitError::ShuttingDown => 503,
            SubmitError::Io(_) => 500,
        }
    }

    fn message(&self) -> String {
        match self {
            SubmitError::Invalid(m) => m.clone(),
            SubmitError::QuotaExceeded { limit } => {
                format!("client quota exceeded ({limit} active jobs)")
            }
            SubmitError::QueueFull { capacity } => {
                format!("point queue full ({capacity} points); retry later")
            }
            SubmitError::ShuttingDown => "shutting down".to_string(),
            SubmitError::Io(m) => m.clone(),
        }
    }
}

struct SubmitOutcome {
    id: u64,
    points: usize,
    cached: usize,
    sweep_hash: String,
}

/// Plans and enqueues one submission. Cache-satisfied points never
/// enter the queue; points already inflight are subscribed to.
fn submit<E: JobEngine>(
    shared: &Shared<E>,
    client: &str,
    priority: i64,
    body: &str,
    journal: bool,
) -> Result<SubmitOutcome, SubmitError> {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err(SubmitError::ShuttingDown);
    }
    // Plan (scenario parse + validation through the engine) and hash
    // every point outside the lock; both are pure.
    let JobPlan {
        job,
        points,
        sweep_hash,
    } = shared.engine.plan(body).map_err(SubmitError::Invalid)?;
    if points == 0 {
        return Err(SubmitError::Invalid("job has no sweep points".to_string()));
    }
    let keys: Vec<String> = (0..points)
        .map(|i| shared.engine.point_key(&job, i))
        .collect();
    let job = Arc::new(job);

    let mut st = shared.lock_state();
    if st.active_jobs.get(client).copied().unwrap_or(0) >= shared.cfg.client_quota {
        return Err(SubmitError::QuotaExceeded {
            limit: shared.cfg.client_quota,
        });
    }
    let mut rows: Vec<Option<String>> = vec![None; points];
    let mut events: Vec<Vec<String>> = vec![Vec::new(); points];
    let mut misses: Vec<usize> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        match shared.cache.get(key) {
            Some(row) => {
                rows[i] = Some(row);
                events[i] = shared.cache.get_events(key).unwrap_or_default();
            }
            None => misses.push(i),
        }
    }
    let fresh = misses
        .iter()
        .filter(|&&i| !st.inflight.contains_key(&keys[i]))
        .count();
    if st.queue.len() + fresh > shared.cfg.queue_capacity {
        return Err(SubmitError::QueueFull {
            capacity: shared.cfg.queue_capacity,
        });
    }

    let id = st.next_job;
    st.next_job += 1;
    let cached = points - misses.len();
    shared
        .cache_hits
        .fetch_add(cached as u64, Ordering::Relaxed);
    shared.metrics.cache_hits.add(cached as u64);

    if misses.is_empty() {
        // Fully served from the cache: complete on arrival, nothing to
        // journal, no quota consumed.
        st.jobs.insert(
            id,
            JobState {
                client: client.to_string(),
                job,
                sweep_hash: sweep_hash.clone(),
                rows,
                events,
                done: points,
                cached,
                phase: JobPhase::Complete,
            },
        );
        drop(st);
        shared.log.info(
            "serve.job",
            "job complete at submission (all points cached)",
            &[
                ("job", &id.to_string()),
                ("client", client),
                ("points", &points.to_string()),
            ],
        );
        shared.row_cv.notify_all();
        return Ok(SubmitOutcome {
            id,
            points,
            cached,
            sweep_hash,
        });
    }

    if journal {
        // Write-ahead: the body hits disk before any point runs, so a
        // crash after this line cannot lose the accepted job.
        let entry = format!("client {client}\npriority {priority}\n\n{body}");
        std::fs::write(shared.journal_path(id), entry)
            .map_err(|e| SubmitError::Io(format!("journal write failed: {e}")))?;
        shared.log.debug(
            "serve.journal",
            "job journalled ahead of execution",
            &[("job", &id.to_string()), ("client", client)],
        );
    }
    *st.active_jobs.entry(client.to_string()).or_insert(0) += 1;
    let enqueued_us = shared.spans.now_us();
    for &i in &misses {
        let key = keys[i].clone();
        match st.inflight.get_mut(&key) {
            Some(subs) => {
                // Another job is already computing this point; ride it.
                subs.push((id, i));
                shared.cache_hits.fetch_add(1, Ordering::Relaxed);
                shared.metrics.cache_hits.inc();
            }
            None => {
                st.inflight.insert(key.clone(), vec![(id, i)]);
                st.queue.push(QueuedPoint {
                    priority,
                    job: id,
                    idx: i,
                    key,
                    enqueued_us,
                });
            }
        }
    }
    shared
        .metrics
        .queue_depth
        .set(i64::try_from(st.queue.len()).unwrap_or(i64::MAX));
    st.jobs.insert(
        id,
        JobState {
            client: client.to_string(),
            job,
            sweep_hash: sweep_hash.clone(),
            rows,
            events,
            done: cached,
            cached,
            phase: JobPhase::Active,
        },
    );
    drop(st);
    shared.log.info(
        "serve.job",
        "job accepted",
        &[
            ("job", &id.to_string()),
            ("client", client),
            ("points", &points.to_string()),
            ("cached", &cached.to_string()),
        ],
    );
    shared.work_cv.notify_all();
    Ok(SubmitOutcome {
        id,
        points,
        cached,
        sweep_hash,
    })
}

/// Replays `<cache>/queue/*.job` entries left by a previous run.
/// Completed points come straight from the cache, so only genuinely
/// missing work re-runs.
fn resume_journal<E: JobEngine>(shared: &Shared<E>) {
    let dir = shared.cfg.cache_dir.join(QUEUE_DIR);
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return;
    };
    let mut files: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "job"))
        .collect();
    files.sort();
    for path in files {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let _ = std::fs::remove_file(&path);
        let Some((header, body)) = text.split_once("\n\n") else {
            shared.log.warn(
                "serve.journal",
                "malformed journal entry skipped",
                &[("source", &path.display().to_string())],
            );
            eprintln!("silo-serve: skipping malformed journal {}", path.display());
            continue;
        };
        let mut client = "anon";
        let mut priority = 0i64;
        for line in header.lines() {
            if let Some(c) = line.strip_prefix("client ") {
                client = c;
            } else if let Some(p) = line.strip_prefix("priority ") {
                priority = p.parse().unwrap_or(0);
            }
        }
        match submit(shared, client, priority, body, true) {
            Ok(out) => {
                shared.log.info(
                    "serve.journal",
                    "journal replayed",
                    &[
                        ("job", &out.id.to_string()),
                        ("points", &out.points.to_string()),
                        ("cached", &out.cached.to_string()),
                        ("source", &path.display().to_string()),
                    ],
                );
                eprintln!(
                    "silo-serve: resumed job {} ({} points, {} from cache)",
                    out.id, out.points, out.cached
                );
            }
            Err(e) => {
                shared.log.warn(
                    "serve.journal",
                    "journalled job dropped",
                    &[
                        ("source", &path.display().to_string()),
                        ("error", &e.message()),
                    ],
                );
                eprintln!(
                    "silo-serve: dropping journalled job from {}: {}",
                    path.display(),
                    e.message()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Workers

fn worker_loop<E: JobEngine>(shared: &Shared<E>) {
    loop {
        let task = {
            let mut st = shared.lock_state();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(p) = st.queue.pop() {
                    shared
                        .metrics
                        .queue_depth
                        .set(i64::try_from(st.queue.len()).unwrap_or(i64::MAX));
                    break p;
                }
                st = shared
                    .work_cv
                    .wait_timeout(st, WAIT_TICK)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        // The point span brackets the whole enqueue→deliver lifecycle;
        // its id is reserved up front so the phase spans can link to it
        // even though it records last.
        let spans = &shared.spans;
        let point_span = spans.reserve();
        spans.record(
            "queue-wait",
            "job",
            Some(point_span),
            task.enqueued_us,
            spans.now_us(),
        );
        // Close the probe-then-enqueue race: the row may have landed
        // (another worker, or a prior run sharing the cache directory)
        // since this point was queued.
        if let Some(row) = shared.cache.get(&task.key) {
            shared.cache_hits.fetch_add(1, Ordering::Relaxed);
            shared.metrics.cache_hits.inc();
            let events = shared.cache.get_events(&task.key).unwrap_or_default();
            spans.record_with_id(
                point_span,
                "point",
                "job",
                None,
                task.enqueued_us,
                spans.now_us(),
            );
            deliver(shared, &task.key, &Ok(PointOutput { row, events }));
            continue;
        }
        let job = {
            let st = shared.lock_state();
            st.jobs.get(&task.job).map(|j| Arc::clone(&j.job))
        };
        let Some(job) = job else {
            deliver(shared, &task.key, &Err("job vanished".to_string()));
            continue;
        };
        // A panicking engine must not wedge subscribers or poison the
        // daemon; convert it into a failed point.
        shared.metrics.workers_busy.inc();
        let t_run = spans.now_us();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.engine.run_point(&job, task.idx)
        }))
        .unwrap_or_else(|_| Err("panic while running sweep point".to_string()));
        let t_run_end = spans.now_us();
        shared.metrics.workers_busy.dec();
        spans.record("run", "job", Some(point_span), t_run, t_run_end);
        shared
            .metrics
            .run_us
            .observe(t_run_end.saturating_sub(t_run));
        match &result {
            Ok(_) => shared.log.debug(
                "serve.point",
                "point computed",
                &[
                    ("job", &task.job.to_string()),
                    ("point", &task.idx.to_string()),
                    ("us", &t_run_end.saturating_sub(t_run).to_string()),
                ],
            ),
            Err(e) => shared.log.error(
                "serve.point",
                "point failed",
                &[
                    ("job", &task.job.to_string()),
                    ("point", &task.idx.to_string()),
                    ("error", e),
                ],
            ),
        }
        if let Ok(out) = &result {
            shared.computed.fetch_add(1, Ordering::Relaxed);
            shared.metrics.cache_misses.inc();
            let t_write = spans.now_us();
            let evicted_before = shared.cache.evictions();
            if let Err(e) = shared.cache.put(&task.key, &out.row) {
                eprintln!("silo-serve: cache write failed for {}: {e}", task.key);
            }
            if let Err(e) = shared.cache.put_events(&task.key, &out.events) {
                eprintln!("silo-serve: event write failed for {}: {e}", task.key);
            }
            let evicted = shared.cache.evictions().saturating_sub(evicted_before);
            if evicted > 0 {
                shared.log.warn(
                    "serve.cache",
                    "rows evicted to hold the cache cap",
                    &[
                        ("evicted", &evicted.to_string()),
                        ("rows", &shared.cache.len().to_string()),
                    ],
                );
            }
            spans.record(
                "cache-write",
                "job",
                Some(point_span),
                t_write,
                spans.now_us(),
            );
        }
        spans.record_with_id(
            point_span,
            "point",
            "job",
            None,
            task.enqueued_us,
            spans.now_us(),
        );
        deliver(shared, &task.key, &result);
    }
}

/// Hands a finished point to every subscribed job and finalizes jobs
/// that just completed (or failed): quota released, journal removed.
fn deliver<E: JobEngine>(shared: &Shared<E>, key: &str, result: &Result<PointOutput, String>) {
    let mut st = shared.lock_state();
    let subs = st.inflight.remove(key).unwrap_or_default();
    let mut finished: Vec<(String, u64, Option<String>)> = Vec::new();
    for (job_id, idx) in subs {
        let Some(job) = st.jobs.get_mut(&job_id) else {
            continue;
        };
        match result {
            Ok(out) => {
                if job.rows[idx].is_none() {
                    job.rows[idx] = Some(out.row.clone());
                    job.events[idx] = out.events.clone();
                    job.done += 1;
                }
                if job.done == job.rows.len() && matches!(job.phase, JobPhase::Active) {
                    job.phase = JobPhase::Complete;
                    finished.push((job.client.clone(), job_id, None));
                }
            }
            Err(e) => {
                if matches!(job.phase, JobPhase::Active) {
                    job.phase = JobPhase::Failed(e.clone());
                    finished.push((job.client.clone(), job_id, Some(e.clone())));
                }
            }
        }
    }
    for (client, id, _) in &finished {
        if let Some(n) = st.active_jobs.get_mut(client) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                st.active_jobs.remove(client);
            }
        }
        let _ = std::fs::remove_file(shared.journal_path(*id));
    }
    drop(st);
    for (client, id, error) in finished {
        match error {
            None => shared.log.info(
                "serve.job",
                "job complete",
                &[("job", &id.to_string()), ("client", &client)],
            ),
            Some(e) => shared.log.error(
                "serve.job",
                "job failed",
                &[("job", &id.to_string()), ("client", &client), ("error", &e)],
            ),
        }
    }
    shared.row_cv.notify_all();
}

// ---------------------------------------------------------------------------
// HTTP front end

fn accept_loop<E: JobEngine>(shared: &Arc<Shared<E>>, listener: &TcpListener) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else {
            continue;
        };
        let s = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("silo-serve-conn".to_string())
            .spawn(move || handle_connection(&s, stream));
    }
}

/// Per-request observability context: the span recorder plus the
/// request's reserved parent span id, threaded through every handler
/// so respond spans link back to their request.
struct ReqCtx<'a> {
    spans: &'a SpanRecorder,
    req_span: u64,
}

fn handle_connection<E: JobEngine>(shared: &Shared<E>, stream: TcpStream) {
    // A stalled peer must not pin a connection thread during parsing;
    // blocking endpoints only ever *write* after this point.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let Ok(clone) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(clone);
    let mut writer = stream;
    let spans = &shared.spans;
    let req_span = spans.reserve();
    let ctx = ReqCtx { spans, req_span };
    let t_start = spans.now_us();
    let parsed = http::read_request(&mut reader);
    spans.record("parse", "http", Some(req_span), t_start, spans.now_us());
    let (endpoint, status) = match parsed {
        Ok(req) => {
            let endpoint = endpoint_label(&req.path);
            let t_route = spans.now_us();
            // 0 = the response never made it onto the wire (peer gone).
            let status = route(shared, &ctx, &req, &mut writer).unwrap_or(0);
            spans.record("route", "http", Some(req_span), t_route, spans.now_us());
            (endpoint, status)
        }
        Err(e) => {
            let status = error_response(&ctx, &mut writer, e.status, &e.message).unwrap_or(0);
            ("parse-error", status)
        }
    };
    spans.record_with_id(req_span, "request", "http", None, t_start, spans.now_us());
    shared.metrics.requests(endpoint, status).inc();
}

/// Normalizes a request path to its route template, bounding the
/// request-counter label cardinality no matter what clients send.
fn endpoint_label(path: &str) -> &'static str {
    let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segs.as_slice() {
        ["version"] => "/version",
        ["status"] => "/status",
        ["healthz"] => "/healthz",
        ["metrics"] => "/metrics",
        ["trace"] => "/trace",
        ["logs"] => "/logs",
        ["shutdown"] => "/shutdown",
        ["jobs"] => "/jobs",
        ["jobs", _] => "/jobs/{id}",
        ["jobs", _, "result"] => "/jobs/{id}/result",
        ["jobs", _, "stream"] => "/jobs/{id}/stream",
        _ => "other",
    }
}

/// Writes a response and records its respond span; returns the status
/// so the caller can count the request.
fn respond(
    ctx: &ReqCtx<'_>,
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<u16> {
    let t0 = ctx.spans.now_us();
    http::write_response(w, status, content_type, body)?;
    ctx.spans.record(
        "respond",
        "http",
        Some(ctx.req_span),
        t0,
        ctx.spans.now_us(),
    );
    Ok(status)
}

fn error_response(
    ctx: &ReqCtx<'_>,
    w: &mut impl Write,
    status: u16,
    message: &str,
) -> io::Result<u16> {
    let body = format!("{{\"error\":\"{}\"}}\n", http::json_escape(message));
    respond(ctx, w, status, "application/json", &body)
}

fn route<E: JobEngine>(
    shared: &Shared<E>,
    ctx: &ReqCtx<'_>,
    req: &http::Request,
    w: &mut TcpStream,
) -> io::Result<u16> {
    let segs: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segs.as_slice()) {
        ("GET", ["version"]) => {
            let body = format!("{{\"version\":\"{}\"}}\n", silo_types::VERSION);
            respond(ctx, w, 200, "application/json", &body)
        }
        ("GET", ["status"]) => handle_status(shared, ctx, w),
        // Liveness only: answers without touching job state, so a wedged
        // state mutex can't make the daemon look dead to a prober.
        ("GET", ["healthz"]) => respond(ctx, w, 200, "text/plain", "ok\n"),
        ("GET", ["metrics"]) => handle_metrics(shared, ctx, w),
        ("GET", ["trace"]) => respond(ctx, w, 200, "application/json", &shared.spans.chrome_json()),
        ("GET", ["logs"]) => handle_logs(shared, ctx, req, w),
        ("POST", ["jobs"]) => handle_submit(shared, ctx, req, w),
        ("GET", ["jobs", id]) => match id.parse::<u64>() {
            Ok(id) => handle_job_status(shared, ctx, id, w),
            Err(_) => error_response(ctx, w, 404, "no such job"),
        },
        ("GET", ["jobs", id, "result"]) => match id.parse::<u64>() {
            Ok(id) => handle_result(shared, ctx, id, w),
            Err(_) => error_response(ctx, w, 404, "no such job"),
        },
        ("GET", ["jobs", id, "stream"]) => match id.parse::<u64>() {
            Ok(id) => handle_stream(shared, ctx, req, id, w),
            Err(_) => error_response(ctx, w, 404, "no such job"),
        },
        ("POST", ["shutdown"]) => {
            // Answer first so the client sees the acknowledgement even
            // though shutdown tears the accept loop down.
            let r = respond(
                ctx,
                w,
                200,
                "application/json",
                "{\"shutting_down\":true}\n",
            );
            initiate_shutdown(shared);
            r
        }
        (_, p) => {
            let known = matches!(
                p,
                ["status"]
                    | ["version"]
                    | ["healthz"]
                    | ["metrics"]
                    | ["trace"]
                    | ["logs"]
                    | ["shutdown"]
                    | ["jobs"]
                    | ["jobs", _]
                    | ["jobs", _, "result" | "stream"]
            );
            if known {
                error_response(ctx, w, 405, "method not allowed")
            } else {
                error_response(ctx, w, 404, "not found")
            }
        }
    }
}

fn handle_status<E: JobEngine>(
    shared: &Shared<E>,
    ctx: &ReqCtx<'_>,
    w: &mut impl Write,
) -> io::Result<u16> {
    let (total, active, stuck, done_jobs, failed, queued) = {
        let st = shared.lock_state();
        let mut active = 0usize;
        let mut stuck = 0usize;
        let mut done_jobs = 0usize;
        let mut failed = 0usize;
        for j in st.jobs.values() {
            match j.phase {
                JobPhase::Active => {
                    active += 1;
                    // No progress beyond submission-time cache hits:
                    // still waiting for its first computed point.
                    if j.done == j.cached {
                        stuck += 1;
                    }
                }
                JobPhase::Complete => done_jobs += 1,
                JobPhase::Failed(_) => failed += 1,
            }
        }
        (
            st.next_job - 1,
            active,
            stuck,
            done_jobs,
            failed,
            st.queue.len(),
        )
    };
    let body = format!(
        "{{\"version\":\"{}\",\"jobs\":{{\"total\":{total},\"active\":{active},\
         \"queued\":{stuck},\"done\":{done_jobs},\"failed\":{failed}}},\
         \"points\":{{\"queued\":{queued},\"computed\":{},\"cached\":{}}},\
         \"cache\":{{\"rows\":{}}},\"workers\":{}}}\n",
        silo_types::VERSION,
        shared.computed.load(Ordering::Relaxed),
        shared.cache_hits.load(Ordering::Relaxed),
        shared.cache.len(),
        shared.cfg.workers,
    );
    respond(ctx, w, 200, "application/json", &body)
}

/// Renders the Prometheus exposition, first syncing the gauges whose
/// source of truth is daemon state rather than event counters.
fn handle_metrics<E: JobEngine>(
    shared: &Shared<E>,
    ctx: &ReqCtx<'_>,
    w: &mut impl Write,
) -> io::Result<u16> {
    let (queue, jobs_active) = {
        let st = shared.lock_state();
        (
            st.queue.len(),
            st.jobs
                .values()
                .filter(|j| matches!(j.phase, JobPhase::Active))
                .count(),
        )
    };
    shared
        .metrics
        .queue_depth
        .set(i64::try_from(queue).unwrap_or(i64::MAX));
    shared
        .metrics
        .jobs_active
        .set(i64::try_from(jobs_active).unwrap_or(i64::MAX));
    // The span recorder owns the authoritative eviction count; counters
    // only go up, so apply the delta since the last scrape.
    let dropped = shared.spans.dropped();
    let seen = shared.metrics.spans_dropped.get();
    if dropped > seen {
        shared.metrics.spans_dropped.add(dropped - seen);
    }
    shared
        .metrics
        .uptime
        .set(i64::try_from(shared.started.elapsed().as_secs()).unwrap_or(i64::MAX));
    respond(
        ctx,
        w,
        200,
        "text/plain; version=0.0.4",
        &shared.metrics.registry.render(),
    )
}

/// Serves the structured log tail as NDJSON. `?level=` (default
/// `info`) filters to that severity or above; `?n=` (default 100)
/// bounds the record count.
fn handle_logs<E: JobEngine>(
    shared: &Shared<E>,
    ctx: &ReqCtx<'_>,
    req: &http::Request,
    w: &mut impl Write,
) -> io::Result<u16> {
    let level = match req.query_param("level") {
        None => LogLevel::Info,
        Some(s) => match LogLevel::parse(s) {
            Some(l) => l,
            None => return error_response(ctx, w, 400, "bad level (debug|info|warn|error)"),
        },
    };
    let n = match req.query_param("n").map(str::parse::<usize>) {
        None => 100,
        Some(Ok(n)) if n > 0 => n,
        Some(_) => return error_response(ctx, w, 400, "bad n"),
    };
    respond(
        ctx,
        w,
        200,
        "application/x-ndjson",
        &shared.log.ndjson(level, n),
    )
}

fn handle_submit<E: JobEngine>(
    shared: &Shared<E>,
    ctx: &ReqCtx<'_>,
    req: &http::Request,
    w: &mut impl Write,
) -> io::Result<u16> {
    let client = req.header("x-client").unwrap_or("anon");
    if client.is_empty()
        || client.len() > 64
        || client.chars().any(|c| c.is_control() || c.is_whitespace())
    {
        return error_response(ctx, w, 400, "bad x-client header");
    }
    let priority = match req.query_param("priority").map(str::parse::<i64>) {
        None => 0,
        Some(Ok(p)) => p,
        Some(Err(_)) => return error_response(ctx, w, 400, "bad priority"),
    };
    match submit(shared, client, priority, &req.body, true) {
        Ok(out) => {
            let body = format!(
                "{{\"job\":{},\"points\":{},\"cached\":{},\"sweep\":\"{}\"}}\n",
                out.id, out.points, out.cached, out.sweep_hash
            );
            respond(ctx, w, 202, "application/json", &body)
        }
        Err(e) => error_response(ctx, w, e.status(), &e.message()),
    }
}

fn handle_job_status<E: JobEngine>(
    shared: &Shared<E>,
    ctx: &ReqCtx<'_>,
    id: u64,
    w: &mut impl Write,
) -> io::Result<u16> {
    let st = shared.lock_state();
    let Some(job) = st.jobs.get(&id) else {
        drop(st);
        return error_response(ctx, w, 404, "no such job");
    };
    let (state, error) = match &job.phase {
        JobPhase::Active => ("active", String::new()),
        JobPhase::Complete => ("complete", String::new()),
        JobPhase::Failed(e) => ("failed", format!(",\"error\":\"{}\"", http::json_escape(e))),
    };
    let body = format!(
        "{{\"job\":{id},\"state\":\"{state}\",\"points\":{},\"done\":{},\
         \"cached\":{},\"sweep\":\"{}\"{error}}}\n",
        job.rows.len(),
        job.done,
        job.cached,
        job.sweep_hash,
    );
    drop(st);
    respond(ctx, w, 200, "application/json", &body)
}

/// Blocks until the job completes, then answers with the full document
/// the engine renders from its rows (bit-identical to a direct run).
fn handle_result<E: JobEngine>(
    shared: &Shared<E>,
    ctx: &ReqCtx<'_>,
    id: u64,
    w: &mut impl Write,
) -> io::Result<u16> {
    let mut st = shared.lock_state();
    loop {
        let Some(job) = st.jobs.get(&id) else {
            drop(st);
            return error_response(ctx, w, 404, "no such job");
        };
        match &job.phase {
            JobPhase::Failed(e) => {
                let msg = e.clone();
                drop(st);
                return error_response(ctx, w, 500, &msg);
            }
            JobPhase::Complete => {
                let job_arc = Arc::clone(&job.job);
                let rows: Vec<String> = job
                    .rows
                    .iter()
                    .map(|r| r.clone().expect("complete job has every row"))
                    .collect();
                drop(st);
                let doc = shared.engine.document(&job_arc, &rows);
                return respond(ctx, w, 200, "application/json", &doc);
            }
            JobPhase::Active => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    drop(st);
                    return error_response(ctx, w, 503, "shutting down");
                }
                st = shared
                    .row_cv
                    .wait_timeout(st, WAIT_TICK)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        }
    }
}

/// Streams rows live as newline-delimited JSON chunks, in point order,
/// as they complete.
///
/// Two wire formats share this endpoint. The default is the pre-PR-9
/// format — one raw row per line, byte-identical to what older clients
/// parse. Opting in with `?telemetry=epoch` (or an `x-silo-stream:
/// epoch` header) switches every line to a typed record: each point's
/// epoch-telemetry events (`{"type":"epoch",...}`, as produced by the
/// engine) stream ahead of its `{"type":"row","point":N,"data":{...}}`
/// wrapper, and errors become `{"type":"error",...}`.
fn handle_stream<E: JobEngine>(
    shared: &Shared<E>,
    ctx: &ReqCtx<'_>,
    req: &http::Request,
    id: u64,
    w: &mut TcpStream,
) -> io::Result<u16> {
    let epoch_mode = req.query_param("telemetry").is_some_and(|v| v == "epoch")
        || req.header("x-silo-stream").is_some_and(|v| v == "epoch");
    {
        let st = shared.lock_state();
        if !st.jobs.contains_key(&id) {
            drop(st);
            return error_response(ctx, w, 404, "no such job");
        }
    }
    let t_respond = ctx.spans.now_us();
    http::start_chunked(w, 200, "application/x-ndjson")?;
    enum Step {
        Row(String, Vec<String>),
        Done,
        Fail(String),
    }
    let mut cursor = 0usize;
    loop {
        let step = {
            let mut st = shared.lock_state();
            loop {
                let Some(job) = st.jobs.get(&id) else {
                    break Step::Fail("job vanished".to_string());
                };
                if cursor >= job.rows.len() {
                    break Step::Done;
                }
                if let Some(row) = &job.rows[cursor] {
                    let events = if epoch_mode {
                        job.events[cursor].clone()
                    } else {
                        Vec::new()
                    };
                    break Step::Row(row.clone(), events);
                }
                if let JobPhase::Failed(e) = &job.phase {
                    break Step::Fail(e.clone());
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break Step::Fail("shutting down".to_string());
                }
                st = shared
                    .row_cv
                    .wait_timeout(st, WAIT_TICK)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        match step {
            Step::Row(row, events) => {
                let mut chunk = String::new();
                if epoch_mode {
                    for e in &events {
                        chunk.push_str(e);
                        chunk.push('\n');
                    }
                    chunk.push_str(&format!(
                        "{{\"type\":\"row\",\"point\":{cursor},\"data\":{row}}}\n"
                    ));
                } else {
                    chunk = format!("{row}\n");
                }
                shared.metrics.stream_bytes.add(chunk.len() as u64);
                http::write_chunk(w, &chunk)?;
                cursor += 1;
            }
            Step::Done => break,
            Step::Fail(e) => {
                let chunk = if epoch_mode {
                    format!(
                        "{{\"type\":\"error\",\"error\":\"{}\"}}\n",
                        http::json_escape(&e)
                    )
                } else {
                    format!("{{\"error\":\"{}\"}}\n", http::json_escape(&e))
                };
                shared.metrics.stream_bytes.add(chunk.len() as u64);
                http::write_chunk(w, &chunk)?;
                break;
            }
        }
    }
    http::finish_chunked(w)?;
    ctx.spans.record(
        "respond",
        "http",
        Some(ctx.req_span),
        t_respond,
        ctx.spans.now_us(),
    );
    Ok(200)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(priority: i64, job: u64, idx: usize) -> QueuedPoint {
        QueuedPoint {
            priority,
            job,
            idx,
            key: format!("{job:032x}{idx:032x}"),
            enqueued_us: 0,
        }
    }

    #[test]
    fn queue_orders_by_priority_then_job_then_index() {
        let mut heap = BinaryHeap::new();
        heap.push(point(0, 2, 1));
        heap.push(point(5, 3, 0));
        heap.push(point(0, 1, 1));
        heap.push(point(0, 1, 0));
        heap.push(point(5, 3, 2));
        let order: Vec<(i64, u64, usize)> = std::iter::from_fn(|| heap.pop())
            .map(|p| (p.priority, p.job, p.idx))
            .collect();
        assert_eq!(
            order,
            vec![(5, 3, 0), (5, 3, 2), (0, 1, 0), (0, 1, 1), (0, 2, 1)]
        );
    }
}
