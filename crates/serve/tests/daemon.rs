//! End-to-end daemon tests over real sockets with a mock [`JobEngine`]:
//! submission and result retrieval, quota (429) and backpressure (503)
//! rejections, inflight sharing across concurrent overlapping jobs,
//! cache persistence across daemon restarts (zero recompute), journal
//! resume after an interrupted run, live row streaming, and the error
//! surface (400/404/405).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use silo_serve::{start, JobEngine, JobPlan, PointOutput, ServeConfig};
use silo_types::sha::sha256_hex;

// ---------------------------------------------------------------------------
// Mock engine

/// A counting permit workers block on inside `run_point`, so tests can
/// hold jobs in the Active phase — or let exactly N points finish —
/// deterministically. `u64::MAX` permits means "never block".
struct Gate {
    permits: Mutex<u64>,
    cv: Condvar,
}

impl Gate {
    fn with_permits(n: u64) -> Arc<Gate> {
        Arc::new(Gate {
            permits: Mutex::new(n),
            cv: Condvar::new(),
        })
    }

    fn opened() -> Arc<Gate> {
        Gate::with_permits(u64::MAX)
    }

    fn closed() -> Arc<Gate> {
        Gate::with_permits(0)
    }

    /// Removes the limit: every blocked and future point may run.
    fn release(&self) {
        *self.permits.lock().unwrap_or_else(PoisonError::into_inner) = u64::MAX;
        self.cv.notify_all();
    }

    fn acquire(&self) {
        let mut permits = self.permits.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match *permits {
                0 => {
                    permits = self
                        .cv
                        .wait_timeout(permits, Duration::from_millis(50))
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
                u64::MAX => return,
                ref mut n => {
                    *n -= 1;
                    return;
                }
            }
        }
    }
}

struct MockJob {
    name: String,
}

/// Plans bodies of the form `name = X\npoints = N\n`; each point's row
/// is deterministic in (name, index), so overlapping submissions are
/// content-identical the way real sweep points are.
struct MockEngine {
    gate: Arc<Gate>,
    delay: Duration,
    runs: Arc<AtomicU64>,
}

impl MockEngine {
    fn new(gate: Arc<Gate>) -> (Self, Arc<AtomicU64>) {
        let runs = Arc::new(AtomicU64::new(0));
        (
            MockEngine {
                gate,
                delay: Duration::ZERO,
                runs: Arc::clone(&runs),
            },
            runs,
        )
    }
}

impl JobEngine for MockEngine {
    type Job = MockJob;

    fn plan(&self, body: &str) -> Result<JobPlan<MockJob>, String> {
        let mut name = None;
        let mut points = 1usize;
        for line in body.lines() {
            if let Some((k, v)) = line.split_once('=') {
                match k.trim() {
                    "name" => name = Some(v.trim().to_string()),
                    "points" => {
                        points = v.trim().parse().map_err(|_| "bad points".to_string())?;
                    }
                    other => return Err(format!("unknown key '{other}'")),
                }
            }
        }
        let name = name.ok_or_else(|| "missing 'name ='".to_string())?;
        let sweep_hash = sha256_hex(format!("{name}/{points}").as_bytes());
        Ok(JobPlan {
            job: MockJob { name },
            points,
            sweep_hash,
        })
    }

    fn point_key(&self, job: &MockJob, index: usize) -> String {
        sha256_hex(format!("{}:{index}", job.name).as_bytes())
    }

    fn run_point(&self, job: &MockJob, index: usize) -> Result<PointOutput, String> {
        self.gate.acquire();
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        self.runs.fetch_add(1, Ordering::SeqCst);
        if job.name == "explode" {
            return Err(format!("point {index} exploded"));
        }
        // Jobs named epoch-* also produce auxiliary typed records, the
        // way the real engine emits epoch telemetry.
        let events = if job.name.starts_with("epoch") {
            (0..2)
                .map(|e| format!("{{\"type\":\"epoch\",\"index\":{index},\"epoch\":{e}}}"))
                .collect()
        } else {
            Vec::new()
        };
        Ok(PointOutput {
            row: format!("{{\"name\":\"{}\",\"point\":{index}}}", job.name),
            events,
        })
    }

    fn document(&self, job: &MockJob, rows: &[String]) -> String {
        format!("{} [{}]\n", job.name, rows.join(","))
    }
}

// ---------------------------------------------------------------------------
// A minimal blocking HTTP client (the daemon closes every connection).

struct Response {
    status: u16,
    headers: String,
    body: String,
}

fn request(addr: SocketAddr, raw: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("receive");
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in: {text}"));
    let (headers, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in: {text}"));
    let body = if headers.contains("Transfer-Encoding: chunked") {
        dechunk(body)
    } else {
        body.to_string()
    };
    Response {
        status,
        headers: headers.to_string(),
        body,
    }
}

fn dechunk(mut raw: &str) -> String {
    let mut out = String::new();
    loop {
        let (size_line, rest) = raw.split_once("\r\n").expect("chunk size line");
        let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
        if size == 0 {
            return out;
        }
        out.push_str(&rest[..size]);
        raw = rest[size..].strip_prefix("\r\n").expect("chunk terminator");
    }
}

fn get(addr: SocketAddr, path: &str) -> Response {
    request(addr, &format!("GET {path} HTTP/1.1\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, client: &str, body: &str) -> Response {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nX-Client: {client}\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Pulls the integer job id out of a 202 submission body.
fn job_id(submitted: &Response) -> u64 {
    assert_eq!(submitted.status, 202, "{}", submitted.body);
    submitted
        .body
        .strip_prefix("{\"job\":")
        .and_then(|rest| rest.split(',').next())
        .and_then(|id| id.parse().ok())
        .unwrap_or_else(|| panic!("no job id in: {}", submitted.body))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("silo-serve-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn config(tag: &str) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_dir: temp_dir(tag),
        ..ServeConfig::default()
    }
}

// ---------------------------------------------------------------------------
// Tests

#[test]
fn submit_result_status_and_version_roundtrip() {
    let (engine, runs) = MockEngine::new(Gate::opened());
    let server = start(engine, config("roundtrip")).expect("start");
    let addr = server.addr();

    let version = get(addr, "/version");
    assert_eq!(version.status, 200);
    assert!(
        version.body.contains(silo_types::VERSION),
        "{}",
        version.body
    );
    assert!(
        version
            .headers
            .contains(&format!("Server: silo-serve/{}", silo_types::VERSION)),
        "{}",
        version.headers
    );

    let submitted = post(addr, "/jobs", "alice", "name = demo\npoints = 3\n");
    let id = job_id(&submitted);
    assert!(
        submitted.body.contains("\"points\":3"),
        "{}",
        submitted.body
    );
    assert!(
        submitted.body.contains("\"cached\":0"),
        "{}",
        submitted.body
    );

    let result = get(addr, &format!("/jobs/{id}/result"));
    assert_eq!(result.status, 200);
    assert_eq!(
        result.body,
        "demo [{\"name\":\"demo\",\"point\":0},{\"name\":\"demo\",\"point\":1},{\"name\":\"demo\",\"point\":2}]\n"
    );
    assert_eq!(runs.load(Ordering::SeqCst), 3);
    assert_eq!(server.points_computed(), 3);

    let job = get(addr, &format!("/jobs/{id}"));
    assert!(job.body.contains("\"state\":\"complete\""), "{}", job.body);
    let status = get(addr, "/status");
    assert!(status.body.contains("\"computed\":3"), "{}", status.body);

    server.shutdown();
    server.join();
}

#[test]
fn resubmission_is_served_entirely_from_cache() {
    let (engine, runs) = MockEngine::new(Gate::opened());
    let server = start(engine, config("cachehit")).expect("start");
    let addr = server.addr();

    let first = get(
        addr,
        &format!(
            "/jobs/{}/result",
            job_id(&post(addr, "/jobs", "a", "name = x\npoints = 4\n"))
        ),
    );
    assert_eq!(runs.load(Ordering::SeqCst), 4);

    // Identical submission: every point comes from the cache, the job
    // completes on arrival, and nothing runs again.
    let resubmitted = post(addr, "/jobs", "b", "name = x\npoints = 4\n");
    assert!(
        resubmitted.body.contains("\"cached\":4"),
        "{}",
        resubmitted.body
    );
    let second = get(addr, &format!("/jobs/{}/result", job_id(&resubmitted)));
    assert_eq!(first.body, second.body);
    assert_eq!(
        runs.load(Ordering::SeqCst),
        4,
        "zero recompute on resubmission"
    );
    assert_eq!(server.points_cached(), 4);

    server.shutdown();
    server.join();
}

#[test]
fn cache_survives_a_daemon_restart() {
    let dir = temp_dir("restart");
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_dir: dir.clone(),
        ..ServeConfig::default()
    };
    let (engine, _) = MockEngine::new(Gate::opened());
    let server = start(engine, cfg.clone()).expect("start");
    let first = get(
        server.addr(),
        &format!(
            "/jobs/{}/result",
            job_id(&post(
                server.addr(),
                "/jobs",
                "a",
                "name = persist\npoints = 3\n"
            ))
        ),
    );
    server.shutdown();
    server.join();

    // A fresh daemon over the same cache directory serves the sweep
    // without computing anything.
    let (engine, runs) = MockEngine::new(Gate::opened());
    let server = start(engine, cfg).expect("restart");
    let resubmitted = post(server.addr(), "/jobs", "a", "name = persist\npoints = 3\n");
    assert!(
        resubmitted.body.contains("\"cached\":3"),
        "{}",
        resubmitted.body
    );
    let second = get(
        server.addr(),
        &format!("/jobs/{}/result", job_id(&resubmitted)),
    );
    assert_eq!(first.body, second.body);
    assert_eq!(runs.load(Ordering::SeqCst), 0, "restart recomputes nothing");
    assert_eq!(server.points_computed(), 0);
    server.shutdown();
    server.join();
}

#[test]
fn concurrent_overlapping_jobs_share_inflight_work() {
    let gate = Gate::closed();
    let (engine, runs) = MockEngine::new(Arc::clone(&gate));
    let server = start(engine, config("overlap")).expect("start");
    let addr = server.addr();

    // Same sweep from two clients while no point can finish: the second
    // job subscribes to the first job's inflight points.
    let id_a = job_id(&post(addr, "/jobs", "alice", "name = shared\npoints = 3\n"));
    let id_b = job_id(&post(addr, "/jobs", "bob", "name = shared\npoints = 3\n"));
    gate.release();

    let doc_a = get(addr, &format!("/jobs/{id_a}/result"));
    let doc_b = get(addr, &format!("/jobs/{id_b}/result"));
    assert_eq!(
        doc_a.body, doc_b.body,
        "shared points yield identical documents"
    );
    assert_eq!(
        runs.load(Ordering::SeqCst),
        3,
        "each point ran exactly once"
    );
    assert_eq!(
        server.points_cached(),
        3,
        "job B rode job A's inflight points"
    );

    server.shutdown();
    server.join();
}

#[test]
fn over_quota_clients_get_429() {
    let gate = Gate::closed();
    let (engine, _) = MockEngine::new(Arc::clone(&gate));
    let cfg = ServeConfig {
        client_quota: 1,
        ..config("quota")
    };
    let server = start(engine, cfg).expect("start");
    let addr = server.addr();

    let first = post(addr, "/jobs", "greedy", "name = q1\npoints = 1\n");
    assert_eq!(first.status, 202, "{}", first.body);
    let second = post(addr, "/jobs", "greedy", "name = q2\npoints = 1\n");
    assert_eq!(second.status, 429, "{}", second.body);
    assert!(second.body.contains("quota"), "{}", second.body);
    // Another client is unaffected.
    let other = post(addr, "/jobs", "patient", "name = q3\npoints = 1\n");
    assert_eq!(other.status, 202, "{}", other.body);

    gate.release();
    let done = get(addr, &format!("/jobs/{}/result", job_id(&first)));
    assert_eq!(done.status, 200);
    // Quota released on completion: the same client may submit again.
    let after = post(addr, "/jobs", "greedy", "name = q4\npoints = 1\n");
    assert_eq!(after.status, 202, "{}", after.body);
    let _ = get(addr, &format!("/jobs/{}/result", job_id(&after)));

    server.shutdown();
    gate.release();
    server.join();
}

#[test]
fn full_point_queue_rejects_with_503() {
    let gate = Gate::closed();
    let (engine, _) = MockEngine::new(Arc::clone(&gate));
    let cfg = ServeConfig {
        workers: 1,
        queue_capacity: 2,
        ..config("backpressure")
    };
    let server = start(engine, cfg).expect("start");
    let addr = server.addr();

    let first = post(addr, "/jobs", "a", "name = fills\npoints = 2\n");
    assert_eq!(first.status, 202, "{}", first.body);
    let burst = post(addr, "/jobs", "b", "name = overflows\npoints = 2\n");
    assert_eq!(burst.status, 503, "{}", burst.body);
    assert!(burst.body.contains("queue full"), "{}", burst.body);
    // A resubmission of queued content subscribes instead of enqueueing,
    // so it is accepted even while the queue is full.
    let overlap = post(addr, "/jobs", "b", "name = fills\npoints = 2\n");
    assert_eq!(overlap.status, 202, "{}", overlap.body);

    gate.release();
    let _ = get(addr, &format!("/jobs/{}/result", job_id(&first)));
    server.shutdown();
    server.join();
}

#[test]
fn interrupted_jobs_resume_from_the_journal_without_recompute() {
    let dir = temp_dir("resume");
    let base = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        cache_dir: dir.clone(),
        ..ServeConfig::default()
    };

    // Phase 1: accept a 5-point job, allow exactly two points to run,
    // then shut down mid-sweep (the worker drains at most its current
    // point before exiting).
    let gate = Gate::with_permits(2);
    let (engine, runs) = MockEngine::new(Arc::clone(&gate));
    let server = start(engine, base.clone()).expect("start");
    let submitted = post(server.addr(), "/jobs", "a", "name = longhaul\npoints = 5\n");
    assert_eq!(submitted.status, 202, "{}", submitted.body);
    while server.points_computed() < 2 {
        std::thread::sleep(Duration::from_millis(2));
    }
    server.shutdown();
    // The worker may be blocked inside its current point; releasing the
    // gate lets it drain that point and exit.
    gate.release();
    server.join();
    let finished_early = runs.load(Ordering::SeqCst);
    assert!(
        finished_early < 5,
        "shutdown must interrupt the job ({finished_early} points ran)"
    );
    let journal: Vec<_> = std::fs::read_dir(dir.join("queue"))
        .expect("journal dir")
        .flatten()
        .collect();
    assert_eq!(journal.len(), 1, "interrupted job stays journalled");

    // Phase 2: a resuming daemon replays the journal; only the missing
    // points run, and the document is complete.
    let (engine, runs) = MockEngine::new(Gate::opened());
    let server = start(
        engine,
        ServeConfig {
            resume: true,
            ..base
        },
    )
    .expect("resume");
    let result = get(server.addr(), "/jobs/1/result");
    assert_eq!(result.status, 200, "{}", result.body);
    for i in 0..5 {
        assert!(
            result.body.contains(&format!("\"point\":{i}")),
            "resumed document misses point {i}: {}",
            result.body
        );
    }
    assert_eq!(
        runs.load(Ordering::SeqCst) + finished_early,
        5,
        "resume runs exactly the missing points"
    );
    assert!(
        std::fs::read_dir(dir.join("queue"))
            .expect("journal dir")
            .next()
            .is_none(),
        "journal entry removed once the job completes"
    );
    server.shutdown();
    server.join();
}

#[test]
fn stream_delivers_rows_in_order_as_ndjson_chunks() {
    let (engine, _) = MockEngine::new(Gate::opened());
    let server = start(engine, config("stream")).expect("start");
    let addr = server.addr();
    let id = job_id(&post(addr, "/jobs", "a", "name = live\npoints = 3\n"));
    let stream = get(addr, &format!("/jobs/{id}/stream"));
    assert_eq!(stream.status, 200);
    assert!(
        stream.headers.contains("application/x-ndjson"),
        "{}",
        stream.headers
    );
    let rows: Vec<&str> = stream.body.lines().collect();
    assert_eq!(
        rows,
        vec![
            "{\"name\":\"live\",\"point\":0}",
            "{\"name\":\"live\",\"point\":1}",
            "{\"name\":\"live\",\"point\":2}",
        ]
    );
    server.shutdown();
    server.join();
}

#[test]
fn failed_points_fail_the_job_with_500() {
    let (engine, _) = MockEngine::new(Gate::opened());
    let server = start(engine, config("failure")).expect("start");
    let addr = server.addr();
    let id = job_id(&post(addr, "/jobs", "a", "name = explode\npoints = 2\n"));
    let result = get(addr, &format!("/jobs/{id}/result"));
    assert_eq!(result.status, 500);
    assert!(result.body.contains("exploded"), "{}", result.body);
    let job = get(addr, &format!("/jobs/{id}"));
    assert!(job.body.contains("\"state\":\"failed\""), "{}", job.body);
    server.shutdown();
    server.join();
}

#[test]
fn the_error_surface_has_the_right_statuses() {
    let (engine, _) = MockEngine::new(Gate::opened());
    let server = start(engine, config("errors")).expect("start");
    let addr = server.addr();

    assert_eq!(post(addr, "/jobs", "a", "bogus = 1\n").status, 400);
    assert_eq!(post(addr, "/jobs", "bad client", "name = x\n").status, 400);
    assert_eq!(
        request(
            addr,
            "POST /jobs?priority=nope HTTP/1.1\r\nContent-Length: 9\r\n\r\nname = x\n"
        )
        .status,
        400
    );
    assert_eq!(get(addr, "/jobs/999/result").status, 404);
    assert_eq!(get(addr, "/jobs/999").status, 404);
    assert_eq!(get(addr, "/nowhere").status, 404);
    assert_eq!(get(addr, "/jobs/1/unknown").status, 404);
    assert_eq!(request(addr, "DELETE /status HTTP/1.1\r\n\r\n").status, 405);
    assert_eq!(request(addr, "PUT /jobs HTTP/1.1\r\n\r\n").status, 405);
    assert_eq!(request(addr, "GET /status HTTP/2\r\n\r\n").status, 505);

    server.shutdown();
    server.join();
}

/// Minimal Prometheus text-exposition validity check: every line is a
/// comment or `name[{labels}] value` with a numeric value, every
/// sample's family has HELP and TYPE headers, and histogram buckets
/// are cumulative ending in `+Inf`.
fn assert_valid_exposition(text: &str) {
    let mut seen_types = std::collections::HashMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("type name");
            let kind = it.next().expect("type kind");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "bad kind: {line}"
            );
            seen_types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("bad sample line: {line}"));
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok(),
            "non-numeric value in: {line}"
        );
        let name = series.split('{').next().expect("metric name");
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| seen_types.get(*f).map(String::as_str) == Some("histogram"))
            .unwrap_or(name);
        assert!(
            seen_types.contains_key(family),
            "sample {name} has no TYPE header"
        );
    }
}

#[test]
fn metrics_exposition_is_valid_and_counters_move_across_a_job() {
    let (engine, _) = MockEngine::new(Gate::opened());
    let server = start(engine, config("metrics")).expect("start");
    let addr = server.addr();

    let before = get(addr, "/metrics");
    assert_eq!(before.status, 200);
    assert!(before.headers.contains("text/plain"), "{}", before.headers);
    assert_valid_exposition(&before.body);
    // Declared families render even before any job ran.
    assert!(before
        .body
        .contains("# TYPE silo_serve_requests_total counter"));
    assert!(before.body.contains("silo_serve_cache_misses_total 0"));
    assert!(before.body.contains("silo_serve_queue_depth 0"));
    assert!(before.body.contains("silo_obs_spans_dropped_total 0"));
    assert!(
        before.body.contains(&format!(
            "silo_build_info{{version=\"{}\"}} 1",
            silo_types::VERSION
        )),
        "{}",
        before.body
    );
    assert!(
        before.body.contains("silo_serve_uptime_seconds"),
        "{}",
        before.body
    );

    let id = job_id(&post(addr, "/jobs", "a", "name = metered\npoints = 3\n"));
    let _ = get(addr, &format!("/jobs/{id}/result"));
    let _ = get(addr, &format!("/jobs/{id}/stream"));

    let after = get(addr, "/metrics");
    assert_valid_exposition(&after.body);
    assert!(
        after.body.contains("silo_serve_cache_misses_total 3"),
        "{}",
        after.body
    );
    assert!(
        after
            .body
            .contains("silo_serve_point_run_microseconds_count 3"),
        "{}",
        after.body
    );
    assert!(
        after
            .body
            .contains("silo_serve_requests_total{endpoint=\"/jobs\",status=\"202\"} 1"),
        "{}",
        after.body
    );
    assert!(
        after
            .body
            .contains("endpoint=\"/jobs/{id}/result\",status=\"200\""),
        "{}",
        after.body
    );
    // The stream moved the bytes counter.
    let bytes_line = after
        .body
        .lines()
        .find(|l| l.starts_with("silo_serve_stream_bytes_total "))
        .expect("stream bytes sample");
    let bytes: u64 = bytes_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(bytes > 0, "{bytes_line}");

    // Resubmission: cache hits move, misses don't.
    let _ = post(addr, "/jobs", "b", "name = metered\npoints = 3\n");
    let third = get(addr, "/metrics");
    assert!(
        third.body.contains("silo_serve_cache_hits_total 3"),
        "{}",
        third.body
    );
    assert!(third.body.contains("silo_serve_cache_misses_total 3"));

    server.shutdown();
    server.join();
}

#[test]
fn trace_endpoint_serves_linked_request_and_job_spans() {
    let (engine, _) = MockEngine::new(Gate::opened());
    let server = start(engine, config("trace")).expect("start");
    let addr = server.addr();
    let id = job_id(&post(addr, "/jobs", "a", "name = traced\npoints = 1\n"));
    let _ = get(addr, &format!("/jobs/{id}/result"));

    let trace = get(addr, "/trace");
    assert_eq!(trace.status, 200);
    assert!(
        trace
            .body
            .starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
        "{}",
        trace.body
    );
    for name in [
        "parse",
        "route",
        "respond",
        "request",
        "queue-wait",
        "run",
        "cache-write",
        "point",
    ] {
        assert!(
            trace.body.contains(&format!("\"name\":\"{name}\"")),
            "missing {name} span: {}",
            trace.body
        );
    }
    // Every span is a complete event with parent links riding in args.
    assert!(trace.body.contains("\"ph\":\"X\""));
    assert!(trace.body.contains("\"parent\":"));
    // The in-process accessor serves the same document shape.
    assert!(server.trace_json().contains("\"name\":\"request\""));

    server.shutdown();
    server.join();
}

#[test]
fn status_reports_job_phase_counts() {
    let gate = Gate::closed();
    let (engine, _) = MockEngine::new(Arc::clone(&gate));
    let server = start(engine, config("phases")).expect("start");
    let addr = server.addr();

    // One permit while only the failing job exists: its single point is
    // the only one that can run.
    let failed = job_id(&post(addr, "/jobs", "b", "name = explode\npoints = 1\n"));
    *gate.permits.lock().unwrap() = 1;
    gate.cv.notify_all();
    while !get(addr, &format!("/jobs/{failed}"))
        .body
        .contains("\"state\":\"failed\"")
    {
        std::thread::sleep(Duration::from_millis(2));
    }
    // Now a job stuck behind the (re-closed) gate: active, no point done.
    let stuck = job_id(&post(addr, "/jobs", "a", "name = stuck\npoints = 2\n"));
    let status = get(addr, "/status");
    assert!(
        status
            .body
            .contains("\"jobs\":{\"total\":2,\"active\":1,\"queued\":1,\"done\":0,\"failed\":1}"),
        "{}",
        status.body
    );

    // Drain the stuck job; it moves to done.
    gate.release();
    let _ = get(addr, &format!("/jobs/{stuck}/result"));
    let status = get(addr, "/status");
    assert!(
        status
            .body
            .contains("\"jobs\":{\"total\":2,\"active\":0,\"queued\":0,\"done\":1,\"failed\":1}"),
        "{}",
        status.body
    );

    server.shutdown();
    server.join();
}

#[test]
fn epoch_opt_in_stream_interleaves_typed_records_and_default_stays_raw() {
    let dir = temp_dir("epochstream");
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_dir: dir.clone(),
        ..ServeConfig::default()
    };
    let (engine, _) = MockEngine::new(Gate::opened());
    let server = start(engine, cfg.clone()).expect("start");
    let addr = server.addr();
    let id = job_id(&post(addr, "/jobs", "a", "name = epochal\npoints = 2\n"));

    // Default stream: raw rows only, the pre-PR-9 wire format.
    let plain = get(addr, &format!("/jobs/{id}/stream"));
    assert_eq!(
        plain.body.lines().collect::<Vec<_>>(),
        vec![
            "{\"name\":\"epochal\",\"point\":0}",
            "{\"name\":\"epochal\",\"point\":1}",
        ]
    );

    // Opt-in via query param: every line is typed, epochs ahead of rows.
    let typed = get(addr, &format!("/jobs/{id}/stream?telemetry=epoch"));
    let lines: Vec<&str> = typed.body.lines().collect();
    assert_eq!(
        lines,
        vec![
            "{\"type\":\"epoch\",\"index\":0,\"epoch\":0}",
            "{\"type\":\"epoch\",\"index\":0,\"epoch\":1}",
            "{\"type\":\"row\",\"point\":0,\"data\":{\"name\":\"epochal\",\"point\":0}}",
            "{\"type\":\"epoch\",\"index\":1,\"epoch\":0}",
            "{\"type\":\"epoch\",\"index\":1,\"epoch\":1}",
            "{\"type\":\"row\",\"point\":1,\"data\":{\"name\":\"epochal\",\"point\":1}}",
        ]
    );

    // Opt-in via header is equivalent.
    let via_header = request(
        addr,
        &format!("GET /jobs/{id}/stream HTTP/1.1\r\nX-Silo-Stream: epoch\r\n\r\n"),
    );
    assert_eq!(via_header.body, typed.body);
    server.shutdown();
    server.join();

    // Events persist in the cache: a fresh daemon over the same
    // directory serves the epoch records for a fully cached job.
    let (engine, runs) = MockEngine::new(Gate::opened());
    let server = start(engine, cfg).expect("restart");
    let id = job_id(&post(
        server.addr(),
        "/jobs",
        "b",
        "name = epochal\npoints = 2\n",
    ));
    let cached = get(server.addr(), &format!("/jobs/{id}/stream?telemetry=epoch"));
    assert_eq!(cached.body, typed.body, "cached jobs keep their epochs");
    assert_eq!(runs.load(Ordering::SeqCst), 0);
    server.shutdown();
    server.join();
}

#[test]
fn trace_out_writes_a_chrome_trace_on_shutdown() {
    let dir = temp_dir("traceout");
    let trace_path = dir.join("daemon-trace.json");
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_dir: dir.clone(),
        trace_out: Some(trace_path.clone()),
        ..ServeConfig::default()
    };
    let (engine, _) = MockEngine::new(Gate::opened());
    let server = start(engine, cfg).expect("start");
    let id = job_id(&post(
        server.addr(),
        "/jobs",
        "a",
        "name = out\npoints = 1\n",
    ));
    let _ = get(server.addr(), &format!("/jobs/{id}/result"));
    server.shutdown();
    server.join();
    let written = std::fs::read_to_string(&trace_path).expect("trace file");
    assert!(written.contains("\"traceEvents\":["), "{written}");
    assert!(written.contains("\"name\":\"run\""), "{written}");
}

#[test]
fn healthz_is_alive_even_while_work_is_wedged() {
    // A closed gate keeps the worker stuck inside run_point; liveness
    // must not care (it answers without touching job state).
    let gate = Gate::closed();
    let (engine, _) = MockEngine::new(Arc::clone(&gate));
    let server = start(engine, config("healthz")).expect("start");
    let addr = server.addr();
    let _ = post(addr, "/jobs", "a", "name = wedged\npoints = 1\n");

    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "ok\n");
    assert!(health.headers.contains("text/plain"), "{}", health.headers);

    gate.release();
    server.shutdown();
    server.join();
}

#[test]
fn logs_capture_the_job_lifecycle_with_level_filter_and_pagination() {
    let (engine, _) = MockEngine::new(Gate::opened());
    let server = start(engine, config("logs")).expect("start");
    let addr = server.addr();
    let id = job_id(&post(addr, "/jobs", "a", "name = logged\npoints = 2\n"));
    let _ = get(addr, &format!("/jobs/{id}/result"));
    let failed = job_id(&post(addr, "/jobs", "a", "name = explode\npoints = 1\n"));
    while !get(addr, &format!("/jobs/{failed}"))
        .body
        .contains("\"state\":\"failed\"")
    {
        std::thread::sleep(Duration::from_millis(2));
    }

    // Default tail: info and above, rendered as NDJSON records.
    let logs = get(addr, "/logs");
    assert_eq!(logs.status, 200);
    assert!(
        logs.headers.contains("application/x-ndjson"),
        "{}",
        logs.headers
    );
    for line in logs.body.lines() {
        assert!(
            line.starts_with("{\"seq\":") && line.ends_with('}'),
            "bad NDJSON line: {line}"
        );
        assert!(line.contains("\"ts_us\":"), "{line}");
        assert!(line.contains("\"level\":\""), "{line}");
        assert!(line.contains("\"target\":\""), "{line}");
    }
    for msg in ["listening", "job accepted", "job complete", "job failed"] {
        assert!(
            logs.body.contains(&format!("\"msg\":\"{msg}\"")),
            "missing '{msg}' in: {}",
            logs.body
        );
    }
    assert!(
        !logs.body.contains("\"level\":\"debug\""),
        "default tail must exclude debug: {}",
        logs.body
    );

    // Level filter: debug adds per-point and journal records; error
    // strips everything but the failure.
    let debug = get(addr, "/logs?level=debug");
    assert!(
        debug.body.contains("\"msg\":\"point computed\""),
        "{}",
        debug.body
    );
    assert!(
        debug
            .body
            .contains("\"msg\":\"job journalled ahead of execution\""),
        "{}",
        debug.body
    );
    let errors = get(addr, "/logs?level=error");
    assert!(
        errors.body.contains("\"msg\":\"job failed\""),
        "{}",
        errors.body
    );
    assert!(
        !errors.body.contains("\"msg\":\"job accepted\""),
        "{}",
        errors.body
    );

    // Pagination: the tail keeps the most recent records.
    let one = get(addr, "/logs?n=1");
    assert_eq!(one.body.lines().count(), 1, "{}", one.body);

    // Bad parameters are rejected.
    assert_eq!(get(addr, "/logs?level=loud").status, 400);
    assert_eq!(get(addr, "/logs?n=0").status, 400);
    assert_eq!(get(addr, "/logs?n=nope").status, 400);

    server.shutdown();
    server.join();
}

#[test]
fn resume_emits_journal_replay_log_events_and_log_out_persists_them() {
    // A journal left by a killed daemon, plus one malformed entry that
    // must be skipped with a warning.
    let dir = temp_dir("resumelogs");
    std::fs::create_dir_all(dir.join("queue")).expect("queue dir");
    std::fs::write(
        dir.join("queue/7.job"),
        "client a\npriority 0\n\nname = replayed\npoints = 2\n",
    )
    .expect("journal entry");
    std::fs::write(dir.join("queue/9.job"), "no header separator").expect("bad entry");
    let log_path = dir.join("daemon-log.ndjson");

    let (engine, _) = MockEngine::new(Gate::opened());
    let server = start(
        engine,
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            cache_dir: dir.clone(),
            resume: true,
            log_out: Some(log_path.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("start");
    let addr = server.addr();
    let result = get(addr, "/jobs/1/result");
    assert_eq!(result.status, 200, "{}", result.body);

    let logs = get(addr, "/logs");
    assert!(
        logs.body.contains("\"msg\":\"journal replayed\""),
        "{}",
        logs.body
    );
    assert!(logs.body.contains("\"points\":\"2\""), "{}", logs.body);
    let warnings = get(addr, "/logs?level=warn");
    assert!(
        warnings
            .body
            .contains("\"msg\":\"malformed journal entry skipped\""),
        "{}",
        warnings.body
    );
    assert!(warnings.body.contains("9.job"), "{}", warnings.body);

    server.shutdown();
    server.join();

    // The sink file kept every record (including debug), NDJSON per line.
    let written = std::fs::read_to_string(&log_path).expect("log file");
    assert!(written.contains("\"msg\":\"listening\""), "{written}");
    assert!(
        written.contains("\"msg\":\"journal replayed\""),
        "{written}"
    );
    assert!(written.contains("\"msg\":\"point computed\""), "{written}");
    assert!(
        written
            .lines()
            .all(|l| l.starts_with("{\"seq\":") && l.ends_with('}')),
        "{written}"
    );
}

#[test]
fn shutdown_endpoint_acknowledges_then_drains() {
    let (engine, _) = MockEngine::new(Gate::opened());
    let server = start(engine, config("shutdown")).expect("start");
    let addr = server.addr();
    let ack = post(addr, "/shutdown", "a", "");
    assert_eq!(ack.status, 200);
    assert!(ack.body.contains("shutting_down"), "{}", ack.body);
    server.join();
    // Submissions after shutdown are refused at the socket or with 503;
    // either way no new work is accepted.
    assert!(
        TcpStream::connect(addr).is_err() || post(addr, "/jobs", "a", "name = x\n").status == 503
    );
}
