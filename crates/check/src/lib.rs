//! `silo-check`: static analysis for the coherence core.
//!
//! The end-to-end golden tests pin the simulator's *output*, but cannot
//! distinguish "coherent" from "consistently wrong": a protocol bug that
//! deterministically corrupts state produces a stable, reproducible —
//! and meaningless — JSON document. This crate attacks the state
//! machines directly with an exhaustive bounded model checker:
//!
//! * [`explore`] drives a protocol engine over a small world (a handful
//!   of nodes, a few cache lines chosen to conflict in the direct-mapped
//!   levels) through a breadth-first search over **all** interleavings
//!   of per-node reads and writes, fingerprinting every reachable
//!   (directory entry × per-node cache state × backing-store dirty bit)
//!   configuration.
//! * At every reachable state and transition it asserts the MOESI
//!   safety invariants — single-writer/multiple-reader, at most one
//!   owner, dirty data is never silently dropped, the directory's
//!   packed entries agree with an unpacked reference replay, and the
//!   per-protocol dirty-forward transition table (the documented
//!   `silo-no-forward` deviation gets its own expected entries instead
//!   of a violation).
//! * On a violation it stops and reconstructs the exact operation
//!   sequence from the initial state as a [`Counterexample`] — a
//!   machine-checked reproduction recipe, not just an assertion message.
//!
//! The [`ModelEngine`] trait is the checker's view of an engine; it is
//! implemented for the real [`silo_coherence::PrivateMoesi`] and
//! [`silo_coherence::SharedMesi`] engines (the same code the simulator
//! runs, not a model of it) and by deliberately broken test engines
//! that prove the checker actually catches bugs.
//!
//! `silo-sim check` wraps this into a CLI subcommand emitting a
//! `silo-check/v1` JSON report.

#![forbid(unsafe_code)]

pub mod engine;
pub mod model;
pub mod report;

pub use engine::{
    baseline_world, silo_world, DirtyForwardPolicy, ModelEngine, WorldParams, DEFAULT_NODES,
};
pub use model::{explore, Op, World};
pub use report::{CheckReport, Counterexample, Deviation, InvariantStatus, TraceStep};
