//! The model checker's result types: per-invariant tallies and the
//! counterexample trace emitted on a violation. `silo-sim check`
//! renders these into the `silo-check/v1` JSON schema.

use crate::model::Op;
use std::fmt;

/// One safety invariant's tally over the exploration.
#[derive(Clone, Debug)]
pub struct InvariantStatus {
    /// Stable identifier of the invariant (`swmr`, `single-owner`,
    /// `dirty-ownership`, `directory-agreement`, `packed-roundtrip`,
    /// `forward-policy`, `no-o-state`, `served-classification`).
    pub name: &'static str,
    /// How many times the invariant was evaluated.
    pub checked: u64,
    /// How many evaluations failed. Exploration stops at the first
    /// violation, so this is 0 or 1.
    pub violations: u64,
}

/// One step of a counterexample: the operation applied and the state id
/// it produced.
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// The operation.
    pub op: Op,
    /// The fingerprinted state reached after applying `op`.
    pub state: u32,
}

impl fmt::Display for TraceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> state {}", self.op, self.state)
    }
}

/// A machine-checked reproduction recipe for an invariant violation:
/// the operation sequence from the initial (all-invalid) state to the
/// violating one.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Which invariant failed.
    pub invariant: &'static str,
    /// The violation message (from the engine or the checker).
    pub message: String,
    /// Operations from the initial state, in order; replaying them on a
    /// fresh engine reproduces the violation.
    pub trace: Vec<TraceStep>,
}

/// A documented, expected protocol deviation observed during
/// exploration (e.g. `silo-no-forward`'s memory writeback on a dirty
/// read forward), with how often it fired. Deviations are not
/// violations: they are the per-protocol entries of the dirty-forward
/// transition table.
#[derive(Clone, Debug)]
pub struct Deviation {
    /// Human-readable transition description.
    pub description: String,
    /// How many explored transitions matched it.
    pub occurrences: u64,
}

/// The outcome of one system's exploration.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Registry name of the checked system.
    pub system: String,
    /// Nodes in the bounded world.
    pub nodes: usize,
    /// Cache lines in the bounded world.
    pub lines: usize,
    /// Distinct reachable states visited.
    pub states: u64,
    /// Transitions (state × operation edges) executed.
    pub transitions: u64,
    /// Deepest BFS level reached.
    pub max_depth: u32,
    /// True when the reachable space was exhausted; false when the
    /// `max_states` bound truncated the search.
    pub exhausted: bool,
    /// Per-invariant tallies, in a stable order.
    pub invariants: Vec<InvariantStatus>,
    /// Expected-transition table entries observed (may be empty).
    pub deviations: Vec<Deviation>,
    /// The first violation found, if any.
    pub counterexample: Option<Counterexample>,
}

impl CheckReport {
    /// True when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.counterexample.is_none() && self.invariants.iter().all(|i| i.violations == 0)
    }

    /// Total violations across invariants.
    pub fn violations(&self) -> u64 {
        self.invariants.iter().map(|i| i.violations).sum()
    }
}
