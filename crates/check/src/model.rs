//! The exhaustive bounded model checker.
//!
//! [`explore`] runs a breadth-first search over every interleaving of
//! per-node reads and writes to the world's lines, fingerprinting each
//! reachable configuration (per-line, per-node directory state and SRAM
//! presence, plus the shared backing level's present/dirty bits) and
//! checking the protocol invariants at every state and transition.
//!
//! States are reconstructed by replaying the operation path from the
//! initial state rather than cloned: engines presize their directory
//! tables for full-scale runs, so a clone per state would cost far more
//! than replaying a BFS-shallow prefix of cheap accesses in a 4-line
//! world. The same parent links double as the counterexample trace.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use silo_coherence::{AccessResult, Background, DuplicateTagDirectory, State};
use silo_types::hash::FxHashMap;
use silo_types::{LineAddr, MemRef};

use crate::engine::{DirtyForwardPolicy, ModelEngine};
use crate::report::{CheckReport, Counterexample, Deviation, InvariantStatus, TraceStep};

/// One operation of the search alphabet: a read or write by one node to
/// one world line. Evictions are not a separate op — accessing a line's
/// conflict partner evicts it through the engine's real replacement
/// path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Op {
    /// Requesting node.
    pub node: usize,
    /// Target line.
    pub line: LineAddr,
    /// Store (true) or load (false).
    pub write: bool,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node {} {} {}",
            self.node,
            if self.write { "writes" } else { "reads" },
            self.line
        )
    }
}

impl Op {
    fn mem_ref(self) -> MemRef {
        if self.write {
            MemRef::write(self.line)
        } else {
            MemRef::read(self.line)
        }
    }
}

/// The bounded world: which lines exist and how far to search.
#[derive(Clone, Debug)]
pub struct World {
    /// Lines of the world (chosen by the world builders to conflict in
    /// the direct-mapped cache levels).
    pub lines: Vec<LineAddr>,
    /// Stop after this many distinct states and report the search
    /// truncated.
    pub max_states: usize,
}

/// Stable invariant order of [`CheckReport::invariants`].
const INVARIANT_NAMES: [&str; 8] = [
    "swmr",
    "single-owner",
    "no-o-state",
    "directory-agreement",
    "packed-roundtrip",
    "dirty-ownership",
    "forward-policy",
    "served-classification",
];
const INV_SWMR: usize = 0;
const INV_SINGLE_OWNER: usize = 1;
const INV_NO_O: usize = 2;
const INV_DIR_AGREE: usize = 3;
const INV_PACKED: usize = 4;
const INV_DIRTY_OWNERSHIP: usize = 5;
const INV_FORWARD_POLICY: usize = 6;
const INV_SERVED: usize = 7;

/// Smallest node count that forces the directory's boxed Large entry
/// form; the packed-roundtrip invariant replays every reachable state
/// vector through both forms.
const LARGE_FORM_NODES: usize = 17;

struct Tally {
    checked: [u64; INVARIANT_NAMES.len()],
    failed: Option<(usize, String)>,
}

impl Tally {
    fn new() -> Self {
        Tally {
            checked: [0; INVARIANT_NAMES.len()],
            failed: None,
        }
    }

    /// Records one evaluation of invariant `inv`; on `Err` latches the
    /// first failure.
    fn assert(&mut self, inv: usize, result: Result<(), String>) -> bool {
        self.checked[inv] += 1;
        match result {
            Ok(()) => true,
            Err(msg) => {
                if self.failed.is_none() {
                    self.failed = Some((inv, msg));
                }
                false
            }
        }
    }
}

/// The first node holding `line` in an owner-like state, with that
/// state.
fn owner_of(dir: &DuplicateTagDirectory, n_nodes: usize, line: LineAddr) -> Option<(usize, State)> {
    (0..n_nodes).find_map(|node| {
        let s = dir.state_of(line, node);
        s.is_ownerlike().then_some((node, s))
    })
}

/// Serializes the checker-visible configuration: one byte per
/// (line, node) packing the directory state nibble and the SRAM
/// presence bit, plus one byte per line for the shared backing level.
/// Complete because every cache level in the bounded worlds is
/// direct-mapped (no replacement recency to hide).
fn fingerprint<E: ModelEngine>(e: &E, lines: &[LineAddr], n_nodes: usize) -> Vec<u8> {
    let mut fp = Vec::with_capacity(lines.len() * (n_nodes + 1));
    for &line in lines {
        for node in 0..n_nodes {
            let s = e.directory().state_of(line, node).to_bits();
            let sram = u8::from(e.cached_in_sram(node, line));
            fp.push((s << 1) | sram);
        }
        fp.push(match e.backing(line) {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
    }
    fp
}

/// Per-state invariants: SWMR, at most one owner, no O where the
/// protocol forbids it, the engine's structural `check`, and the
/// packed-entry roundtrip replay.
#[allow(clippy::too_many_arguments)]
fn check_state<E: ModelEngine>(
    e: &E,
    lines: &[LineAddr],
    n_nodes: usize,
    allows_o: bool,
    tally: &mut Tally,
    scratch_small: &mut DuplicateTagDirectory,
    scratch_large: &mut DuplicateTagDirectory,
    states_buf: &mut Vec<State>,
) -> bool {
    for &line in lines {
        states_buf.clear();
        states_buf.extend((0..n_nodes).map(|node| e.directory().state_of(line, node)));

        let writers = states_buf.iter().filter(|s| s.can_write_silently()).count();
        let valid = states_buf.iter().filter(|s| s.is_valid()).count();
        let ok = if writers > 1 {
            Err(format!("{line}: {writers} M/E copies coexist"))
        } else if writers == 1 && valid > 1 {
            Err(format!(
                "{line}: an M/E copy coexists with {valid} valid copies"
            ))
        } else {
            Ok(())
        };
        if !tally.assert(INV_SWMR, ok) {
            return false;
        }

        let owners = states_buf.iter().filter(|s| s.is_ownerlike()).count();
        let ok = if owners > 1 {
            Err(format!("{line}: {owners} owner-like copies coexist"))
        } else {
            Ok(())
        };
        if !tally.assert(INV_SINGLE_OWNER, ok) {
            return false;
        }

        if !allows_o {
            let ok = match states_buf.iter().position(|&s| s == State::O) {
                Some(node) => Err(format!(
                    "{line}: O state at node {node} in a protocol without O"
                )),
                None => Ok(()),
            };
            if !tally.assert(INV_NO_O, ok) {
                return false;
            }
        }

        if !tally.assert(
            INV_PACKED,
            packed_roundtrip(line, states_buf, scratch_small),
        ) || !tally.assert(
            INV_PACKED,
            packed_roundtrip(line, states_buf, scratch_large),
        ) {
            return false;
        }
    }
    tally.assert(INV_DIR_AGREE, e.check())
}

/// Replays `states` for `line` into a scratch directory through
/// `set_state` (the packed write path) and compares what the packed
/// entry reports — per-node states, holders mask, owner — against the
/// unpacked reference vector. The scratch directory is restored to
/// empty before returning. One scratch uses the inline Small entry
/// form, the other the boxed Large form, so both packings are checked
/// against every reachable state vector.
fn packed_roundtrip(
    line: LineAddr,
    states: &[State],
    scratch: &mut DuplicateTagDirectory,
) -> Result<(), String> {
    let mut result = Ok(());
    for (node, &s) in states.iter().enumerate() {
        let bits = s.to_bits();
        if State::from_bits(bits) != s {
            result = Err(format!(
                "{line}: {s:?} does not roundtrip through bits {bits}"
            ));
        }
        scratch.set_state(line, node, s);
    }

    let ref_mask: u64 = states
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_valid())
        .map(|(node, _)| 1u64 << node)
        .sum();
    let ref_owner = states.iter().position(|s| s.is_ownerlike());

    if result.is_ok() {
        let n_scratch = scratch.n_nodes();
        let readback_ok = scratch
            .lookup_states(line)
            .take(states.len())
            .eq(states.iter().copied());
        if !readback_ok {
            result = Err(format!(
                "{line}: packed entry readback disagrees with reference states"
            ));
        } else if scratch.holders_mask(line) != ref_mask {
            result = Err(format!(
                "{line}: packed mask {:#x} != reference {ref_mask:#x} ({n_scratch}-node form)",
                scratch.holders_mask(line)
            ));
        } else if scratch.owner(line) != ref_owner {
            result = Err(format!(
                "{line}: packed owner {:?} != reference {ref_owner:?} ({n_scratch}-node form)",
                scratch.owner(line)
            ));
        }
    }

    for node in 0..states.len() {
        scratch.set_state(line, node, State::I);
    }
    result
}

/// Per-transition invariants: the access is classified and echoes the
/// request, dirty data never vanishes without writeback evidence, and
/// dirty read forwards follow the protocol's declared policy.
#[allow(clippy::too_many_arguments)]
fn check_transition<E: ModelEngine>(
    e: &E,
    op: Op,
    r: &AccessResult,
    pre_dirty: &[bool],
    pre_owner: Option<(usize, State)>,
    lines: &[LineAddr],
    n_nodes: usize,
    policy: DirtyForwardPolicy,
    tally: &mut Tally,
    deviations: &mut BTreeMap<String, u64>,
) -> bool {
    let ok = if r.served.is_none() {
        Err(format!("{op}: engine did not classify the access"))
    } else if r.line != op.line || r.is_write != op.write {
        Err(format!(
            "{op}: result echoes line {} write={}",
            r.line, r.is_write
        ))
    } else {
        Ok(())
    };
    if !tally.assert(INV_SERVED, ok) {
        return false;
    }

    let writeback_evidence = r.background.iter().any(|b| {
        matches!(
            b,
            Background::MemoryWrite
                | Background::VaultFill {
                    dirty_writeback: true,
                    ..
                }
                | Background::LlcFill {
                    dirty_writeback: true,
                    ..
                }
        )
    });
    for (i, &line) in lines.iter().enumerate() {
        let ok = if pre_dirty[i] && !e.has_dirty_holder(line) && !writeback_evidence {
            Err(format!(
                "{line}: dirty data vanished without a writeback on {op}"
            ))
        } else {
            Ok(())
        };
        if !tally.assert(INV_DIRTY_OWNERSHIP, ok) {
            return false;
        }
    }

    // A dirty read forward: a load that left the SRAM levels and found a
    // dirty owner elsewhere. This is the transition where the protocols
    // differ (the paper's O-state forwarding vs writeback degradation).
    if let Some((o, ostate)) = pre_owner {
        if !op.write && o != op.node && ostate.is_dirty() && r.llc_access {
            let post = e.directory().state_of(op.line, o);
            let memory_write = r
                .background
                .iter()
                .any(|b| matches!(b, Background::MemoryWrite));
            let l1_writeback = r
                .background
                .iter()
                .any(|b| matches!(b, Background::L1Writeback { .. }));
            let (ok, description) = match policy {
                DirtyForwardPolicy::MoesiForward => (
                    if post == State::O && !memory_write {
                        Ok(())
                    } else {
                        Err(format!(
                            "{op}: dirty owner {ostate:?} at node {o} became {post:?} \
                             (memory write: {memory_write}) under O-forwarding"
                        ))
                    },
                    format!("dirty read forward: owner {ostate:?} -> O, supplied core-to-core, no memory traffic"),
                ),
                DirtyForwardPolicy::MemoryWriteback => (
                    if post == State::S && memory_write {
                        Ok(())
                    } else {
                        Err(format!(
                            "{op}: dirty owner {ostate:?} at node {o} became {post:?} \
                             (memory write: {memory_write}) with O-forwarding disabled"
                        ))
                    },
                    format!("dirty read forward: owner {ostate:?} -> S with main-memory writeback (O-forwarding disabled)"),
                ),
                DirtyForwardPolicy::LlcWriteback => (
                    if post == State::S && l1_writeback {
                        Ok(())
                    } else {
                        Err(format!(
                            "{op}: dirty owner {ostate:?} at node {o} became {post:?} \
                             (L1 writeback: {l1_writeback}) under MESI"
                        ))
                    },
                    format!("dirty read forward: owner {ostate:?} -> S with writeback into the LLC"),
                ),
            };
            let passed = tally.assert(INV_FORWARD_POLICY, ok);
            *deviations.entry(description).or_insert(0) += 1;
            if !passed {
                return false;
            }
        }
    }
    let _ = n_nodes;
    true
}

/// Walks the parent links from `id` back to the initial state and
/// returns the operation trace in forward order.
fn trace_to(parents: &[Option<(u32, Op)>], mut id: u32) -> Vec<TraceStep> {
    let mut steps = Vec::new();
    while let Some((parent, op)) = parents[id as usize] {
        steps.push(TraceStep { op, state: id });
        id = parent;
    }
    steps.reverse();
    steps
}

/// Exhaustively explores `world` on engines built by `factory`,
/// checking every invariant at every reachable state and transition.
/// Stops at the first violation (the report then carries a
/// [`Counterexample`]) or when the reachable space is exhausted or the
/// `max_states` bound is hit.
///
/// # Panics
///
/// Panics if the engine reports zero nodes or the world has no lines.
pub fn explore<E: ModelEngine>(
    system: &str,
    factory: impl Fn() -> E,
    world: &World,
) -> CheckReport {
    let probe = factory();
    let n_nodes = probe.n_nodes();
    let allows_o = probe.allows_o();
    let policy = probe.dirty_forward_policy();
    assert!(n_nodes > 0, "world must have nodes");
    assert!(!world.lines.is_empty(), "world must have lines");
    drop(probe);

    let mut ops = Vec::with_capacity(n_nodes * world.lines.len() * 2);
    for node in 0..n_nodes {
        for &line in &world.lines {
            for write in [false, true] {
                ops.push(Op { node, line, write });
            }
        }
    }

    let mut tally = Tally::new();
    let mut deviations: BTreeMap<String, u64> = BTreeMap::new();
    let mut scratch_small = DuplicateTagDirectory::new(n_nodes);
    let mut scratch_large = DuplicateTagDirectory::new(n_nodes.max(LARGE_FORM_NODES));
    let mut states_buf: Vec<State> = Vec::with_capacity(n_nodes);
    let mut pre_dirty = vec![false; world.lines.len()];

    let mut visited: FxHashMap<Vec<u8>, u32> = FxHashMap::default();
    let mut parents: Vec<Option<(u32, Op)>> = Vec::new();
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut depth: Vec<u32> = Vec::new();

    let mut transitions = 0u64;
    let mut max_depth = 0u32;
    let mut truncated = false;
    let mut counterexample = None;

    let root = factory();
    visited.insert(fingerprint(&root, &world.lines, n_nodes), 0);
    parents.push(None);
    depth.push(0);
    if check_state(
        &root,
        &world.lines,
        n_nodes,
        allows_o,
        &mut tally,
        &mut scratch_small,
        &mut scratch_large,
        &mut states_buf,
    ) {
        queue.push_back(0);
    }
    drop(root);

    'bfs: while let Some(id) = queue.pop_front() {
        let path = trace_to(&parents, id);
        for &op in &ops {
            // Rebuild the pre-state by replaying the path on a fresh
            // engine (see module docs for why this beats cloning).
            let mut e = factory();
            for step in &path {
                let _ = e.access(step.op.node, step.op.mem_ref());
            }
            for (i, &line) in world.lines.iter().enumerate() {
                pre_dirty[i] = e.has_dirty_holder(line);
            }
            let pre_owner = owner_of(e.directory(), n_nodes, op.line);

            let r = e.access(op.node, op.mem_ref());
            transitions += 1;

            let fp = fingerprint(&e, &world.lines, n_nodes);
            let next_id = u32::try_from(visited.len()).expect("state ids fit u32");
            let (post_id, is_new) = match visited.entry(fp) {
                std::collections::hash_map::Entry::Occupied(entry) => (*entry.get(), false),
                std::collections::hash_map::Entry::Vacant(entry) => {
                    entry.insert(next_id);
                    parents.push(Some((id, op)));
                    let d = depth[id as usize] + 1;
                    depth.push(d);
                    max_depth = max_depth.max(d);
                    (next_id, true)
                }
            };

            let transition_ok = check_transition(
                &e,
                op,
                &r,
                &pre_dirty,
                pre_owner,
                &world.lines,
                n_nodes,
                policy,
                &mut tally,
                &mut deviations,
            );
            if !transition_ok {
                let mut trace = trace_to(&parents, id);
                trace.push(TraceStep { op, state: post_id });
                let (inv, message) = tally.failed.clone().expect("failed check latches");
                counterexample = Some(Counterexample {
                    invariant: INVARIANT_NAMES[inv],
                    message,
                    trace,
                });
                break 'bfs;
            }

            if is_new {
                let state_ok = check_state(
                    &e,
                    &world.lines,
                    n_nodes,
                    allows_o,
                    &mut tally,
                    &mut scratch_small,
                    &mut scratch_large,
                    &mut states_buf,
                );
                if !state_ok {
                    let (inv, message) = tally.failed.clone().expect("failed check latches");
                    counterexample = Some(Counterexample {
                        invariant: INVARIANT_NAMES[inv],
                        message,
                        trace: trace_to(&parents, post_id),
                    });
                    break 'bfs;
                }
                if visited.len() >= world.max_states {
                    truncated = true;
                    break 'bfs;
                }
                queue.push_back(post_id);
            }
        }
    }

    // A violation found at the root (before the BFS ran) also needs its
    // (empty) counterexample trace.
    if counterexample.is_none() {
        if let Some((inv, message)) = tally.failed.clone() {
            counterexample = Some(Counterexample {
                invariant: INVARIANT_NAMES[inv],
                message,
                trace: Vec::new(),
            });
        }
    }

    let invariants = INVARIANT_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| InvariantStatus {
            name,
            checked: tally.checked[i],
            violations: match &tally.failed {
                Some((inv, _)) if *inv == i => 1,
                _ => 0,
            },
        })
        .collect();

    CheckReport {
        system: system.to_string(),
        nodes: n_nodes,
        lines: world.lines.len(),
        states: visited.len() as u64,
        transitions,
        max_depth,
        exhausted: !truncated && queue.is_empty() && counterexample.is_none(),
        invariants,
        deviations: deviations
            .into_iter()
            .map(|(description, occurrences)| Deviation {
                description,
                occurrences,
            })
            .collect(),
        counterexample,
    }
}
