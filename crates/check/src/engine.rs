//! The checker's view of a protocol engine, implemented by the *real*
//! simulator engines — the model checker exercises the same transition
//! code the hot loop runs, not a re-implementation of it.
//!
//! The bounded worlds are deliberately tiny and adversarial: every
//! cache level is direct-mapped (no replacement-policy hidden state, so
//! the observable fingerprint fully determines future behaviour) and
//! the world's lines are chosen to conflict pairwise in both the L1 and
//! the vault/LLC sets, so evictions, back-invalidations, and dirty
//! victim writebacks are reachable interleavings rather than rare
//! accidents.

use silo_coherence::{
    AccessResult, DuplicateTagDirectory, NodeSpec, PrivateMoesi, PrivateMoesiConfig, SharedMesi,
    SharedMesiConfig, State,
};
use silo_types::{ByteSize, LineAddr, MemRef};

use crate::model::World;

/// Default node count of the bounded worlds (the paper's protocols are
/// symmetric in the node id, so a handful of nodes reaches every
/// transition kind).
pub const DEFAULT_NODES: usize = 4;

/// Default cap on distinct visited states before the search reports
/// itself truncated.
pub const DEFAULT_MAX_STATES: usize = 60_000;

/// How a protocol is expected to handle a read request hitting a dirty
/// owner — the per-protocol dirty-forward transition table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirtyForwardPolicy {
    /// MOESI with O-state forwarding (the paper's SILO): the owner
    /// supplies the data core-to-core and retains it dirty in O. No
    /// memory traffic.
    MoesiForward,
    /// `silo-no-forward`: the owner supplies the data but writes the
    /// line back to main memory and degrades to S (MESI-over-vaults) —
    /// the documented protocol deviation.
    MemoryWriteback,
    /// The shared-LLC MESI baseline: the owner degrades to S and the
    /// dirty line is written back *into the LLC* (not memory).
    LlcWriteback,
}

/// A protocol engine the model checker can drive and inspect. The
/// inspection methods must be read-only (no hit/miss accounting, no
/// recency updates): the checker fingerprints states between
/// transitions and a probe that mutated hidden state would make equal
/// fingerprints behaviourally unequal.
pub trait ModelEngine {
    /// Number of nodes.
    fn n_nodes(&self) -> usize;
    /// Executes one reference from `node` (the same entry point the
    /// simulation loop drives).
    fn access(&mut self, node: usize, mr: MemRef) -> AccessResult;
    /// The functional directory (states, masks, owner caches).
    fn directory(&self) -> &DuplicateTagDirectory;
    /// True when `node`'s private SRAM holds the line.
    fn cached_in_sram(&self, node: usize, line: LineAddr) -> bool;
    /// The shared backing level's view of the line: `Some(dirty)` when
    /// a shared LLC holds it, `None` for protocols without one (SILO's
    /// vaults are private and tracked through the directory).
    fn backing(&self, line: LineAddr) -> Option<bool>;
    /// True when some component still holds the line's data dirty with
    /// respect to main memory (an M/O copy, or a dirty LLC line).
    fn has_dirty_holder(&self, line: LineAddr) -> bool;
    /// The engine's own structural invariants (directory caches,
    /// directory/cache-tag agreement, occupancy).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    fn check(&self) -> Result<(), String>;
    /// Whether the protocol may legally reach the O state.
    fn allows_o(&self) -> bool;
    /// The expected dirty-forward transition for this protocol.
    fn dirty_forward_policy(&self) -> DirtyForwardPolicy;
}

impl ModelEngine for PrivateMoesi {
    fn n_nodes(&self) -> usize {
        self.n_cores()
    }
    fn access(&mut self, node: usize, mr: MemRef) -> AccessResult {
        PrivateMoesi::access(self, node, mr)
    }
    fn directory(&self) -> &DuplicateTagDirectory {
        PrivateMoesi::directory(self)
    }
    fn cached_in_sram(&self, node: usize, line: LineAddr) -> bool {
        self.sram_contains(node, line)
    }
    fn backing(&self, _line: LineAddr) -> Option<bool> {
        None
    }
    fn has_dirty_holder(&self, line: LineAddr) -> bool {
        let dir = PrivateMoesi::directory(self);
        (0..self.n_cores()).any(|n| dir.state_of(line, n).is_dirty())
    }
    fn check(&self) -> Result<(), String> {
        PrivateMoesi::check(self)
    }
    fn allows_o(&self) -> bool {
        self.o_state_forwarding()
    }
    fn dirty_forward_policy(&self) -> DirtyForwardPolicy {
        if self.o_state_forwarding() {
            DirtyForwardPolicy::MoesiForward
        } else {
            DirtyForwardPolicy::MemoryWriteback
        }
    }
}

impl ModelEngine for SharedMesi {
    fn n_nodes(&self) -> usize {
        self.n_cores()
    }
    fn access(&mut self, node: usize, mr: MemRef) -> AccessResult {
        SharedMesi::access(self, node, mr)
    }
    fn directory(&self) -> &DuplicateTagDirectory {
        SharedMesi::directory(self)
    }
    fn cached_in_sram(&self, node: usize, line: LineAddr) -> bool {
        self.sram_contains(node, line)
    }
    fn backing(&self, line: LineAddr) -> Option<bool> {
        self.llc_state(line)
    }
    fn has_dirty_holder(&self, line: LineAddr) -> bool {
        let dir = SharedMesi::directory(self);
        (0..self.n_cores()).any(|n| dir.state_of(line, n) == State::M)
            || self.llc_state(line) == Some(true)
    }
    fn check(&self) -> Result<(), String> {
        SharedMesi::check(self)
    }
    fn allows_o(&self) -> bool {
        false
    }
    fn dirty_forward_policy(&self) -> DirtyForwardPolicy {
        DirtyForwardPolicy::LlcWriteback
    }
}

/// Tunables of a bounded world.
#[derive(Clone, Copy, Debug)]
pub struct WorldParams {
    /// Node count (2..=16; the default reaches every transition kind).
    pub nodes: usize,
    /// Cap on distinct visited states before the search stops and
    /// reports itself truncated.
    pub max_states: usize,
}

impl Default for WorldParams {
    fn default() -> Self {
        WorldParams {
            nodes: DEFAULT_NODES,
            max_states: DEFAULT_MAX_STATES,
        }
    }
}

/// Four lines forming two conflict pairs: with a 4-set direct-mapped
/// vault, lines 1/5 alias set 1 and lines 2/6 alias set 2 — and with a
/// 2-set direct-mapped L1-D, each pair aliases there too. Accessing a
/// line's partner *is* the evict operation of the {read, write, evict}
/// op alphabet, realized through the engine's real eviction path
/// (back-invalidation, directory retirement, dirty victim writeback)
/// instead of a synthetic hook.
fn world_lines() -> Vec<LineAddr> {
    [1u64, 5, 2, 6].into_iter().map(LineAddr::new).collect()
}

/// SRAM geometry of the bounded world: a 2-line direct-mapped L1-D (so
/// the conflict pairs alias), same for the (unused) L1-I, no L2.
fn tiny_node_spec() -> NodeSpec {
    NodeSpec {
        l1i_capacity: ByteSize::from_bytes(128),
        l1d_capacity: ByteSize::from_bytes(128),
        l1_ways: 1,
        l2_capacity: None,
        l2_ways: 1,
    }
}

/// Builds the SILO bounded world: 4-line direct-mapped private vaults
/// over the tiny SRAM node, with or without O-state forwarding. Returns
/// the engine factory and the world description.
pub fn silo_world(
    params: WorldParams,
    o_state_forwarding: bool,
) -> (impl Fn() -> PrivateMoesi, World) {
    let nodes = params.nodes;
    let factory = move || {
        PrivateMoesi::new(
            nodes,
            &PrivateMoesiConfig {
                node_spec: tiny_node_spec(),
                vault_capacity: ByteSize::from_bytes(256),
                scale: 1,
                ideal_miss_predict: true,
                o_state_forwarding,
            },
        )
    };
    (
        factory,
        World {
            lines: world_lines(),
            max_states: params.max_states,
        },
    )
}

/// Builds the shared-LLC MESI bounded world. `llc_capacity_mult`
/// scales the aggregate LLC (1 for the baseline geometry, 2 for
/// `baseline-2x`): per-bank capacity is 4 lines x mult, direct-mapped.
pub fn baseline_world(
    params: WorldParams,
    llc_capacity_mult: u64,
) -> (impl Fn() -> SharedMesi, World) {
    let nodes = params.nodes;
    let factory = move || {
        SharedMesi::new(
            nodes,
            &SharedMesiConfig {
                node_spec: tiny_node_spec(),
                llc_capacity: ByteSize::from_bytes(256 * nodes as u64 * llc_capacity_mult),
                llc_ways: 1,
                scale: 1,
            },
        )
    };
    (
        factory,
        World {
            lines: world_lines(),
            max_states: params.max_states,
        },
    )
}
