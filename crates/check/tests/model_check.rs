//! End-to-end model-checker tests: the four shipped protocol worlds
//! must explore cleanly, and a deliberately broken protocol must be
//! caught with a counterexample trace — proving the checker detects
//! bugs rather than vacuously passing.

use silo_check::{
    baseline_world, explore, silo_world, DirtyForwardPolicy, ModelEngine, Op, World, WorldParams,
};
use silo_coherence::{AccessResult, DuplicateTagDirectory, ServedBy, State};
use silo_types::{LineAddr, MemRef};

fn params(max_states: usize) -> WorldParams {
    WorldParams {
        nodes: 4,
        max_states,
    }
}

#[test]
fn silo_world_explores_clean() {
    let (factory, world) = silo_world(params(8000), true);
    let report = explore("silo", factory, &world);
    assert!(report.ok(), "{:?}", report.counterexample);
    assert!(report.states >= 4000, "only {} states", report.states);
    assert!(report.transitions > report.states);
    // The O-forwarding transition table must actually have been
    // exercised, or the run proves nothing about the paper's protocol.
    assert!(
        report
            .deviations
            .iter()
            .any(|d| d.description.contains("-> O") && d.occurrences > 0),
        "no O-forwarding transitions observed: {:?}",
        report.deviations
    );
    let forward = report
        .invariants
        .iter()
        .find(|i| i.name == "forward-policy")
        .expect("forward-policy tallied");
    assert!(forward.checked > 0);
}

#[test]
fn silo_no_forward_deviates_as_documented() {
    let (factory, world) = silo_world(params(8000), false);
    let report = explore("silo-no-forward", factory, &world);
    assert!(report.ok(), "{:?}", report.counterexample);
    // The documented degradation: dirty reads write back to memory and
    // the owner falls to S. It must appear as an expected deviation,
    // never as a violation, and O must never be reached.
    assert!(
        report
            .deviations
            .iter()
            .any(|d| d.description.contains("main-memory writeback") && d.occurrences > 0),
        "no writeback deviations observed: {:?}",
        report.deviations
    );
    let no_o = report
        .invariants
        .iter()
        .find(|i| i.name == "no-o-state")
        .expect("no-o-state tallied");
    assert!(no_o.checked > 0 && no_o.violations == 0);
}

#[test]
fn baseline_worlds_explore_clean() {
    for mult in [1u64, 2] {
        let (factory, world) = baseline_world(params(8000), mult);
        let report = explore("baseline", factory, &world);
        assert!(report.ok(), "mult {mult}: {:?}", report.counterexample);
        assert!(report.states >= 4000, "only {} states", report.states);
        assert!(
            report
                .deviations
                .iter()
                .any(|d| d.description.contains("writeback into the LLC")),
            "mult {mult}: no LLC writeback forwards observed: {:?}",
            report.deviations
        );
    }
}

#[test]
fn truncated_search_reports_not_exhausted() {
    let (factory, world) = silo_world(params(50), true);
    let report = explore("silo", factory, &world);
    assert!(report.ok());
    assert!(!report.exhausted);
    assert_eq!(report.states, 50);
}

/// A toy MSI protocol with a seeded mutation: stores take M without
/// invalidating the other sharers. Everything else (reads, dirty-owner
/// degradation with a memory writeback) is implemented correctly, so
/// the *only* way the checker can flag it is by actually reaching a
/// state where an M copy coexists with stale sharers.
struct BrokenMsi {
    dir: DuplicateTagDirectory,
    n: usize,
}

impl BrokenMsi {
    fn new(n: usize) -> Self {
        BrokenMsi {
            dir: DuplicateTagDirectory::new(n),
            n,
        }
    }
}

impl ModelEngine for BrokenMsi {
    fn n_nodes(&self) -> usize {
        self.n
    }

    fn access(&mut self, node: usize, mr: MemRef) -> AccessResult {
        let line = mr.line;
        let mut r = AccessResult {
            served: Some(ServedBy::Memory),
            llc_access: true,
            line,
            is_write: mr.kind.is_write(),
            ..AccessResult::default()
        };
        if mr.kind.is_write() {
            // SEEDED BUG: the other holders are never invalidated.
            self.dir.set_state(line, node, State::M);
        } else if !self.dir.state_of(line, node).is_valid() {
            let owner = (0..self.n).find(|&o| self.dir.state_of(line, o) == State::M);
            if let Some(o) = owner {
                self.dir.set_state(line, o, State::S);
                r.background.push(silo_coherence::Background::MemoryWrite);
            }
            self.dir.set_state(line, node, State::S);
        }
        r
    }

    fn directory(&self) -> &DuplicateTagDirectory {
        &self.dir
    }
    fn cached_in_sram(&self, node: usize, line: LineAddr) -> bool {
        self.dir.state_of(line, node).is_valid()
    }
    fn backing(&self, _line: LineAddr) -> Option<bool> {
        None
    }
    fn has_dirty_holder(&self, line: LineAddr) -> bool {
        (0..self.n).any(|o| self.dir.state_of(line, o).is_dirty())
    }
    fn check(&self) -> Result<(), String> {
        Ok(())
    }
    fn allows_o(&self) -> bool {
        false
    }
    fn dirty_forward_policy(&self) -> DirtyForwardPolicy {
        DirtyForwardPolicy::MemoryWriteback
    }
}

#[test]
fn seeded_mutation_is_caught_with_a_counterexample() {
    let world = World {
        lines: vec![LineAddr::new(1), LineAddr::new(2)],
        max_states: 10_000,
    };
    let report = explore("broken-msi", || BrokenMsi::new(3), &world);
    assert!(!report.ok());
    let cex = report.counterexample.expect("counterexample produced");
    assert_eq!(
        cex.invariant, "swmr",
        "unexpected invariant: {}",
        cex.message
    );
    assert!(!cex.trace.is_empty());
    // The trace is a reproduction recipe: replaying it on a fresh
    // engine must land in the same violating state.
    let mut e = BrokenMsi::new(3);
    for step in &cex.trace {
        let _ = e.access(step.op.node, step.op.mem_ref_for_test());
    }
    let line = cex.trace.last().unwrap().op.line;
    let writers = (0..3)
        .filter(|&n| e.dir.state_of(line, n).can_write_silently())
        .count();
    let valid = (0..3)
        .filter(|&n| e.dir.state_of(line, n).is_valid())
        .count();
    assert!(
        writers > 1 || (writers == 1 && valid > 1),
        "replayed trace does not violate SWMR"
    );
}

/// Minimal re-derivation of `Op -> MemRef` for the replay assertion, so
/// the test does not depend on a private helper.
trait OpExt {
    fn mem_ref_for_test(&self) -> MemRef;
}
impl OpExt for Op {
    fn mem_ref_for_test(&self) -> MemRef {
        if self.write {
            MemRef::write(self.line)
        } else {
            MemRef::read(self.line)
        }
    }
}
