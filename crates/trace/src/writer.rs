//! Streaming `.silotrace` writer.

use crate::wire::{put_varint, zigzag, Fnv};
use crate::{TraceError, TraceHeader, END_TAG, MAGIC, MAX_STRING_LEN, VERSION};
use silo_types::{AccessKind, MemRef};
use std::io::Write;
use std::path::Path;

/// The 2-bit on-wire encoding of an access kind.
pub(crate) fn kind_bits(kind: AccessKind) -> u64 {
    match kind {
        AccessKind::IFetch => 0,
        AccessKind::Read => 1,
        AccessKind::Write => 2,
    }
}

/// Inverse of [`kind_bits`]; the reserved value 3 yields `None`.
pub(crate) fn kind_from_bits(bits: u64) -> Option<AccessKind> {
    match bits {
        0 => Some(AccessKind::IFetch),
        1 => Some(AccessKind::Read),
        2 => Some(AccessKind::Write),
        _ => None,
    }
}

fn encode_string(out: &mut Vec<u8>, what: &str, s: &str) -> Result<(), TraceError> {
    if s.len() > MAX_STRING_LEN as usize {
        return Err(TraceError::Io(format!(
            "{what} string of {} bytes exceeds the {MAX_STRING_LEN}-byte header limit",
            s.len()
        )));
    }
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

pub(crate) fn encode_header(header: &TraceHeader) -> Result<Vec<u8>, TraceError> {
    if header.cores == 0 || header.cores > crate::MAX_CORES as usize {
        return Err(TraceError::Io(format!(
            "core count {} outside [1, {}]",
            header.cores,
            crate::MAX_CORES
        )));
    }
    let mut out = Vec::with_capacity(64 + header.name.len() + header.provenance.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(header.cores as u32).to_le_bytes());
    out.extend_from_slice(&header.refs_per_core.to_le_bytes());
    out.extend_from_slice(&header.seed.to_le_bytes());
    encode_string(&mut out, "name", &header.name)?;
    encode_string(&mut out, "provenance", &header.provenance)?;
    Ok(out)
}

/// Streams core-tagged records into a `.silotrace` file (or any
/// [`Write`] sink), maintaining the per-core delta state and the
/// running checksum. Call [`TraceWriter::finish`] to seal the file with
/// the sentinel and footer — dropping the writer without finishing
/// leaves a truncated stream that [`crate::verify`] rejects.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    hash: Fnv,
    last_line: Vec<u64>,
    per_core: Vec<u64>,
    buf: Vec<u8>,
}

impl TraceWriter<std::io::BufWriter<std::fs::File>> {
    /// Creates `path` and writes the header for `header`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] when the file cannot be created and
    /// propagates header-encoding failures.
    pub fn create(path: &Path, header: &TraceHeader) -> Result<Self, TraceError> {
        let file = std::fs::File::create(path)
            .map_err(|e| TraceError::Io(format!("cannot create {}: {e}", path.display())))?;
        TraceWriter::new(std::io::BufWriter::new(file), header)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wraps `out` and writes the header. Hand in a buffered writer for
    /// file sinks; every record is a handful of small writes.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] for unencodable headers or write failures.
    pub fn new(out: W, header: &TraceHeader) -> Result<Self, TraceError> {
        let mut w = TraceWriter {
            out,
            hash: Fnv::new(),
            last_line: vec![0; header.cores],
            per_core: vec![0; header.cores],
            buf: Vec::with_capacity(32),
        };
        let bytes = encode_header(header)?;
        w.emit(&bytes)?;
        Ok(w)
    }

    fn emit(&mut self, bytes: &[u8]) -> Result<(), TraceError> {
        self.hash.update(bytes);
        self.out.write_all(bytes)?;
        Ok(())
    }

    /// Appends one reference of `core`'s stream.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on write failures.
    ///
    /// # Panics
    ///
    /// Panics if `core` is outside the header's core count.
    pub fn write(&mut self, core: usize, mr: MemRef) -> Result<(), TraceError> {
        assert!(core < self.last_line.len(), "core {core} out of range");
        let line = mr.line.as_u64();
        let delta = line.wrapping_sub(self.last_line[core]) as i64;
        self.last_line[core] = line;
        self.per_core[core] += 1;
        let tag = ((core as u64) << 3) | (kind_bits(mr.kind) << 1) | mr.dependent as u64;
        self.buf.clear();
        put_varint(&mut self.buf, tag);
        put_varint(&mut self.buf, mr.gap_instructions as u64);
        put_varint(&mut self.buf, zigzag(delta));
        let buf = std::mem::take(&mut self.buf);
        self.emit(&buf)?;
        self.buf = buf;
        Ok(())
    }

    /// References written so far, per core.
    pub fn per_core_counts(&self) -> &[u64] {
        &self.per_core
    }

    /// Seals the trace: sentinel tag, record count, checksum; flushes
    /// and returns the sink.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on write failures.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.emit(&[END_TAG as u8])?;
        let count: u64 = self.per_core.iter().sum();
        self.emit(&count.to_le_bytes())?;
        let digest = self.hash.digest();
        self.out.write_all(&digest.to_le_bytes())?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Writes fully materialized per-core traces to `path`, interleaving
/// the streams round-robin (one reference per core per turn — the
/// order the simulation loop consumes them, so replay needs only a few
/// buffered records per core).
///
/// # Errors
///
/// Propagates [`TraceWriter`] failures.
///
/// # Panics
///
/// Panics if `traces.len()` differs from `header.cores`.
pub fn write_traces(
    path: &Path,
    header: &TraceHeader,
    traces: &[Vec<MemRef>],
) -> Result<(), TraceError> {
    assert_eq!(traces.len(), header.cores, "one stream per core");
    let mut w = TraceWriter::create(path, header)?;
    let longest = traces.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..longest {
        for (core, trace) in traces.iter().enumerate() {
            if let Some(&mr) = trace.get(i) {
                w.write(core, mr)?;
            }
        }
    }
    w.finish()?;
    Ok(())
}
