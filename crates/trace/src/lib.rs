//! Compact binary capture/replay of memory-reference traces.
//!
//! This crate defines the `.silotrace` on-disk format and the streaming
//! [`TraceWriter`] / [`TraceReader`] APIs the simulator uses to record
//! synthetic workloads once and replay them many times — across sweep
//! points, systems, and sessions — without materializing the whole
//! reference stream in memory. It depends only on `silo-types` and the
//! standard library.
//!
//! # On-disk format (version 1, all integers little-endian)
//!
//! ```text
//! header   := magic("SILOTRC\0") version:u32 cores:u32
//!             refs_per_core:u64 seed:u64
//!             name_len:u32 name_bytes provenance_len:u32 provenance_bytes
//! records  := record* end_tag(0x06)
//! record   := tag:varint gap:varint line_delta:zigzag-varint
//! tag      := core << 3 | kind << 1 | dependent     (kind 3 is reserved)
//! footer   := record_count:u64 checksum:u64
//! ```
//!
//! * `kind` is 0 for instruction fetches, 1 for reads, 2 for writes; the
//!   reserved value 3 with core 0 forms the end-of-records sentinel tag
//!   `0x06`.
//! * `line_delta` is the difference between this record's line address
//!   and the previous record *of the same core*, zigzag-mapped so small
//!   forward and backward strides encode in one or two bytes. The first
//!   record of each core is a delta from zero.
//! * `refs_per_core` in the header is a sizing hint (the writer's
//!   declared per-core length); the authoritative count is the footer's
//!   `record_count`, and `name` / `provenance` record where the trace
//!   came from (workload name, generator seed, free-form origin).
//! * `checksum` is 64-bit FNV-1a over every preceding byte of the file
//!   — header, records, sentinel, and `record_count` — so any
//!   truncation or corruption is detected by [`verify`].
//!
//! # Streaming
//!
//! Records are multiplexed into one stream by the core id carried in
//! each tag. [`TraceWriter::write`] appends records in call order;
//! recording round-robin across cores (one reference per core per turn,
//! the order the simulation loop consumes them) lets [`TraceReader`]
//! replay with O(cores) buffered records: its peak memory is the
//! `BufReader` buffer plus a few records per core, independent of trace
//! length. Replaying a trace with a consumption order that diverges
//! from the recorded interleaving still works, but buffers the skipped
//! records in between.

#![forbid(unsafe_code)]

mod reader;
mod wire;
mod writer;

pub use reader::{read_header, read_traces, verify, verify_stream, TraceReader, TraceSummary};
pub use writer::{write_traces, TraceWriter};

use silo_types::MemRef;
use std::fmt;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"SILOTRC\0";

/// The current (and only) format version.
pub const VERSION: u32 = 1;

/// File extension conventionally used for traces.
pub const EXTENSION: &str = "silotrace";

/// The sentinel tag terminating the record stream: core 0 with the
/// reserved kind value 3.
pub(crate) const END_TAG: u64 = 0b110;

/// Upper bound accepted for the header's name/provenance strings, so a
/// corrupt length prefix cannot trigger a huge allocation.
pub(crate) const MAX_STRING_LEN: u32 = 1 << 20;

/// Upper bound accepted for the header's core count, so a corrupt
/// field cannot trigger multi-gigabyte per-core allocations before the
/// checksum gets a chance to reject the file.
pub const MAX_CORES: u32 = 1 << 16;

/// Trace metadata stored in the file header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceHeader {
    /// Number of cores whose reference streams the trace multiplexes.
    pub cores: usize,
    /// Declared per-core reference count (a hint; the footer's record
    /// count is authoritative).
    pub refs_per_core: u64,
    /// RNG seed of the generator that produced the trace (provenance;
    /// zero when not applicable).
    pub seed: u64,
    /// Workload name the trace was captured from; replayed runs label
    /// their result rows with it.
    pub name: String,
    /// Free-form provenance line (generator, scale, recording session).
    pub provenance: String,
}

/// Everything that can go wrong reading or writing a trace file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// An underlying I/O operation failed.
    Io(String),
    /// The file does not start with the `.silotrace` magic.
    BadMagic,
    /// The file's format version is newer than this reader.
    UnsupportedVersion(u32),
    /// The file violates the format: truncated stream, reserved tag,
    /// count mismatch, or checksum failure.
    Corrupt(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(msg) => write!(f, "{msg}"),
            TraceError::BadMagic => write!(f, "not a .silotrace file (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace format version {v} (this reader speaks {VERSION})"
                )
            }
            TraceError::Corrupt(msg) => write!(f, "corrupt trace: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceError::Corrupt("unexpected end of file".into())
        } else {
            TraceError::Io(e.to_string())
        }
    }
}

/// A per-core stream of memory references the simulation loop can pull
/// from one record at a time.
///
/// Implementations are *fused per core*: once `next(core)` returns
/// `None` for a core it keeps returning `None` for that core. The run
/// loop interleaves cores round-robin and stops once every core is
/// exhausted.
pub trait TraceSource {
    /// The next reference of `core`'s stream, or `None` when that
    /// core's stream is exhausted (or `core` is out of range).
    fn next(&mut self, core: usize) -> Option<MemRef>;

    /// Total number of references across all cores, when known up
    /// front (used for sizing hints only, never for control flow).
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

/// A [`TraceSource`] over borrowed, fully materialized per-core traces
/// — the adapter between the legacy `&[Vec<MemRef>]` APIs and the
/// streaming run loop.
#[derive(Clone, Debug)]
pub struct SliceTrace<'a> {
    traces: &'a [Vec<MemRef>],
    pos: Vec<usize>,
}

impl<'a> SliceTrace<'a> {
    /// Wraps per-core traces; `traces[c]` is core `c`'s stream.
    pub fn new(traces: &'a [Vec<MemRef>]) -> Self {
        SliceTrace {
            traces,
            pos: vec![0; traces.len()],
        }
    }
}

impl TraceSource for SliceTrace<'_> {
    fn next(&mut self, core: usize) -> Option<MemRef> {
        let r = *self.traces.get(core)?.get(*self.pos.get(core)?)?;
        self.pos[core] += 1;
        Some(r)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.traces.iter().map(|t| t.len() as u64).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_types::LineAddr;

    #[test]
    fn slice_trace_streams_each_core_in_order_and_fuses() {
        let traces = vec![
            vec![
                MemRef::read(LineAddr::new(1)),
                MemRef::read(LineAddr::new(2)),
            ],
            vec![MemRef::write(LineAddr::new(9))],
        ];
        let mut s = SliceTrace::new(&traces);
        assert_eq!(s.len_hint(), Some(3));
        assert_eq!(s.next(0), Some(traces[0][0]));
        assert_eq!(s.next(1), Some(traces[1][0]));
        assert_eq!(s.next(1), None);
        assert_eq!(s.next(1), None, "exhausted cores stay exhausted");
        assert_eq!(s.next(0), Some(traces[0][1]));
        assert_eq!(s.next(0), None);
        assert_eq!(s.next(7), None, "out-of-range cores yield nothing");
    }

    #[test]
    fn errors_display_their_cause() {
        assert!(TraceError::BadMagic.to_string().contains("magic"));
        assert!(TraceError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(TraceError::Corrupt("checksum mismatch".into())
            .to_string()
            .contains("checksum"));
        let eof = std::io::Error::from(std::io::ErrorKind::UnexpectedEof);
        assert!(matches!(TraceError::from(eof), TraceError::Corrupt(_)));
    }
}
