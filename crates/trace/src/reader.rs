//! Streaming `.silotrace` reader, header inspection, and full-file
//! validation.

use crate::wire::{at_eof, read_array, read_u32, read_u64, read_varint, unzigzag, HashingReader};
use crate::writer::{kind_bits, kind_from_bits};
use crate::{TraceError, TraceHeader, TraceSource, END_TAG, MAGIC, MAX_STRING_LEN, VERSION};
use silo_types::{LineAddr, MemRef};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

fn decode_string<R: Read>(r: &mut R, what: &str) -> Result<String, TraceError> {
    let len = read_u32(r)?;
    if len > MAX_STRING_LEN {
        return Err(TraceError::Corrupt(format!(
            "{what} length {len} exceeds the {MAX_STRING_LEN}-byte header limit"
        )));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| TraceError::Corrupt(format!("{what} is not UTF-8")))
}

pub(crate) fn decode_header<R: Read>(r: &mut R) -> Result<TraceHeader, TraceError> {
    let magic: [u8; 8] = read_array(r)?;
    if magic != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let cores = read_u32(r)?;
    if cores == 0 || cores > crate::MAX_CORES {
        return Err(TraceError::Corrupt(format!(
            "header declares {cores} cores (accepted range: 1..={})",
            crate::MAX_CORES
        )));
    }
    let cores = cores as usize;
    let refs_per_core = read_u64(r)?;
    let seed = read_u64(r)?;
    let name = decode_string(r, "workload name")?;
    let provenance = decode_string(r, "provenance")?;
    Ok(TraceHeader {
        cores,
        refs_per_core,
        seed,
        name,
        provenance,
    })
}

/// Reads and validates just the header of `path` (magic, version,
/// string bounds) without touching the record stream.
///
/// # Errors
///
/// Returns [`TraceError`] for I/O failures or malformed headers.
pub fn read_header(path: &Path) -> Result<TraceHeader, TraceError> {
    let file = std::fs::File::open(path)
        .map_err(|e| TraceError::Io(format!("cannot open {}: {e}", path.display())))?;
    decode_header(&mut BufReader::new(file))
}

/// Everything a full validation pass learns about a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// The validated header.
    pub header: TraceHeader,
    /// Total records in the stream (matches the footer count).
    pub records: u64,
    /// Records per core.
    pub per_core: Vec<u64>,
    /// Record counts by kind: instruction fetches, reads, writes.
    pub kinds: [u64; 3],
    /// Records flagged as dependent on the previous miss.
    pub dependent: u64,
}

/// Validates an entire trace in one streaming pass — header, every
/// record tag, footer count, and FNV-1a checksum — with memory bounded
/// by the read buffer. The builder runs this on every `trace:file=`
/// workload, so replay itself can stream without re-validating.
///
/// # Errors
///
/// Returns [`TraceError::Corrupt`] for truncated streams, reserved
/// tags, out-of-range cores, count mismatches, checksum failures, or
/// trailing bytes, and [`TraceError::Io`] for filesystem problems.
pub fn verify(path: &Path) -> Result<TraceSummary, TraceError> {
    let file = std::fs::File::open(path)
        .map_err(|e| TraceError::Io(format!("cannot open {}: {e}", path.display())))?;
    verify_stream(BufReader::new(file))
}

/// [`verify`] over any buffered byte stream.
///
/// # Errors
///
/// Same as [`verify`].
pub fn verify_stream<R: BufRead>(inner: R) -> Result<TraceSummary, TraceError> {
    let mut r = HashingReader::new(inner);
    let header = decode_header(&mut r)?;
    let mut per_core = vec![0u64; header.cores];
    let mut kinds = [0u64; 3];
    let mut dependent = 0u64;
    loop {
        let tag = read_varint(&mut r)?;
        if tag == END_TAG {
            break;
        }
        let (core, kind) = split_tag(tag, header.cores)?;
        let gap = read_varint(&mut r)?;
        if gap > u32::MAX as u64 {
            return Err(TraceError::Corrupt(format!("gap {gap} overflows u32")));
        }
        read_varint(&mut r)?; // line delta: any 64-bit value is valid
        per_core[core] += 1;
        kinds[kind_bits(kind) as usize] += 1;
        dependent += tag & 1;
    }
    let count = read_u64(&mut r)?;
    let records: u64 = per_core.iter().sum();
    if count != records {
        return Err(TraceError::Corrupt(format!(
            "footer count {count} does not match the {records} records present"
        )));
    }
    let computed = r.digest();
    let inner = r.inner_mut();
    let stored = read_u64(inner)?;
    if stored != computed {
        return Err(TraceError::Corrupt(format!(
            "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        )));
    }
    if !at_eof(inner)? {
        return Err(TraceError::Corrupt(
            "trailing bytes after the footer".into(),
        ));
    }
    Ok(TraceSummary {
        header,
        records,
        per_core,
        kinds,
        dependent,
    })
}

fn split_tag(tag: u64, cores: usize) -> Result<(usize, silo_types::AccessKind), TraceError> {
    let kind = kind_from_bits((tag >> 1) & 0b11)
        .ok_or_else(|| TraceError::Corrupt(format!("reserved kind in record tag {tag:#x}")))?;
    let core = (tag >> 3) as usize;
    if core >= cores {
        return Err(TraceError::Corrupt(format!(
            "record for core {core} in a {cores}-core trace"
        )));
    }
    Ok((core, kind))
}

/// A streaming [`TraceSource`] over a `.silotrace` byte stream.
///
/// Records are decoded on demand; references for cores other than the
/// one being pulled are parked in small per-core queues. When the trace
/// was recorded round-robin (as [`crate::write_traces`] and the
/// simulator's capture path do) and is consumed round-robin (as the run
/// loop does), those queues hold at most one record per core, so peak
/// memory is the read buffer plus O(cores) — independent of trace
/// length.
///
/// `open` validates only the header. Run [`verify`] first (the
/// simulation builder does) to reject corrupt files up front; a decode
/// anomaly mid-replay ends the affected streams early instead of
/// panicking.
#[derive(Debug)]
pub struct TraceReader<R = BufReader<std::fs::File>> {
    input: R,
    header: TraceHeader,
    last_line: Vec<u64>,
    pending: Vec<VecDeque<MemRef>>,
    finished: bool,
}

impl TraceReader<BufReader<std::fs::File>> {
    /// Opens `path` and validates its header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] for I/O failures or malformed headers.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        let file = std::fs::File::open(path)
            .map_err(|e| TraceError::Io(format!("cannot open {}: {e}", path.display())))?;
        TraceReader::new(BufReader::new(file))
    }
}

impl<R: BufRead> TraceReader<R> {
    /// Wraps a buffered byte stream positioned at the file start and
    /// validates the header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] for read failures or malformed headers.
    pub fn new(mut input: R) -> Result<Self, TraceError> {
        let header = decode_header(&mut input)?;
        let cores = header.cores;
        Ok(TraceReader {
            input,
            header,
            last_line: vec![0; cores],
            pending: vec![VecDeque::new(); cores],
            finished: false,
        })
    }

    /// The trace's header metadata.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Records currently parked in the per-core queues (bounded by the
    /// interleaving skew between recording and consumption order).
    pub fn buffered(&self) -> usize {
        self.pending.iter().map(VecDeque::len).sum()
    }

    /// Decodes the next record in stream order.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] for decode failures; `Ok(None)` at the
    /// sentinel.
    fn read_record(&mut self) -> Result<Option<(usize, MemRef)>, TraceError> {
        if self.finished {
            return Ok(None);
        }
        let tag = read_varint(&mut self.input)?;
        if tag == END_TAG {
            self.finished = true;
            return Ok(None);
        }
        let (core, kind) = split_tag(tag, self.header.cores)?;
        let gap = read_varint(&mut self.input)?;
        if gap > u32::MAX as u64 {
            return Err(TraceError::Corrupt(format!("gap {gap} overflows u32")));
        }
        let delta = unzigzag(read_varint(&mut self.input)?);
        let line = self.last_line[core].wrapping_add(delta as u64);
        self.last_line[core] = line;
        Ok(Some((
            core,
            MemRef {
                line: LineAddr::new(line),
                kind,
                gap_instructions: gap as u32,
                dependent: tag & 1 == 1,
            },
        )))
    }
}

impl<R: BufRead> TraceSource for TraceReader<R> {
    fn next(&mut self, core: usize) -> Option<MemRef> {
        if core >= self.header.cores {
            return None;
        }
        loop {
            if let Some(r) = self.pending[core].pop_front() {
                return Some(r);
            }
            match self.read_record() {
                Ok(Some((c, r))) if c == core => return Some(r),
                Ok(Some((c, r))) => self.pending[c].push_back(r),
                Ok(None) => return None,
                Err(_) => {
                    // Pre-validated files never land here (the builder
                    // runs `verify`); on a mid-replay anomaly, end the
                    // stream rather than panic inside the run loop.
                    self.finished = true;
                    return None;
                }
            }
        }
    }

    fn len_hint(&self) -> Option<u64> {
        (self.header.refs_per_core > 0)
            .then(|| self.header.refs_per_core * self.header.cores as u64)
    }
}

/// Reads an entire trace into per-core vectors (strict: any decode
/// failure is an error, unlike the lenient replay path).
///
/// # Errors
///
/// Returns [`TraceError`] for I/O failures or malformed content.
pub fn read_traces(path: &Path) -> Result<(TraceHeader, Vec<Vec<MemRef>>), TraceError> {
    let mut reader = TraceReader::open(path)?;
    let mut traces: Vec<Vec<MemRef>> = vec![Vec::new(); reader.header.cores];
    while let Some((core, r)) = reader.read_record()? {
        traces[core].push(r);
    }
    let header = reader.header;
    Ok((header, traces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceWriter;
    use silo_types::AccessKind;
    use std::io::Cursor;

    fn sample_header(cores: usize) -> TraceHeader {
        TraceHeader {
            cores,
            refs_per_core: 3,
            seed: 42,
            name: "unit-workload".into(),
            provenance: "silo-trace unit test".into(),
        }
    }

    /// A small deterministic mixed-kind trace with forward and backward
    /// strides.
    fn sample_traces(cores: usize, len: usize) -> Vec<Vec<MemRef>> {
        (0..cores)
            .map(|c| {
                (0..len)
                    .map(|i| MemRef {
                        line: LineAddr::new(
                            ((c as u64 + 1) << 32) ^ (i as u64 * 37 % 101) << (i % 3),
                        ),
                        kind: match i % 3 {
                            0 => AccessKind::Read,
                            1 => AccessKind::Write,
                            _ => AccessKind::IFetch,
                        },
                        gap_instructions: (i as u32 * 7) % 23,
                        dependent: i % 4 == 0,
                    })
                    .collect()
            })
            .collect()
    }

    fn encode(header: &TraceHeader, traces: &[Vec<MemRef>]) -> Vec<u8> {
        let mut w = TraceWriter::new(Vec::new(), header).expect("writer");
        let longest = traces.iter().map(Vec::len).max().unwrap_or(0);
        for i in 0..longest {
            for (core, t) in traces.iter().enumerate() {
                if let Some(&mr) = t.get(i) {
                    w.write(core, mr).expect("write");
                }
            }
        }
        w.finish().expect("finish")
    }

    #[test]
    fn round_trip_preserves_every_record_and_the_header() {
        let header = sample_header(3);
        let traces = sample_traces(3, 40);
        let bytes = encode(&header, &traces);
        let mut r = TraceReader::new(Cursor::new(bytes)).expect("reader");
        assert_eq!(r.header(), &header);
        assert_eq!(r.len_hint(), Some(9));
        for i in 0..40 {
            for (core, t) in traces.iter().enumerate() {
                assert_eq!(r.next(core), Some(t[i]), "core {core} record {i}");
            }
        }
        for core in 0..3 {
            assert_eq!(r.next(core), None, "core {core} exhausted");
        }
    }

    #[test]
    fn round_robin_replay_buffers_at_most_one_record_per_core() {
        let traces = sample_traces(4, 64);
        let bytes = encode(&sample_header(4), &traces);
        let mut r = TraceReader::new(Cursor::new(bytes)).expect("reader");
        for _ in 0..64 {
            for core in 0..4 {
                assert!(r.next(core).is_some());
                assert!(
                    r.buffered() < 4,
                    "round-robin replay must stay O(cores): {} buffered",
                    r.buffered()
                );
            }
        }
    }

    #[test]
    fn skewed_consumption_still_yields_complete_per_core_streams() {
        let traces = sample_traces(2, 20);
        let bytes = encode(&sample_header(2), &traces);
        let mut r = TraceReader::new(Cursor::new(bytes)).expect("reader");
        // Drain core 1 first, then core 0: order within each core holds.
        let got1: Vec<MemRef> = std::iter::from_fn(|| r.next(1)).collect();
        let got0: Vec<MemRef> = std::iter::from_fn(|| r.next(0)).collect();
        assert_eq!(got1, traces[1]);
        assert_eq!(got0, traces[0]);
    }

    #[test]
    fn verify_accepts_sealed_streams_and_counts_kinds() {
        let traces = sample_traces(2, 30);
        let bytes = encode(&sample_header(2), &traces);
        let s = verify_stream(Cursor::new(bytes)).expect("valid");
        assert_eq!(s.records, 60);
        assert_eq!(s.per_core, vec![30, 30]);
        assert_eq!(s.kinds.iter().sum::<u64>(), 60);
        assert_eq!(s.kinds[1], 20, "a third of the sample records read");
        assert_eq!(s.dependent, 16, "every fourth record is dependent");
    }

    #[test]
    fn verify_rejects_corruption_truncation_and_trailing_bytes() {
        let header = sample_header(2);
        let bytes = encode(&header, &sample_traces(2, 25));

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert_eq!(verify_stream(Cursor::new(bad)), Err(TraceError::BadMagic));

        // Future version.
        let mut bad = bytes.clone();
        bad[8] = 99;
        assert!(matches!(
            verify_stream(Cursor::new(bad)),
            Err(TraceError::UnsupportedVersion(99))
        ));

        // A corrupt core count must be rejected before any per-core
        // allocation, not discovered via OOM (cores sits at offset 12:
        // magic 8 + version 4).
        let mut bad = bytes.clone();
        bad[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            verify_stream(Cursor::new(bad.clone())),
            Err(TraceError::Corrupt(_))
        ));
        assert!(matches!(
            TraceReader::new(Cursor::new(bad)),
            Err(TraceError::Corrupt(_))
        ));

        // A flipped record byte breaks the checksum (or the stream).
        let mut bad = bytes.clone();
        let mid = bytes.len() / 2;
        bad[mid] ^= 0x01;
        assert!(matches!(
            verify_stream(Cursor::new(bad)),
            Err(TraceError::Corrupt(_))
        ));

        // Truncation anywhere in the records or footer.
        for cut in [bytes.len() - 1, bytes.len() - 9, bytes.len() / 2, 40] {
            let bad = bytes[..cut].to_vec();
            assert!(
                matches!(verify_stream(Cursor::new(bad)), Err(TraceError::Corrupt(_))),
                "truncation at {cut} must be detected"
            );
        }

        // Trailing garbage after the footer.
        let mut bad = bytes.clone();
        bad.push(0x00);
        assert!(matches!(
            verify_stream(Cursor::new(bad)),
            Err(TraceError::Corrupt(_))
        ));

        // An unfinished writer (no sentinel/footer) is truncated too.
        let mut w = TraceWriter::new(Vec::new(), &header).expect("writer");
        w.write(0, MemRef::read(LineAddr::new(5))).expect("write");
        drop(w);
    }

    #[test]
    fn header_only_files_verify_as_empty_traces() {
        let bytes = encode(&sample_header(2), &sample_traces(2, 0));
        let s = verify_stream(Cursor::new(bytes.clone())).expect("valid empty");
        assert_eq!(s.records, 0);
        let mut r = TraceReader::new(Cursor::new(bytes)).expect("reader");
        assert_eq!(r.next(0), None);
    }

    #[test]
    fn file_round_trip_through_the_path_helpers() {
        let dir = std::env::temp_dir().join(format!("silo-trace-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("roundtrip.silotrace");
        let header = sample_header(2);
        let traces = sample_traces(2, 15);
        crate::write_traces(&path, &header, &traces).expect("write");
        assert_eq!(read_header(&path).expect("header"), header);
        let s = verify(&path).expect("verify");
        assert_eq!(s.records, 30);
        let (h, got) = read_traces(&path).expect("read back");
        assert_eq!(h, header);
        assert_eq!(got, traces);
        let _ = std::fs::remove_file(&path);
    }
}
