//! Low-level wire encoding: LEB128 varints, zigzag mapping for signed
//! deltas, and the dependency-free FNV-1a checksum.

use crate::TraceError;
use std::io::{BufRead, Read};

/// 64-bit FNV-1a running hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Fnv(u64);

impl Fnv {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Self {
        Fnv(Self::OFFSET_BASIS)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub(crate) fn digest(self) -> u64 {
        self.0
    }
}

/// Appends `v` to `out` as an LEB128 varint (1–10 bytes).
pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Maps a signed delta onto an unsigned varint payload so small
/// negative strides stay short: 0, -1, 1, -2, 2, ... → 0, 1, 2, 3, 4.
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A reader wrapper that hashes every byte it yields, so validation
/// passes compute the checksum while streaming.
pub(crate) struct HashingReader<R> {
    inner: R,
    hash: Fnv,
}

impl<R> HashingReader<R> {
    pub(crate) fn new(inner: R) -> Self {
        HashingReader {
            inner,
            hash: Fnv::new(),
        }
    }

    pub(crate) fn digest(&self) -> u64 {
        self.hash.digest()
    }

    /// The wrapped reader, for reads that must stay out of the hash
    /// (the checksum field itself).
    pub(crate) fn inner_mut(&mut self) -> &mut R {
        &mut self.inner
    }
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hash.update(&buf[..n]);
        Ok(n)
    }
}

/// Reads exactly `N` bytes.
pub(crate) fn read_array<R: Read, const N: usize>(r: &mut R) -> Result<[u8; N], TraceError> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Reads a little-endian u32.
pub(crate) fn read_u32<R: Read>(r: &mut R) -> Result<u32, TraceError> {
    Ok(u32::from_le_bytes(read_array(r)?))
}

/// Reads a little-endian u64.
pub(crate) fn read_u64<R: Read>(r: &mut R) -> Result<u64, TraceError> {
    Ok(u64::from_le_bytes(read_array(r)?))
}

/// Reads one LEB128 varint.
pub(crate) fn read_varint<R: Read>(r: &mut R) -> Result<u64, TraceError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = read_array::<_, 1>(r)?[0];
        let payload = (byte & 0x7f) as u64;
        if shift >= 64 || (shift == 63 && payload > 1) {
            return Err(TraceError::Corrupt("varint overflows 64 bits".into()));
        }
        v |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// True when the stream has no more bytes (used to reject trailing
/// garbage after the footer).
pub(crate) fn at_eof<R: BufRead>(r: &mut R) -> Result<bool, TraceError> {
    Ok(r.fill_buf()?.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn varints_round_trip_across_the_range() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert!(buf.len() <= 10);
            let mut cur = Cursor::new(buf);
            assert_eq!(read_varint(&mut cur).expect("decodes"), v);
        }
    }

    #[test]
    fn overlong_varints_are_rejected() {
        // Eleven continuation bytes cannot fit in 64 bits.
        let mut cur = Cursor::new(vec![0x80u8; 11]);
        assert!(matches!(read_varint(&mut cur), Err(TraceError::Corrupt(_))));
        // Ten bytes whose top payload exceeds the final two bits.
        let mut bytes = vec![0xffu8; 9];
        bytes.push(0x7f);
        let mut cur = Cursor::new(bytes);
        assert!(matches!(read_varint(&mut cur), Err(TraceError::Corrupt(_))));
    }

    #[test]
    fn zigzag_round_trips_signed_deltas() {
        for v in [0i64, 1, -1, 2, -2, 1000, -1000, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn fnv_matches_the_reference_basis_and_differs_on_content() {
        assert_eq!(Fnv::new().digest(), 0xcbf2_9ce4_8422_2325);
        let mut a = Fnv::new();
        a.update(b"silo");
        let mut b = Fnv::new();
        b.update(b"sil0");
        assert_ne!(a.digest(), b.digest());
        // Incremental updates equal one-shot hashing.
        let mut c = Fnv::new();
        c.update(b"si");
        c.update(b"lo");
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn hashing_reader_hashes_exactly_the_bytes_read() {
        let data = b"0123456789".to_vec();
        let mut hr = HashingReader::new(Cursor::new(data.clone()));
        let mut out = Vec::new();
        hr.read_to_end(&mut out).expect("reads");
        let mut direct = Fnv::new();
        direct.update(&data);
        assert_eq!(hr.digest(), direct.digest());
    }
}
