//! 2D mesh on-chip network model.
//!
//! The paper's 16-core chip uses a 4x4 2D mesh with 3 cycles per hop
//! (Table II). Requests to a shared NUCA LLC bank, to a directory home
//! node, or to a remote vault traverse the mesh with dimension-ordered
//! (XY) routing. The latency model is hop-count based — the paper itself
//! quotes average round-trip figures (23 cycles for a baseline LLC hit,
//! 41 for shared vaults) that we reproduce from first principles — and a
//! per-link traffic accounting layer exposes utilization statistics for
//! the interconnect-pressure discussion of Sec. V-D.

#![forbid(unsafe_code)]

use silo_types::{Cycles, LineAddr};

/// A node coordinate in the mesh.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the id as a usize.
    pub const fn as_usize(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A `width x height` 2D mesh with XY routing.
#[derive(Clone, Debug)]
pub struct Mesh {
    width: usize,
    height: usize,
    hop_cycles: Cycles,
    /// Traffic counter per directed link. Links are indexed as
    /// `node * 4 + direction` (0=E, 1=W, 2=N, 3=S).
    link_flits: Vec<u64>,
    messages: u64,
    total_hops: u64,
}

/// Direction encoding for link indexing.
const EAST: usize = 0;
const WEST: usize = 1;
const NORTH: usize = 2;
const SOUTH: usize = 3;

impl Mesh {
    /// Creates a mesh of the given dimensions with a per-hop latency.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize, hop_cycles: Cycles) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Mesh {
            width,
            height,
            hop_cycles,
            link_flits: vec![0; width * height * 4],
            messages: 0,
            total_hops: 0,
        }
    }

    /// The 4x4, 3-cycle-per-hop mesh of Table II.
    pub fn paper_16core() -> Self {
        Mesh::new(4, 4, Cycles(3))
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Mesh width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Per-hop latency.
    pub fn hop_cycles(&self) -> Cycles {
        self.hop_cycles
    }

    /// (x, y) coordinate of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        assert!(node.0 < self.nodes(), "node {node} out of range");
        (node.0 % self.width, node.0 / self.width)
    }

    /// Manhattan hop count between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u64 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }

    /// One-way latency between two nodes (zero when `a == b`).
    pub fn latency(&self, a: NodeId, b: NodeId) -> Cycles {
        self.hop_cycles * self.hops(a, b)
    }

    /// Round-trip latency between two nodes.
    pub fn round_trip(&self, a: NodeId, b: NodeId) -> Cycles {
        self.latency(a, b) * 2
    }

    /// Average one-way hop count from every node to every node (uniform
    /// traffic), the quantity behind the paper's "average round trip"
    /// figures.
    pub fn mean_hops(&self) -> f64 {
        let n = self.nodes();
        let mut total = 0u64;
        for a in 0..n {
            for b in 0..n {
                total += self.hops(NodeId(a), NodeId(b));
            }
        }
        total as f64 / (n * n) as f64
    }

    /// Home node for a line under address interleaving (scrambled so
    /// contiguous regions spread across nodes).
    pub fn home_of(&self, line: LineAddr) -> NodeId {
        NodeId((line.scramble() % self.nodes() as u64) as usize)
    }

    /// Sends a message from `a` to `b`, recording traffic on every XY
    /// link traversed, and returns the one-way latency.
    pub fn send(&mut self, a: NodeId, b: NodeId) -> Cycles {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        // X first.
        let mut x = ax;
        while x != bx {
            let node = ay * self.width + x;
            if bx > x {
                self.link_flits[node * 4 + EAST] += 1;
                x += 1;
            } else {
                self.link_flits[node * 4 + WEST] += 1;
                x -= 1;
            }
        }
        // Then Y.
        let mut y = ay;
        while y != by {
            let node = y * self.width + bx;
            if by > y {
                self.link_flits[node * 4 + SOUTH] += 1;
                y += 1;
            } else {
                self.link_flits[node * 4 + NORTH] += 1;
                y -= 1;
            }
        }
        self.messages += 1;
        let hops = self.hops(a, b);
        self.total_hops += hops;
        self.hop_cycles * hops
    }

    /// Messages sent through [`send`](Self::send).
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total hops traversed by all messages.
    pub fn total_hops(&self) -> u64 {
        self.total_hops
    }

    /// Cumulative flit counters of every directed link, indexed as
    /// `node * 4 + direction` (0=E, 1=W, 2=N, 3=S). Exposed so the
    /// telemetry subsystem can difference consecutive snapshots into
    /// per-epoch link utilization.
    pub fn link_flits(&self) -> &[u64] {
        &self.link_flits
    }

    /// Flits carried by the busiest link.
    pub fn max_link_flits(&self) -> u64 {
        self.link_flits.iter().copied().max().unwrap_or(0)
    }

    /// Mean flits per link over links that carried any traffic.
    pub fn mean_link_flits(&self) -> f64 {
        let used: Vec<u64> = self.link_flits.iter().copied().filter(|&f| f > 0).collect();
        if used.is_empty() {
            0.0
        } else {
            used.iter().sum::<u64>() as f64 / used.len() as f64
        }
    }

    /// Clears traffic statistics.
    pub fn reset_stats(&mut self) {
        self.link_flits.iter_mut().for_each(|f| *f = 0);
        self.messages = 0;
        self.total_hops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_and_hops() {
        let m = Mesh::paper_16core();
        assert_eq!(m.coords(NodeId(0)), (0, 0));
        assert_eq!(m.coords(NodeId(5)), (1, 1));
        assert_eq!(m.coords(NodeId(15)), (3, 3));
        assert_eq!(m.hops(NodeId(0), NodeId(15)), 6);
        assert_eq!(m.hops(NodeId(5), NodeId(5)), 0);
        assert_eq!(m.hops(NodeId(0), NodeId(3)), 3);
    }

    #[test]
    fn latency_is_hops_times_hop_cycles() {
        let m = Mesh::paper_16core();
        assert_eq!(m.latency(NodeId(0), NodeId(15)), Cycles(18));
        assert_eq!(m.round_trip(NodeId(0), NodeId(15)), Cycles(36));
        assert_eq!(m.latency(NodeId(7), NodeId(7)), Cycles::ZERO);
    }

    #[test]
    fn mean_hops_matches_4x4_analytic() {
        // For a 4x4 mesh under uniform traffic the mean one-way distance
        // is 2 * mean 1-D distance = 2 * 1.25 = 2.5.
        let m = Mesh::paper_16core();
        assert!((m.mean_hops() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn baseline_llc_round_trip_close_to_paper() {
        // Paper: 23-cycle average round trip for a shared LLC hit
        // including a 5-cycle bank access. Our mesh: 2.5 mean hops each
        // way at 3 cycles = 15, plus 5-cycle bank = 20; the paper's 23
        // includes router/injection overheads we fold into config, so the
        // mesh itself must land in [14, 16].
        let m = Mesh::paper_16core();
        let rt = 2.0 * m.mean_hops() * m.hop_cycles().as_u64() as f64;
        assert!((14.0..=16.0).contains(&rt), "round trip {rt}");
    }

    #[test]
    fn home_spreads_lines() {
        let m = Mesh::paper_16core();
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096 {
            seen.insert(m.home_of(LineAddr::new(i)).0);
        }
        assert_eq!(seen.len(), 16, "all nodes should home some line");
    }

    #[test]
    fn send_records_traffic_on_xy_path() {
        let mut m = Mesh::paper_16core();
        let lat = m.send(NodeId(0), NodeId(15));
        assert_eq!(lat, Cycles(18));
        assert_eq!(m.messages(), 1);
        assert_eq!(m.total_hops(), 6);
        assert_eq!(m.max_link_flits(), 1);
        // Six links used.
        assert!((m.mean_link_flits() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn send_to_self_is_free() {
        let mut m = Mesh::paper_16core();
        assert_eq!(m.send(NodeId(3), NodeId(3)), Cycles::ZERO);
        assert_eq!(m.total_hops(), 0);
    }

    #[test]
    fn reset_clears_traffic() {
        let mut m = Mesh::paper_16core();
        m.send(NodeId(0), NodeId(15));
        m.reset_stats();
        assert_eq!(m.messages(), 0);
        assert_eq!(m.max_link_flits(), 0);
        assert_eq!(m.mean_link_flits(), 0.0);
    }

    #[test]
    fn rectangular_mesh_works() {
        let m = Mesh::new(2, 8, Cycles(1));
        assert_eq!(m.nodes(), 16);
        assert_eq!(m.coords(NodeId(9)), (1, 4));
        assert_eq!(m.hops(NodeId(0), NodeId(15)), 1 + 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        Mesh::paper_16core().coords(NodeId(16));
    }

    #[test]
    fn westward_and_northward_routes_work() {
        let mut m = Mesh::paper_16core();
        // From 15 (3,3) to 0 (0,0): west then north.
        let lat = m.send(NodeId(15), NodeId(0));
        assert_eq!(lat, Cycles(18));
        assert_eq!(m.total_hops(), 6);
    }
}
