//! Epoch-sampled time series.
//!
//! A [`Timeline`] slices a run into epochs of `epoch_refs` processed
//! references. The run loop feeds it one [`Timeline::record_ref`] per
//! reference; when an epoch fills (and once more at the end of the run
//! for the final partial epoch) the loop calls [`Timeline::flush`] with
//! an [`EpochEnv`] snapshot of the cumulative environment counters
//! (makespan, mesh traffic, vault occupancy), and the timeline stores
//! the per-epoch deltas as an [`EpochRow`]. Epoch reference counts
//! always sum to the total references processed.

use silo_types::stats::{ratio, Histogram};

/// Which level of the hierarchy served a reference — the telemetry-side
/// mirror of the coherence crate's `ServedBy`, kept here so this crate
/// depends only on `silo-types`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceLevel {
    /// L1 hit.
    L1,
    /// Private L2 hit.
    L2,
    /// Local-vault hit (SILO).
    LocalVault,
    /// Remote-vault forward (SILO).
    RemoteVault,
    /// Shared-LLC hit including directory forwards (baseline).
    SharedLlc,
    /// Main-memory access.
    Memory,
}

impl ServiceLevel {
    /// Number of levels.
    pub const COUNT: usize = 6;

    /// Every level, in report order.
    pub const ALL: [ServiceLevel; ServiceLevel::COUNT] = [
        ServiceLevel::L1,
        ServiceLevel::L2,
        ServiceLevel::LocalVault,
        ServiceLevel::RemoteVault,
        ServiceLevel::SharedLlc,
        ServiceLevel::Memory,
    ];

    /// Dense index for per-level arrays.
    pub const fn index(self) -> usize {
        match self {
            ServiceLevel::L1 => 0,
            ServiceLevel::L2 => 1,
            ServiceLevel::LocalVault => 2,
            ServiceLevel::RemoteVault => 3,
            ServiceLevel::SharedLlc => 4,
            ServiceLevel::Memory => 5,
        }
    }

    /// Snake-case column name used by the CSV/JSON exports.
    pub const fn name(self) -> &'static str {
        match self {
            ServiceLevel::L1 => "l1",
            ServiceLevel::L2 => "l2",
            ServiceLevel::LocalVault => "local_vault",
            ServiceLevel::RemoteVault => "remote_vault",
            ServiceLevel::SharedLlc => "shared_llc",
            ServiceLevel::Memory => "memory",
        }
    }
}

/// Snapshot of the *cumulative* environment counters at an epoch
/// boundary; the timeline differences consecutive snapshots itself.
#[derive(Clone, Copy, Debug)]
pub struct EpochEnv<'a> {
    /// Current makespan (the slowest core's finish cycle so far).
    pub cycles: u64,
    /// Mesh messages sent since the start of the run.
    pub mesh_messages: u64,
    /// Cumulative per-link flit counters.
    pub link_flits: &'a [u64],
    /// Cumulative busy cycles across all vault banks.
    pub vault_busy_cycles: u64,
    /// Total vault banks in the system (zero for vault-less systems).
    pub vault_banks: u64,
    /// The run's warmup window, for flagging epochs that overlap it.
    pub warmup_refs: u64,
}

/// One epoch's measurements (all deltas over the epoch, not cumulative).
#[derive(Clone, Debug, PartialEq)]
pub struct EpochRow {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// True when any reference of this epoch fell inside the warmup
    /// window.
    pub warmup: bool,
    /// References processed in this epoch (the last epoch of a run may
    /// be partial).
    pub refs: u64,
    /// Instructions retired in this epoch.
    pub instructions: u64,
    /// Makespan advance over this epoch.
    pub cycles: u64,
    /// Per-level service counts, indexed by [`ServiceLevel::index`].
    pub served: [u64; ServiceLevel::COUNT],
    /// References that left the SRAM levels this epoch.
    pub llc_accesses: u64,
    /// Median LLC critical-path latency (interpolated).
    pub llc_p50: f64,
    /// 95th-percentile LLC latency.
    pub llc_p95: f64,
    /// 99th-percentile LLC latency.
    pub llc_p99: f64,
    /// Mesh messages sent this epoch.
    pub mesh_messages: u64,
    /// Flits carried by the busiest link this epoch.
    pub mesh_max_link_flits: u64,
    /// Mean flits over links that carried traffic this epoch.
    pub mesh_mean_link_flits: f64,
    /// Busy cycles across all vault banks this epoch.
    pub vault_busy_cycles: u64,
    /// Vault-bank occupancy: busy cycles over available bank-cycles.
    pub vault_occupancy: f64,
}

impl EpochRow {
    /// Aggregate IPC over this epoch (0.0 when the makespan did not
    /// advance).
    pub fn ipc(&self) -> f64 {
        ratio(self.instructions, self.cycles)
    }

    /// Fraction of this epoch's references served at `level`.
    pub fn fraction(&self, level: ServiceLevel) -> f64 {
        ratio(self.served[level.index()], self.refs)
    }
}

/// The in-flight accumulator of the current epoch.
#[derive(Clone, Debug, PartialEq)]
struct Acc {
    refs: u64,
    instructions: u64,
    served: [u64; ServiceLevel::COUNT],
    llc: Histogram,
}

impl Acc {
    fn new() -> Self {
        Acc {
            refs: 0,
            instructions: 0,
            served: [0; ServiceLevel::COUNT],
            llc: Histogram::log2(),
        }
    }
}

/// The epoch time series of one run. Disabled (`epoch_refs == 0`)
/// timelines ignore every call and stay empty.
#[derive(Clone, Debug, PartialEq)]
pub struct Timeline {
    epoch_refs: u64,
    rows: Vec<EpochRow>,
    /// References already flushed into `rows`.
    seen_refs: u64,
    acc: Acc,
    base_cycles: u64,
    base_messages: u64,
    base_flits: Vec<u64>,
    base_vault_busy: u64,
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline::new(0)
    }
}

impl Timeline {
    /// Creates a timeline sampling every `epoch_refs` references; zero
    /// disables sampling entirely.
    pub fn new(epoch_refs: u64) -> Self {
        Timeline {
            epoch_refs,
            rows: Vec::new(),
            seen_refs: 0,
            acc: Acc::new(),
            base_cycles: 0,
            base_messages: 0,
            base_flits: Vec::new(),
            base_vault_busy: 0,
        }
    }

    /// True when epoch sampling is active.
    pub fn enabled(&self) -> bool {
        self.epoch_refs > 0
    }

    /// The configured epoch length in references (zero when disabled).
    pub fn epoch_refs(&self) -> u64 {
        self.epoch_refs
    }

    /// Pre-sizes the row storage for a run expected to process
    /// `expected_refs` references, so epoch flushes never reallocate
    /// mid-run. A no-op when sampling is disabled.
    pub fn reserve_for(&mut self, expected_refs: u64) {
        if self.enabled() {
            self.rows
                .reserve(expected_refs.div_ceil(self.epoch_refs) as usize);
        }
    }

    /// Records one processed reference.
    pub fn record_ref(&mut self, level: ServiceLevel, instructions: u64, llc_latency: Option<u64>) {
        if !self.enabled() {
            return;
        }
        self.acc.refs += 1;
        self.acc.instructions += instructions;
        self.acc.served[level.index()] += 1;
        if let Some(lat) = llc_latency {
            self.acc.llc.record(lat);
        }
    }

    /// True when the current epoch has accumulated `epoch_refs`
    /// references and should be flushed.
    pub fn epoch_full(&self) -> bool {
        self.enabled() && self.acc.refs >= self.epoch_refs
    }

    /// Closes the current epoch against the environment snapshot,
    /// appending an [`EpochRow`] of deltas and advancing the baselines.
    /// A no-op when disabled or when the epoch is empty.
    pub fn flush(&mut self, env: &EpochEnv<'_>) {
        if !self.enabled() || self.acc.refs == 0 {
            return;
        }
        let (mut delta_max, mut delta_sum, mut used_links) = (0u64, 0u64, 0u64);
        for (i, &f) in env.link_flits.iter().enumerate() {
            let d = f - self.base_flits.get(i).copied().unwrap_or(0);
            delta_max = delta_max.max(d);
            if d > 0 {
                delta_sum += d;
                used_links += 1;
            }
        }
        let mean = ratio(delta_sum, used_links);
        let cycles = env.cycles - self.base_cycles;
        let vault_busy = env.vault_busy_cycles - self.base_vault_busy;
        self.rows.push(EpochRow {
            epoch: self.rows.len() as u64,
            warmup: self.seen_refs < env.warmup_refs,
            refs: self.acc.refs,
            instructions: self.acc.instructions,
            cycles,
            served: self.acc.served,
            llc_accesses: self.acc.llc.count(),
            llc_p50: self.acc.llc.percentile(0.50),
            llc_p95: self.acc.llc.percentile(0.95),
            llc_p99: self.acc.llc.percentile(0.99),
            mesh_messages: env.mesh_messages - self.base_messages,
            mesh_max_link_flits: delta_max,
            mesh_mean_link_flits: mean,
            vault_busy_cycles: vault_busy,
            vault_occupancy: ratio(vault_busy, env.vault_banks.saturating_mul(cycles)),
        });
        self.seen_refs += self.acc.refs;
        self.acc = Acc::new();
        self.base_cycles = env.cycles;
        self.base_messages = env.mesh_messages;
        // Reuse the baseline buffer across epochs instead of allocating
        // a fresh vector per flush.
        self.base_flits.clear();
        self.base_flits.extend_from_slice(env.link_flits);
        self.base_vault_busy = env.vault_busy_cycles;
    }

    /// Flushes the final partial epoch, if any. Call once when the run
    /// ends so epoch reference counts sum to the total processed.
    pub fn finish(&mut self, env: &EpochEnv<'_>) {
        self.flush(env);
    }

    /// The flushed epoch rows.
    pub fn rows(&self) -> &[EpochRow] {
        &self.rows
    }

    /// Total references covered by the flushed rows.
    pub fn total_refs(&self) -> u64 {
        self.seen_refs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(cycles: u64, warmup_refs: u64) -> EpochEnv<'static> {
        EpochEnv {
            cycles,
            mesh_messages: 0,
            link_flits: &[],
            vault_busy_cycles: 0,
            vault_banks: 0,
            warmup_refs,
        }
    }

    #[test]
    fn disabled_timeline_ignores_everything() {
        let mut t = Timeline::default();
        assert!(!t.enabled());
        t.record_ref(ServiceLevel::L1, 4, None);
        assert!(!t.epoch_full());
        t.finish(&env(100, 0));
        assert!(t.rows().is_empty());
        assert_eq!(t.total_refs(), 0);
    }

    #[test]
    fn epochs_fill_flush_and_sum_to_total() {
        let mut t = Timeline::new(10);
        for i in 0..27u64 {
            t.record_ref(ServiceLevel::Memory, 2, Some(100 + i));
            if t.epoch_full() {
                t.flush(&env((t.total_refs() + 10) * 50, 0));
            }
        }
        t.finish(&env(27 * 50, 0));
        assert_eq!(t.rows().len(), 3, "two full epochs plus a partial one");
        assert_eq!(t.rows()[0].refs, 10);
        assert_eq!(t.rows()[2].refs, 7, "last partial epoch is flushed");
        let total: u64 = t.rows().iter().map(|r| r.refs).sum();
        assert_eq!(total, 27, "epoch ref counts sum to total refs");
        assert_eq!(t.total_refs(), 27);
        for (i, r) in t.rows().iter().enumerate() {
            assert_eq!(r.epoch, i as u64);
            assert_eq!(r.llc_accesses, r.refs);
            assert!(r.llc_p50 <= r.llc_p95 && r.llc_p95 <= r.llc_p99);
        }
    }

    #[test]
    fn rows_report_deltas_not_cumulative_values() {
        let mut t = Timeline::new(2);
        let flits_a = [5u64, 0];
        let flits_b = [9u64, 4];
        for _ in 0..2 {
            t.record_ref(ServiceLevel::L1, 3, None);
        }
        t.flush(&EpochEnv {
            cycles: 100,
            mesh_messages: 7,
            link_flits: &flits_a,
            vault_busy_cycles: 40,
            vault_banks: 2,
            warmup_refs: 0,
        });
        for _ in 0..2 {
            t.record_ref(ServiceLevel::L2, 3, None);
        }
        t.flush(&EpochEnv {
            cycles: 150,
            mesh_messages: 10,
            link_flits: &flits_b,
            vault_busy_cycles: 60,
            vault_banks: 2,
            warmup_refs: 0,
        });
        let r = &t.rows()[1];
        assert_eq!(r.cycles, 50);
        assert_eq!(r.mesh_messages, 3);
        assert_eq!(r.mesh_max_link_flits, 4);
        assert!((r.mesh_mean_link_flits - 4.0).abs() < 1e-12);
        assert_eq!(r.vault_busy_cycles, 20);
        assert!((r.vault_occupancy - 20.0 / (2.0 * 50.0)).abs() < 1e-12);
        assert!((r.ipc() - 6.0 / 50.0).abs() < 1e-12);
        assert!((r.fraction(ServiceLevel::L2) - 1.0).abs() < 1e-12);
        assert_eq!(r.fraction(ServiceLevel::L1), 0.0);
    }

    #[test]
    fn warmup_overlapping_epochs_are_flagged() {
        let mut t = Timeline::new(5);
        for i in 0..15u64 {
            t.record_ref(ServiceLevel::L1, 1, None);
            if t.epoch_full() {
                t.flush(&env(i + 1, 7));
            }
        }
        let flags: Vec<bool> = t.rows().iter().map(|r| r.warmup).collect();
        // Epoch 0 covers refs 1..=5, epoch 1 covers 6..=10 (starts at 5
        // < 7, overlaps the warmup window), epoch 2 is pure measurement.
        assert_eq!(flags, [true, true, false]);
    }

    #[test]
    fn service_levels_are_dense_and_named() {
        for (i, l) in ServiceLevel::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
            assert!(!l.name().is_empty());
        }
    }
}
