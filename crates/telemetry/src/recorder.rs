//! Named counters and histograms.
//!
//! A [`Recorder`] is the flat, export-ready view of a run's event
//! counters: coherence events (invalidations, O-state forwards,
//! directory evictions), interconnect totals, and DRAM occupancy, plus
//! named log-bucketed latency histograms. Entries keep insertion order
//! so CSV/JSON exports are deterministic.

use silo_types::stats::Histogram;

/// An ordered bag of named `u64` counters and latency [`Histogram`]s.
///
/// # Examples
///
/// ```
/// use silo_telemetry::Recorder;
///
/// let mut r = Recorder::default();
/// r.add("invalidations", 3);
/// r.add("invalidations", 2);
/// r.histogram("llc_latency").record(120);
/// assert_eq!(r.get("invalidations"), 5);
/// assert_eq!(r.get("missing"), 0);
/// assert_eq!(r.histograms().len(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Recorder {
    counters: Vec<(String, u64)>,
    histograms: Vec<(String, Histogram)>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Adds `n` to the named counter, creating it at zero on first use.
    pub fn add(&mut self, name: &str, n: u64) {
        match self.counters.iter_mut().find(|(k, _)| k == name) {
            Some((_, v)) => *v += n,
            None => self.counters.push((name.to_string(), n)),
        }
    }

    /// Sets the named counter to `n`, creating it on first use.
    pub fn set(&mut self, name: &str, n: u64) {
        match self.counters.iter_mut().find(|(k, _)| k == name) {
            Some((_, v)) => *v = n,
            None => self.counters.push((name.to_string(), n)),
        }
    }

    /// Current value of the named counter (zero when absent).
    pub fn get(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// All counters in insertion order.
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// The named histogram, created log-bucketed on first use.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        if let Some(i) = self.histograms.iter().position(|(k, _)| k == name) {
            return &mut self.histograms[i].1;
        }
        self.histograms.push((name.to_string(), Histogram::log2()));
        &mut self.histograms.last_mut().expect("just pushed").1
    }

    /// The named histogram, when it exists.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }

    /// All histograms in insertion order.
    pub fn histograms(&self) -> &[(String, Histogram)] {
        &self.histograms
    }

    /// Resets every counter to zero and clears every histogram, keeping
    /// the names (the warmup boundary of a measurement window).
    pub fn reset(&mut self) {
        self.counters.iter_mut().for_each(|(_, v)| *v = 0);
        self.histograms.iter_mut().for_each(|(_, h)| h.reset());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_keep_order() {
        let mut r = Recorder::new();
        r.add("b", 1);
        r.add("a", 2);
        r.add("b", 3);
        r.set("c", 9);
        r.set("a", 1);
        let names: Vec<&str> = r.counters().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["b", "a", "c"]);
        assert_eq!(r.get("b"), 4);
        assert_eq!(r.get("a"), 1);
        assert_eq!(r.get("c"), 9);
    }

    #[test]
    fn histograms_are_log_bucketed_on_first_use() {
        let mut r = Recorder::new();
        for v in [1u64, 100, 10_000] {
            r.histogram("lat").record(v);
        }
        let h = r.get_histogram("lat").expect("created");
        assert_eq!(h.count(), 3);
        assert!(r.get_histogram("other").is_none());
    }

    #[test]
    fn reset_zeroes_values_but_keeps_names() {
        let mut r = Recorder::new();
        r.add("x", 5);
        r.histogram("lat").record(7);
        r.reset();
        assert_eq!(r.get("x"), 0);
        assert_eq!(r.counters().len(), 1);
        assert_eq!(r.get_histogram("lat").expect("kept").count(), 0);
    }
}
