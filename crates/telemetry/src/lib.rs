//! `silo-telemetry`: the measurement backbone of the SILO workspace.
//!
//! The timing simulator historically emitted only end-of-run aggregates;
//! this crate adds the three measurement primitives every evaluation
//! figure in the paper is built on:
//!
//! * [`Recorder`] — a bag of named counters and log-bucketed
//!   [`Histogram`](silo_types::stats::Histogram)s, filled by the run
//!   loop from the protocol engines, the mesh, and the DRAM structures,
//!   and exported verbatim into the `silo-bench/v1` `telemetry` object.
//! * [`Timeline`] — an epoch-sampling time series: every `epoch_refs`
//!   processed references it snapshots per-epoch IPC, served-by-level
//!   counts, LLC latency percentiles, mesh link utilization, and vault
//!   occupancy into an [`EpochRow`], rendered to CSV by
//!   `silo-sim`'s `timeline` module.
//! * [`MeterConfig`] — the warmup/measurement-window control: after
//!   `warmup_refs` references the run loop resets its measurement
//!   counters (while preserving all cache, directory, and bank-timing
//!   state), so steady-state numbers are not polluted by cold misses.
//!
//! The crate depends only on `silo-types`, so every layer of the
//! workspace (coherence, noc, dram, sim) can feed it without cycles.

#![forbid(unsafe_code)]

pub mod recorder;
pub mod timeline;

pub use recorder::Recorder;
pub use timeline::{EpochEnv, EpochRow, ServiceLevel, Timeline};

/// Measurement-window configuration shared by the run loop, the sweep
/// harness, and the CLI (`--warmup` / `--epoch`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MeterConfig {
    /// References (summed across cores, in interleaved processing order)
    /// to treat as cache warmup: when the counter is reached, measurement
    /// aggregates reset while all simulated state is preserved. Zero
    /// disables the warmup window.
    pub warmup_refs: u64,
    /// References per timeline epoch; `None` disables epoch sampling.
    pub epoch_refs: Option<u64>,
}

impl MeterConfig {
    /// True when neither warmup nor epoch sampling is enabled — the
    /// legacy end-of-run-aggregates behaviour.
    pub fn is_disabled(&self) -> bool {
        self.warmup_refs == 0 && self.epoch_refs.is_none()
    }
}

/// Everything one run measured beyond its headline aggregates: the named
/// counters/histograms and the epoch time series, stamped with the meter
/// configuration that produced them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Telemetry {
    /// The meter configuration the run used.
    pub meter: MeterConfig,
    /// Named counters and histograms (post-warmup values).
    pub recorder: Recorder,
    /// The epoch time series (covers the whole run, warmup included;
    /// rows that overlap the warmup window are flagged).
    pub timeline: Timeline,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_meter_is_disabled() {
        assert!(MeterConfig::default().is_disabled());
        assert!(!MeterConfig {
            warmup_refs: 1,
            epoch_refs: None
        }
        .is_disabled());
        assert!(!MeterConfig {
            warmup_refs: 0,
            epoch_refs: Some(10)
        }
        .is_disabled());
    }

    #[test]
    fn telemetry_default_is_empty() {
        let t = Telemetry::default();
        assert!(t.meter.is_disabled());
        assert!(t.recorder.counters().is_empty());
        assert!(t.timeline.rows().is_empty());
    }
}
