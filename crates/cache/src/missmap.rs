//! MissMap-style vault miss predictor (Sec. V-C).
//!
//! The TAD organization of SILO's DRAM cache discovers misses only after
//! the DRAM access completes. A MissMap (Loh & Hill, MICRO'11) tracks the
//! presence of lines at page granularity in on-chip SRAM so that known
//! misses skip the DRAM access entirely.
//!
//! The unbounded variant is exact and therefore models the paper's
//! *ideal* predictor (0 latency, 100% accuracy, Sec. VII-B). A bounded
//! variant drops the least-recently-touched page's bitmap when full,
//! after which lines of that page conservatively predict "present"
//! (a wrong "present" costs a DRAM access, never correctness).

use silo_types::hash::{fx_map_with_capacity, FxHashMap};
use silo_types::{LineAddr, LINE_SIZE};

/// Page-granular line-presence map.
#[derive(Clone, Debug)]
pub struct MissMap {
    page_bytes: usize,
    lines_per_page: u64,
    capacity_pages: Option<usize>,
    /// page -> (presence bitmap chunks, recency stamp).
    pages: FxHashMap<u64, (Vec<u64>, u64)>,
    tick: u64,
    predicted_misses: u64,
    predicted_present: u64,
    unknown: u64,
}

impl MissMap {
    /// Creates an exact (unbounded) miss map over `page_bytes` pages.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power-of-two multiple of the line
    /// size.
    pub fn new_ideal(page_bytes: usize) -> Self {
        Self::with_capacity(page_bytes, None)
    }

    /// Creates a bounded miss map tracking at most `capacity_pages` pages.
    pub fn new_bounded(page_bytes: usize, capacity_pages: usize) -> Self {
        Self::with_capacity(page_bytes, Some(capacity_pages))
    }

    fn with_capacity(page_bytes: usize, capacity_pages: Option<usize>) -> Self {
        assert!(
            page_bytes >= LINE_SIZE && page_bytes.is_power_of_two(),
            "page size must be a power of two of at least one line"
        );
        if let Some(c) = capacity_pages {
            assert!(c > 0, "bounded miss map needs capacity");
        }
        MissMap {
            page_bytes,
            lines_per_page: (page_bytes / LINE_SIZE) as u64,
            capacity_pages,
            // Bounded maps hold at most `capacity_pages` entries; size
            // them once so eviction churn never rehashes.
            pages: fx_map_with_capacity(capacity_pages.unwrap_or(0)),
            tick: 0,
            predicted_misses: 0,
            predicted_present: 0,
            unknown: 0,
        }
    }

    fn locate(&self, line: LineAddr) -> (u64, usize, u64) {
        let page = line.page(self.page_bytes);
        let offset = line.as_u64() % self.lines_per_page;
        ((page), (offset / 64) as usize, 1u64 << (offset % 64))
    }

    /// Records that `line` is now resident in the vault.
    pub fn mark_present(&mut self, line: LineAddr) {
        self.tick += 1;
        let tick = self.tick;
        let (page, chunk, bit) = self.locate(line);
        let chunks = (self.lines_per_page as usize).div_ceil(64);
        if !self.pages.contains_key(&page) {
            self.maybe_evict();
            self.pages.insert(page, (vec![0u64; chunks], tick));
        }
        let entry = self.pages.get_mut(&page).expect("just inserted");
        entry.0[chunk] |= bit;
        entry.1 = tick;
    }

    /// Records that `line` left the vault.
    pub fn mark_absent(&mut self, line: LineAddr) {
        self.tick += 1;
        let tick = self.tick;
        let (page, chunk, bit) = self.locate(line);
        if let Some(entry) = self.pages.get_mut(&page) {
            entry.0[chunk] &= !bit;
            entry.1 = tick;
            if entry.0.iter().all(|&c| c == 0) {
                self.pages.remove(&page);
            }
        }
    }

    /// Predicts whether `line` is resident. `false` means *definitely
    /// absent* (safe to skip the DRAM access); `true` means present or
    /// unknown.
    pub fn predict_present(&mut self, line: LineAddr) -> bool {
        let (page, chunk, bit) = self.locate(line);
        match self.pages.get(&page) {
            Some(entry) => {
                if entry.0[chunk] & bit != 0 {
                    self.predicted_present += 1;
                    true
                } else {
                    self.predicted_misses += 1;
                    false
                }
            }
            None => {
                if self.capacity_pages.is_some() {
                    // Page bitmap may have been dropped: unknown, so be
                    // conservative and probe the DRAM.
                    self.unknown += 1;
                    true
                } else {
                    self.predicted_misses += 1;
                    false
                }
            }
        }
    }

    fn maybe_evict(&mut self) {
        if let Some(cap) = self.capacity_pages {
            while self.pages.len() >= cap {
                let victim = self
                    .pages
                    .iter()
                    .min_by_key(|(_, (_, stamp))| *stamp)
                    .map(|(&p, _)| p)
                    .expect("non-empty map over capacity");
                self.pages.remove(&victim);
            }
        }
    }

    /// Pages currently tracked.
    pub fn tracked_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of "definitely absent" predictions issued.
    pub fn predicted_misses(&self) -> u64 {
        self.predicted_misses
    }

    /// Number of "present" predictions issued.
    pub fn predicted_present(&self) -> u64 {
        self.predicted_present
    }

    /// Number of conservative "unknown -> probe" outcomes (bounded maps
    /// only).
    pub fn unknown_predictions(&self) -> u64 {
        self.unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_map_is_exact() {
        let mut mm = MissMap::new_ideal(4096);
        let line = LineAddr::new(100);
        assert!(!mm.predict_present(line));
        mm.mark_present(line);
        assert!(mm.predict_present(line));
        mm.mark_absent(line);
        assert!(!mm.predict_present(line));
    }

    #[test]
    fn different_lines_in_page_are_independent() {
        let mut mm = MissMap::new_ideal(4096);
        mm.mark_present(LineAddr::new(0));
        assert!(mm.predict_present(LineAddr::new(0)));
        assert!(!mm.predict_present(LineAddr::new(1)));
    }

    #[test]
    fn empty_pages_are_garbage_collected() {
        let mut mm = MissMap::new_ideal(4096);
        mm.mark_present(LineAddr::new(7));
        assert_eq!(mm.tracked_pages(), 1);
        mm.mark_absent(LineAddr::new(7));
        assert_eq!(mm.tracked_pages(), 0);
    }

    #[test]
    fn bounded_map_predicts_conservatively_after_drop() {
        let mut mm = MissMap::new_bounded(4096, 2);
        // Three pages; capacity two, so the oldest gets dropped.
        mm.mark_present(LineAddr::new(0)); // page 0
        mm.mark_present(LineAddr::new(64)); // page 1
        mm.mark_present(LineAddr::new(128)); // page 2 -> drops page 0
        assert_eq!(mm.tracked_pages(), 2);
        // Page 0 unknown: must answer "present" (probe DRAM).
        assert!(mm.predict_present(LineAddr::new(0)));
        assert_eq!(mm.unknown_predictions(), 1);
    }

    #[test]
    fn statistics_count_prediction_kinds() {
        let mut mm = MissMap::new_ideal(4096);
        mm.mark_present(LineAddr::new(3));
        mm.predict_present(LineAddr::new(3));
        mm.predict_present(LineAddr::new(9));
        assert_eq!(mm.predicted_present(), 1);
        assert_eq!(mm.predicted_misses(), 1);
    }

    #[test]
    fn wide_pages_use_multiple_chunks() {
        // 8 KiB page = 128 lines = 2 chunks.
        let mut mm = MissMap::new_ideal(8192);
        mm.mark_present(LineAddr::new(127));
        assert!(mm.predict_present(LineAddr::new(127)));
        assert!(!mm.predict_present(LineAddr::new(63)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_page_size() {
        MissMap::new_ideal(3000);
    }
}
