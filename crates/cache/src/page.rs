//! Page-based conventional DRAM cache (the `Baseline+DRAM$` system).
//!
//! The paper's conventional DRAM cache comparison point (Sec. VI-A) is an
//! 8 GB hardware-managed, page-based, direct-mapped cache in commodity
//! die-stacked DRAM, in the style of Footprint/Unison caches. Allocation
//! and lookup happen at page granularity; the paper further assumes
//! perfect miss prediction, which the simulator models by skipping the
//! DRAM access latency on a predicted miss.

use silo_types::hash::{fx_map_with_capacity, FxHashMap};
use silo_types::{ByteSize, LineAddr};

/// Upper bound on the frame buckets reserved up front; full-capacity
/// reservation would cost gigabytes for the 8 GB configuration, while a
/// bounded head start keeps warmup rehash-free (see
/// `silo_cache::set_assoc` for the same trade-off).
const PRESIZE_FRAMES: u64 = 1 << 12;

/// A direct-mapped, page-granular cache.
///
/// # Examples
///
/// ```
/// use silo_cache::PageCache;
/// use silo_types::{ByteSize, LineAddr};
///
/// let mut dc = PageCache::new(ByteSize::from_gib(8), 4096);
/// let line = LineAddr::new(12345);
/// assert!(!dc.access(line));   // cold miss allocates the page
/// assert!(dc.access(line));    // now a hit
/// ```
#[derive(Clone, Debug)]
pub struct PageCache {
    page_bytes: usize,
    n_frames: u64,
    /// frame index -> resident page tag.
    frames: FxHashMap<u64, u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PageCache {
    /// Creates a page cache of the given capacity and page size.
    ///
    /// # Panics
    ///
    /// Panics if the page size is not a power-of-two multiple of the line
    /// size, or the capacity holds no pages, or the frame count is not a
    /// power of two.
    pub fn new(capacity: ByteSize, page_bytes: usize) -> Self {
        let n_frames = capacity.as_bytes() / page_bytes as u64;
        assert!(n_frames > 0, "capacity smaller than one page");
        assert!(
            n_frames.is_power_of_two(),
            "frame count must be a power of two"
        );
        PageCache {
            page_bytes,
            n_frames,
            frames: fx_map_with_capacity(n_frames.min(PRESIZE_FRAMES) as usize),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Number of page frames.
    pub fn frames(&self) -> u64 {
        self.n_frames
    }

    /// Accesses a line: returns `true` on a page hit. On a miss the
    /// containing page is allocated (direct-mapped), evicting any
    /// conflicting page.
    pub fn access(&mut self, line: LineAddr) -> bool {
        let page = line.page(self.page_bytes);
        let frame = page & (self.n_frames - 1);
        match self.frames.get(&frame) {
            Some(&resident) if resident == page => {
                self.hits += 1;
                true
            }
            Some(_) => {
                self.evictions += 1;
                self.frames.insert(frame, page);
                self.misses += 1;
                false
            }
            None => {
                self.frames.insert(frame, page);
                self.misses += 1;
                false
            }
        }
    }

    /// True if the line's page is resident, with no side effects.
    pub fn contains(&self, line: LineAddr) -> bool {
        let page = line.page(self.page_bytes);
        let frame = page & (self.n_frames - 1);
        self.frames.get(&frame) == Some(&page)
    }

    /// Hits recorded by [`access`](Self::access).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded by [`access`](Self::access).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Pages displaced by conflicting allocations.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Resets statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PageCache {
        // 4 frames of 4 KiB.
        PageCache::new(ByteSize::from_kib(16), 4096)
    }

    #[test]
    fn page_hit_after_allocation() {
        let mut pc = small();
        let line = LineAddr::new(5);
        assert!(!pc.access(line));
        // Another line in the same 4 KiB page (lines 0..63) hits.
        assert!(pc.access(LineAddr::new(60)));
        assert_eq!(pc.hits(), 1);
        assert_eq!(pc.misses(), 1);
    }

    #[test]
    fn conflicting_pages_evict() {
        let mut pc = small();
        // Page 0 and page 4 share frame 0 (4 frames).
        assert!(!pc.access(LineAddr::new(0)));
        assert!(!pc.access(LineAddr::new(4 * 64)));
        assert_eq!(pc.evictions(), 1);
        assert!(!pc.contains(LineAddr::new(0)));
        assert!(pc.contains(LineAddr::new(4 * 64)));
    }

    #[test]
    fn distinct_frames_coexist() {
        let mut pc = small();
        for p in 0..4u64 {
            pc.access(LineAddr::new(p * 64));
        }
        for p in 0..4u64 {
            assert!(pc.contains(LineAddr::new(p * 64)), "page {p} missing");
        }
        assert_eq!(pc.evictions(), 0);
    }

    #[test]
    fn contains_has_no_side_effects() {
        let pc = small();
        assert!(!pc.contains(LineAddr::new(0)));
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut pc = small();
        pc.access(LineAddr::new(0));
        pc.reset_stats();
        assert_eq!(pc.misses(), 0);
        assert!(pc.contains(LineAddr::new(0)));
    }

    #[test]
    fn geometry_accessors() {
        let pc = PageCache::new(ByteSize::from_gib(8), 4096);
        assert_eq!(pc.page_bytes(), 4096);
        assert_eq!(pc.frames(), 8 * 1024 * 1024 * 1024 / 4096);
    }

    #[test]
    #[should_panic(expected = "capacity smaller than one page")]
    fn rejects_tiny_capacity() {
        PageCache::new(ByteSize::from_bytes(64), 4096);
    }
}
