//! Cache array structures for the SILO simulator.
//!
//! Provides the storage-side building blocks used by every evaluated
//! system (Sec. V-A, Table II):
//!
//! * [`SetAssocCache`] — a sparse set-associative cache array with
//!   pluggable replacement, used for L1s, private L2s, the shared NUCA
//!   SRAM/eDRAM LLCs, and (with one way) the direct-mapped TAD-organized
//!   DRAM cache vaults of SILO.
//! * [`PageCache`] — the page-based conventional DRAM cache of the
//!   `Baseline+DRAM$` system.
//! * [`MissMap`] — a page-granular presence map used as the local-vault
//!   miss predictor (Sec. V-C); exact, so it models the paper's ideal
//!   predictor, and a bounded variant models a realistic one.
//!
//! Caches here are *functional*: they track contents and produce
//! hit/miss/eviction outcomes. All timing lives in `silo-sim`.

// Policy: unsafe is denied workspace-wide (every other crate is
// `forbid`); the single exception is the `_mm_prefetch` host-cache
// hint in `set_assoc`, which carries its own `#[allow]` + SAFETY note
// and is compiled out under Miri.
#![deny(unsafe_code)]

pub mod missmap;
pub mod page;
pub mod set_assoc;

pub use missmap::MissMap;
pub use page::PageCache;
pub use set_assoc::{EvictionVictim, ReplacementPolicy, SetAssocCache};
