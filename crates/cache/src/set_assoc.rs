//! Sparse set-associative cache array with pluggable replacement.
//!
//! The array stores an arbitrary payload per resident line (coherence
//! state, dirty bit, ...). Sets are allocated lazily in a hash map so that
//! multi-hundred-MB caches cost memory proportional to the lines actually
//! touched, which is what makes full-capacity vault simulation cheap.

use silo_types::hash::{fx_map_with_capacity, FxHashMap};
use silo_types::{ByteSize, LineAddr};

/// Upper bound on the number of set buckets reserved up front.
///
/// Pre-sizing avoids rehash-and-move cycles while a run warms the
/// cache, but a full-capacity reservation would defeat the sparse
/// design (a scale-1 vault has millions of sets, almost all untouched).
/// 4096 buckets covers every SRAM-sized array completely and gives the
/// large DRAM-vault tables a rehash-free head start at negligible
/// memory cost.
const PRESIZE_SETS: u64 = 1 << 12;

/// Replacement policy for a set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used (the paper's baseline LLC policy, Table II).
    #[default]
    Lru,
    /// Pseudo-random (deterministic, hash-of-line based).
    Random,
}

/// A line evicted by an insertion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictionVictim<P> {
    /// The evicted line.
    pub line: LineAddr,
    /// The payload it carried.
    pub payload: P,
}

#[derive(Clone, Debug)]
struct Way<P> {
    line: LineAddr,
    payload: P,
    /// Recency stamp; larger is more recent.
    stamp: u64,
}

/// Storage-dense arrays up to this many lines (`sets * ways`) skip the
/// hash map for a flat slot vector indexed by set: every probe becomes
/// an offset instead of a hash + bucket walk. 64 Ki lines covers every
/// SRAM array and the scale-64 DRAM vaults at a few MB apiece, while
/// full-scale vaults (millions of lines) stay sparse.
const DENSE_MAX_LINES: u64 = 1 << 16;

/// Backing store, specialized by geometry.
///
/// * `Dense` — flat `sets * ways` slot array, set `s` at
///   `[s*ways, (s+1)*ways)`. Used for small arrays (every probe on the
///   simulated LLC path hits one of these, so this is the hot layout).
///   Bit-compatible with the sparse layouts because recency stamps are
///   globally unique, so the LRU victim is identified by stamp value
///   alone, never by slot order; it is therefore not used for
///   multi-way `Random` arrays, whose victim pick is order-sensitive.
/// * `Direct` — sparse direct-mapped (`ways == 1`, e.g. a full-scale
///   SILO vault, Sec. V-A): the single way inline in the map entry.
/// * `Assoc` — sparse set-associative: lazily allocated way lists.
#[derive(Clone, Debug)]
enum Table<P> {
    /// Direct-mapped dense: one `(line, payload)` slot per set, no
    /// recency stamp — with a single way the victim is always the sole
    /// resident line, so recency is unobservable and the slot shrinks
    /// to half a `Way`. This is the layout of every scale-64 vault, the
    /// hottest array in a SILO run.
    DenseDirect(Box<[Option<(LineAddr, P)>]>),
    Dense(Box<[Option<Way<P>>]>),
    Direct(FxHashMap<u64, Way<P>>),
    Assoc(FxHashMap<u64, Vec<Way<P>>>),
}

/// A set-associative cache keyed by [`LineAddr`] with payload `P`.
///
/// With `ways == 1` this degenerates to the direct-mapped organization
/// SILO uses for its DRAM cache vaults (Sec. V-A).
///
/// # Examples
///
/// ```
/// use silo_cache::{ReplacementPolicy, SetAssocCache};
/// use silo_types::{ByteSize, LineAddr};
///
/// let mut l1: SetAssocCache<()> =
///     SetAssocCache::with_capacity(ByteSize::from_kib(64), 8, ReplacementPolicy::Lru);
/// assert!(l1.get(LineAddr::new(42)).is_none());
/// l1.insert(LineAddr::new(42), ());
/// assert!(l1.get(LineAddr::new(42)).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache<P> {
    sets: u64,
    ways: usize,
    policy: ReplacementPolicy,
    table: Table<P>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<P> SetAssocCache<P> {
    /// Creates a cache with an explicit set count and associativity.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: u64, ways: usize, policy: ReplacementPolicy) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "need at least one way");
        let buckets = sets.min(PRESIZE_SETS) as usize;
        let lines = sets.saturating_mul(ways as u64);
        let table = if lines <= DENSE_MAX_LINES && ways == 1 {
            Table::DenseDirect(
                std::iter::repeat_with(|| None)
                    .take(lines as usize)
                    .collect(),
            )
        } else if lines <= DENSE_MAX_LINES && policy == ReplacementPolicy::Lru {
            Table::Dense(
                std::iter::repeat_with(|| None)
                    .take(lines as usize)
                    .collect(),
            )
        } else if ways == 1 {
            Table::Direct(fx_map_with_capacity(buckets))
        } else {
            Table::Assoc(fx_map_with_capacity(buckets))
        };
        SetAssocCache {
            sets,
            ways,
            policy,
            table,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Creates a cache sized for `capacity` with the given associativity.
    ///
    /// # Panics
    ///
    /// Panics if the implied set count is not a power of two (capacities
    /// and associativities in this workspace are powers of two) or if the
    /// capacity is smaller than one line per way.
    pub fn with_capacity(capacity: ByteSize, ways: usize, policy: ReplacementPolicy) -> Self {
        assert!(ways > 0, "need at least one way");
        let lines = capacity.lines();
        assert!(
            lines >= ways as u64,
            "capacity {capacity} too small for {ways} ways"
        );
        let sets = lines / ways as u64;
        Self::new(sets, ways, policy)
    }

    /// Like [`with_capacity`](Self::with_capacity), but floors the set
    /// count to the previous power of two instead of panicking, flooring
    /// at one set. Used when the capacity is derived (scaled by an
    /// arbitrary factor or split across an arbitrary bank count) and thus
    /// not guaranteed to divide evenly.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn with_capacity_rounded(
        capacity: ByteSize,
        ways: usize,
        policy: ReplacementPolicy,
    ) -> Self {
        assert!(ways > 0, "need at least one way");
        let sets = (capacity.lines() / ways as u64).max(1);
        let sets = 1u64 << (63 - sets.leading_zeros());
        Self::new(sets, ways, policy)
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> u64 {
        self.sets * self.ways as u64
    }

    /// Lines currently resident.
    pub fn len(&self) -> usize {
        match &self.table {
            Table::DenseDirect(slots) => slots.iter().filter(|s| s.is_some()).count(),
            Table::Dense(slots) => slots.iter().filter(|s| s.is_some()).count(),
            Table::Direct(m) => m.len(),
            Table::Assoc(m) => m.values().map(Vec::len).sum(),
        }
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        match &self.table {
            Table::DenseDirect(slots) => slots.iter().all(Option::is_none),
            Table::Dense(slots) => slots.iter().all(Option::is_none),
            Table::Direct(m) => m.is_empty(),
            Table::Assoc(m) => m.is_empty(),
        }
    }

    /// Set index of a line (low-order bits, as in a real indexed array).
    #[inline]
    pub fn set_of(&self, line: LineAddr) -> u64 {
        line.as_u64() & (self.sets - 1)
    }

    /// Hints the host CPU to pull the line's set into cache ahead of an
    /// upcoming [`get`](Self::get)/[`insert`](Self::insert). Purely a
    /// performance hint: recency, counters, and contents are untouched,
    /// so issuing it (or not) can never change simulation results. The
    /// run loop issues these one round-robin turn ahead, hiding the
    /// host-memory latency of the multi-MB dense vault arrays. Sparse
    /// tables hash-probe, so they have no slot address to hint and the
    /// call is a no-op (as on non-x86 hosts).
    #[inline]
    #[allow(unsafe_code)] // the crate-level deny's single exception
    pub fn prefetch(&self, line: LineAddr) {
        // Compiled out under Miri: `_mm_prefetch` is a vendor intrinsic
        // the interpreter does not model, and skipping a pure hint
        // cannot change behaviour — this is the only unsafe block in the
        // workspace (every other crate is `#![forbid(unsafe_code)]`).
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            let set = self.set_of(line) as usize;
            let ptr = match &self.table {
                Table::DenseDirect(slots) => std::ptr::addr_of!(slots[set]).cast::<i8>(),
                Table::Dense(slots) => std::ptr::addr_of!(slots[set * self.ways]).cast::<i8>(),
                Table::Direct(_) | Table::Assoc(_) => return,
            };
            // SAFETY: the slot index is in bounds by construction, and a
            // prefetch hint cannot fault or write.
            unsafe {
                std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(ptr);
            }
        }
        #[cfg(not(all(target_arch = "x86_64", not(miri))))]
        let _ = line;
    }

    /// Looks up a line, updating recency on hit. Counts hit/miss stats.
    #[inline]
    pub fn get(&mut self, line: LineAddr) -> Option<&mut P> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        let ways_n = self.ways;
        let hit = match &mut self.table {
            Table::DenseDirect(slots) => match &mut slots[set as usize] {
                Some((l, p)) if *l == line => Some(p),
                _ => None,
            },
            Table::Dense(slots) => slots[set as usize * ways_n..(set as usize + 1) * ways_n]
                .iter_mut()
                .filter_map(Option::as_mut)
                .find(|w| w.line == line)
                .map(|w| {
                    w.stamp = tick;
                    &mut w.payload
                }),
            Table::Direct(m) => match m.get_mut(&set) {
                Some(w) if w.line == line => {
                    w.stamp = tick;
                    Some(&mut w.payload)
                }
                _ => None,
            },
            Table::Assoc(m) => match m.get_mut(&set) {
                Some(ways) => ways.iter_mut().find(|w| w.line == line).map(|w| {
                    w.stamp = tick;
                    &mut w.payload
                }),
                None => None,
            },
        };
        if hit.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Looks up a line without touching recency or statistics.
    pub fn peek(&self, line: LineAddr) -> Option<&P> {
        let set = self.set_of(line);
        match &self.table {
            Table::DenseDirect(slots) => match &slots[set as usize] {
                Some((l, p)) if *l == line => Some(p),
                _ => None,
            },
            Table::Dense(slots) => slots[set as usize * self.ways..(set as usize + 1) * self.ways]
                .iter()
                .filter_map(Option::as_ref)
                .find(|w| w.line == line)
                .map(|w| &w.payload),
            Table::Direct(m) => match m.get(&set) {
                Some(w) if w.line == line => Some(&w.payload),
                _ => None,
            },
            Table::Assoc(m) => m
                .get(&set)?
                .iter()
                .find(|w| w.line == line)
                .map(|w| &w.payload),
        }
    }

    /// Mutable lookup without touching recency or statistics.
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut P> {
        let set = self.set_of(line);
        match &mut self.table {
            Table::DenseDirect(slots) => match &mut slots[set as usize] {
                Some((l, p)) if *l == line => Some(p),
                _ => None,
            },
            Table::Dense(slots) => slots[set as usize * self.ways..(set as usize + 1) * self.ways]
                .iter_mut()
                .filter_map(Option::as_mut)
                .find(|w| w.line == line)
                .map(|w| &mut w.payload),
            Table::Direct(m) => match m.get_mut(&set) {
                Some(w) if w.line == line => Some(&mut w.payload),
                _ => None,
            },
            Table::Assoc(m) => m
                .get_mut(&set)?
                .iter_mut()
                .find(|w| w.line == line)
                .map(|w| &mut w.payload),
        }
    }

    /// True when the line is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.peek(line).is_some()
    }

    /// Inserts a line, returning the victim if the set was full.
    ///
    /// If the line is already resident its payload is replaced and recency
    /// refreshed; no eviction happens.
    pub fn insert(&mut self, line: LineAddr, payload: P) -> Option<EvictionVictim<P>> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        let ways_n = self.ways;
        let evicted = match &mut self.table {
            Table::DenseDirect(slots) => {
                let slot = &mut slots[set as usize];
                match slot {
                    Some((l, p)) if *l == line => {
                        *p = payload;
                        return None;
                    }
                    Some(_) => {
                        let old = slot.replace((line, payload)).expect("slot resident");
                        Some(Way {
                            line: old.0,
                            payload: old.1,
                            stamp: 0,
                        })
                    }
                    None => {
                        *slot = Some((line, payload));
                        return None;
                    }
                }
            }
            Table::Dense(slots) => {
                let new_way = Way {
                    line,
                    payload,
                    stamp: tick,
                };
                let set_slots = &mut slots[set as usize * ways_n..(set as usize + 1) * ways_n];
                if let Some(w) = set_slots
                    .iter_mut()
                    .filter_map(Option::as_mut)
                    .find(|w| w.line == line)
                {
                    *w = new_way;
                    return None;
                }
                if let Some(empty) = set_slots.iter_mut().find(|s| s.is_none()) {
                    *empty = Some(new_way);
                    return None;
                }
                // Set full: every slot resident.
                let victim_idx = match self.policy {
                    ReplacementPolicy::Lru => set_slots
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, w)| w.as_ref().expect("set is full").stamp)
                        .map(|(i, _)| i)
                        .expect("set is full, so non-empty"),
                    // Dense + Random only exists direct-mapped (see
                    // `Table` docs), where any index maps to slot 0.
                    ReplacementPolicy::Random => (line.scramble() ^ tick) as usize % ways_n,
                };
                set_slots[victim_idx].replace(new_way)
            }
            Table::Direct(m) => {
                let new_way = Way {
                    line,
                    payload,
                    stamp: tick,
                };
                match m.entry(set) {
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        let w = o.get_mut();
                        if w.line == line {
                            *w = new_way;
                            return None;
                        }
                        // The sole way is the victim under either policy.
                        Some(std::mem::replace(w, new_way))
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(new_way);
                        return None;
                    }
                }
            }
            Table::Assoc(m) => {
                let new_way = Way {
                    line,
                    payload,
                    stamp: tick,
                };
                let ways = m.entry(set).or_default();

                if let Some(w) = ways.iter_mut().find(|w| w.line == line) {
                    *w = new_way;
                    return None;
                }

                if ways.len() < self.ways {
                    ways.push(new_way);
                    return None;
                }

                let victim_idx = match self.policy {
                    ReplacementPolicy::Lru => ways
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, w)| w.stamp)
                        .map(|(i, _)| i)
                        .expect("set is full, so non-empty"),
                    ReplacementPolicy::Random => (line.scramble() ^ tick) as usize % ways.len(),
                };
                Some(std::mem::replace(&mut ways[victim_idx], new_way))
            }
        };

        evicted.map(|old| {
            self.evictions += 1;
            EvictionVictim {
                line: old.line,
                payload: old.payload,
            }
        })
    }

    /// Removes a line, returning its payload.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<P> {
        let set = self.set_of(line);
        match &mut self.table {
            Table::DenseDirect(slots) => {
                let slot = &mut slots[set as usize];
                if slot.as_ref().is_some_and(|(l, _)| *l == line) {
                    slot.take().map(|(_, p)| p)
                } else {
                    None
                }
            }
            Table::Dense(slots) => slots[set as usize * self.ways..(set as usize + 1) * self.ways]
                .iter_mut()
                .find(|s| s.as_ref().is_some_and(|w| w.line == line))
                .and_then(Option::take)
                .map(|w| w.payload),
            Table::Direct(m) => {
                if m.get(&set).is_some_and(|w| w.line == line) {
                    m.remove(&set).map(|w| w.payload)
                } else {
                    None
                }
            }
            Table::Assoc(m) => {
                let ways = m.get_mut(&set)?;
                let idx = ways.iter().position(|w| w.line == line)?;
                let w = ways.swap_remove(idx);
                if ways.is_empty() {
                    m.remove(&set);
                }
                Some(w.payload)
            }
        }
    }

    /// Iterates over all resident (line, payload) pairs in arbitrary
    /// order; used by invariant checks and warm-state inspection.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &P)> {
        let (dense_direct, dense, direct, assoc) = match &self.table {
            Table::DenseDirect(s) => (Some(s), None, None, None),
            Table::Dense(s) => (None, Some(s), None, None),
            Table::Direct(m) => (None, None, Some(m), None),
            Table::Assoc(m) => (None, None, None, Some(m)),
        };
        dense_direct
            .into_iter()
            .flat_map(|s| s.iter().flatten().map(|(l, p)| (*l, p)))
            .chain(
                dense
                    .into_iter()
                    .flat_map(|s| s.iter().flatten().map(|w| (w.line, &w.payload))),
            )
            .chain(
                direct
                    .into_iter()
                    .flat_map(|m| m.values().map(|w| (w.line, &w.payload))),
            )
            .chain(assoc.into_iter().flat_map(|m| {
                m.values()
                    .flat_map(|ways| ways.iter().map(|w| (w.line, &w.payload)))
            }))
    }

    /// Hits recorded by [`get`](Self::get).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded by [`get`](Self::get).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions caused by [`insert`](Self::insert).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Resets hit/miss/eviction statistics, keeping contents (used at the
    /// warmup/measurement boundary).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }

    /// Drops all contents and statistics.
    pub fn clear(&mut self) {
        match &mut self.table {
            Table::DenseDirect(slots) => slots.iter_mut().for_each(|s| *s = None),
            Table::Dense(slots) => slots.iter_mut().for_each(|s| *s = None),
            Table::Direct(m) => m.clear(),
            Table::Assoc(m) => m.clear(),
        }
        self.tick = 0;
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: usize) -> SetAssocCache<u32> {
        // 4 sets.
        SetAssocCache::new(4, ways, ReplacementPolicy::Lru)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny(2);
        assert!(c.get(LineAddr::new(5)).is_none());
        c.insert(LineAddr::new(5), 7);
        assert_eq!(c.get(LineAddr::new(5)), Some(&mut 7));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2);
        // Lines 0, 4, 8 all map to set 0.
        c.insert(LineAddr::new(0), 0);
        c.insert(LineAddr::new(4), 4);
        // Touch 0 so 4 becomes LRU.
        c.get(LineAddr::new(0));
        let victim = c.insert(LineAddr::new(8), 8).expect("eviction");
        assert_eq!(victim.line, LineAddr::new(4));
        assert!(c.contains(LineAddr::new(0)));
        assert!(c.contains(LineAddr::new(8)));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c: SetAssocCache<()> = SetAssocCache::new(4, 1, ReplacementPolicy::Lru);
        c.insert(LineAddr::new(1), ());
        let v = c.insert(LineAddr::new(5), ()).expect("conflict eviction");
        assert_eq!(v.line, LineAddr::new(1));
        assert!(!c.contains(LineAddr::new(1)));
    }

    #[test]
    fn reinsert_updates_payload_without_eviction() {
        let mut c = tiny(2);
        c.insert(LineAddr::new(3), 1);
        assert!(c.insert(LineAddr::new(3), 9).is_none());
        assert_eq!(c.peek(LineAddr::new(3)), Some(&9));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny(2);
        c.insert(LineAddr::new(3), 1);
        assert_eq!(c.invalidate(LineAddr::new(3)), Some(1));
        assert!(!c.contains(LineAddr::new(3)));
        assert_eq!(c.invalidate(LineAddr::new(3)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn peek_does_not_disturb_lru_or_stats() {
        let mut c = tiny(2);
        c.insert(LineAddr::new(0), 0);
        c.insert(LineAddr::new(4), 4);
        // Peek 0; 0 stays LRU because peek must not refresh recency.
        assert_eq!(c.peek(LineAddr::new(0)), Some(&0));
        let victim = c.insert(LineAddr::new(8), 8).expect("eviction");
        assert_eq!(victim.line, LineAddr::new(0));
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn with_capacity_sizes_correctly() {
        let c: SetAssocCache<()> =
            SetAssocCache::with_capacity(ByteSize::from_kib(64), 8, ReplacementPolicy::Lru);
        assert_eq!(c.capacity_lines(), 1024);
        assert_eq!(c.sets(), 128);
        assert_eq!(c.ways(), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        SetAssocCache::<()>::new(3, 1, ReplacementPolicy::Lru);
    }

    #[test]
    fn with_capacity_rounded_floors_to_power_of_two() {
        // 100 lines / 8 ways = 12 sets -> floored to 8.
        let c: SetAssocCache<()> = SetAssocCache::with_capacity_rounded(
            ByteSize::from_bytes(100 * 64),
            8,
            ReplacementPolicy::Lru,
        );
        assert_eq!(c.sets(), 8);
        // Smaller than one line per way still yields one set.
        let c: SetAssocCache<()> = SetAssocCache::with_capacity_rounded(
            ByteSize::from_bytes(64),
            16,
            ReplacementPolicy::Lru,
        );
        assert_eq!(c.sets(), 1);
        // Exact powers of two are preserved.
        let c: SetAssocCache<()> =
            SetAssocCache::with_capacity_rounded(ByteSize::from_kib(64), 8, ReplacementPolicy::Lru);
        assert_eq!(c.sets(), 128);
    }

    #[test]
    fn random_policy_fills_before_evicting() {
        let mut c: SetAssocCache<()> = SetAssocCache::new(1, 4, ReplacementPolicy::Random);
        for i in 0..4 {
            assert!(c.insert(LineAddr::new(i), ()).is_none());
        }
        assert!(c.insert(LineAddr::new(99), ()).is_some());
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn iter_visits_all_lines() {
        let mut c = tiny(4);
        for i in 0..8 {
            c.insert(LineAddr::new(i), i as u32);
        }
        let mut lines: Vec<u64> = c.iter().map(|(l, _)| l.as_u64()).collect();
        lines.sort_unstable();
        assert_eq!(lines, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn clear_and_reset_stats() {
        let mut c = tiny(2);
        c.insert(LineAddr::new(1), 1);
        c.get(LineAddr::new(1));
        c.get(LineAddr::new(2));
        c.reset_stats();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(c.contains(LineAddr::new(1)), "reset_stats keeps contents");
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn peek_mut_allows_payload_update() {
        let mut c = tiny(2);
        c.insert(LineAddr::new(1), 1);
        *c.peek_mut(LineAddr::new(1)).unwrap() = 5;
        assert_eq!(c.peek(LineAddr::new(1)), Some(&5));
        assert!(c.peek_mut(LineAddr::new(2)).is_none());
    }

    /// Sets × ways beyond [`DENSE_MAX_LINES`], forcing the sparse
    /// direct-mapped layout (a full-scale SILO vault).
    fn sparse_direct() -> SetAssocCache<u32> {
        SetAssocCache::new(DENSE_MAX_LINES * 2, 1, ReplacementPolicy::Lru)
    }

    /// Sets × ways beyond [`DENSE_MAX_LINES`] at 4 ways, forcing the
    /// sparse set-associative layout.
    fn sparse_assoc() -> SetAssocCache<u32> {
        SetAssocCache::new(DENSE_MAX_LINES / 2, 4, ReplacementPolicy::Lru)
    }

    #[test]
    fn sparse_direct_mapped_conflicts_like_dense() {
        let mut c = sparse_direct();
        assert!(
            matches!(c.table, Table::Direct(_)),
            "layout above the dense bound"
        );
        let sets = c.sets();
        c.insert(LineAddr::new(1), 10);
        assert_eq!(c.get(LineAddr::new(1)), Some(&mut 10));
        // The conflicting line one stride away evicts the resident one.
        let v = c
            .insert(LineAddr::new(1 + sets), 20)
            .expect("conflict eviction");
        assert_eq!(v.line, LineAddr::new(1));
        assert_eq!(v.payload, 10);
        assert!(!c.contains(LineAddr::new(1)));
        assert_eq!(c.invalidate(LineAddr::new(1 + sets)), Some(20));
        assert!(c.is_empty());
    }

    #[test]
    fn sparse_assoc_evicts_least_recent() {
        let mut c = sparse_assoc();
        assert!(
            matches!(c.table, Table::Assoc(_)),
            "layout above the dense bound"
        );
        let sets = c.sets();
        // Fill set 0's four ways, touch line 0 so `sets` becomes LRU.
        for i in 0..4 {
            assert!(c.insert(LineAddr::new(i * sets), i as u32).is_none());
        }
        c.get(LineAddr::new(0));
        let v = c.insert(LineAddr::new(4 * sets), 4).expect("eviction");
        assert_eq!(v.line, LineAddr::new(sets));
        assert!(c.contains(LineAddr::new(0)));
        assert_eq!(c.len(), 4);
        assert_eq!(c.evictions(), 1);
        let mut lines: Vec<u64> = c.iter().map(|(l, _)| l.as_u64()).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![0, 2 * sets, 3 * sets, 4 * sets]);
    }

    #[test]
    fn prefetch_is_inert_on_every_layout() {
        let mut caches = [
            SetAssocCache::new(4, 1, ReplacementPolicy::Lru), // DenseDirect
            SetAssocCache::new(4, 2, ReplacementPolicy::Lru), // Dense
            sparse_direct(),                                  // Direct
            sparse_assoc(),                                   // Assoc
        ];
        for c in &mut caches {
            c.insert(LineAddr::new(3), 1);
            c.prefetch(LineAddr::new(3));
            c.prefetch(LineAddr::new(1_000_003));
            assert_eq!(c.hits(), 0, "a prefetch hint records no probe");
            assert_eq!(c.misses(), 0);
            assert_eq!(c.len(), 1, "a prefetch hint moves no lines");
            assert!(c.contains(LineAddr::new(3)));
        }
    }
}
