//! Sparse set-associative cache array with pluggable replacement.
//!
//! The array stores an arbitrary payload per resident line (coherence
//! state, dirty bit, ...). Sets are allocated lazily in a hash map so that
//! multi-hundred-MB caches cost memory proportional to the lines actually
//! touched, which is what makes full-capacity vault simulation cheap.

use silo_types::{ByteSize, LineAddr};
use std::collections::HashMap;

/// Replacement policy for a set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used (the paper's baseline LLC policy, Table II).
    #[default]
    Lru,
    /// Pseudo-random (deterministic, hash-of-line based).
    Random,
}

/// A line evicted by an insertion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvictionVictim<P> {
    /// The evicted line.
    pub line: LineAddr,
    /// The payload it carried.
    pub payload: P,
}

#[derive(Clone, Debug)]
struct Way<P> {
    line: LineAddr,
    payload: P,
    /// Recency stamp; larger is more recent.
    stamp: u64,
}

/// A set-associative cache keyed by [`LineAddr`] with payload `P`.
///
/// With `ways == 1` this degenerates to the direct-mapped organization
/// SILO uses for its DRAM cache vaults (Sec. V-A).
///
/// # Examples
///
/// ```
/// use silo_cache::{ReplacementPolicy, SetAssocCache};
/// use silo_types::{ByteSize, LineAddr};
///
/// let mut l1: SetAssocCache<()> =
///     SetAssocCache::with_capacity(ByteSize::from_kib(64), 8, ReplacementPolicy::Lru);
/// assert!(l1.get(LineAddr::new(42)).is_none());
/// l1.insert(LineAddr::new(42), ());
/// assert!(l1.get(LineAddr::new(42)).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache<P> {
    sets: u64,
    ways: usize,
    policy: ReplacementPolicy,
    table: HashMap<u64, Vec<Way<P>>>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<P> SetAssocCache<P> {
    /// Creates a cache with an explicit set count and associativity.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: u64, ways: usize, policy: ReplacementPolicy) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "need at least one way");
        SetAssocCache {
            sets,
            ways,
            policy,
            table: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Creates a cache sized for `capacity` with the given associativity.
    ///
    /// # Panics
    ///
    /// Panics if the implied set count is not a power of two (capacities
    /// and associativities in this workspace are powers of two) or if the
    /// capacity is smaller than one line per way.
    pub fn with_capacity(capacity: ByteSize, ways: usize, policy: ReplacementPolicy) -> Self {
        assert!(ways > 0, "need at least one way");
        let lines = capacity.lines();
        assert!(
            lines >= ways as u64,
            "capacity {capacity} too small for {ways} ways"
        );
        let sets = lines / ways as u64;
        Self::new(sets, ways, policy)
    }

    /// Like [`with_capacity`](Self::with_capacity), but floors the set
    /// count to the previous power of two instead of panicking, flooring
    /// at one set. Used when the capacity is derived (scaled by an
    /// arbitrary factor or split across an arbitrary bank count) and thus
    /// not guaranteed to divide evenly.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn with_capacity_rounded(
        capacity: ByteSize,
        ways: usize,
        policy: ReplacementPolicy,
    ) -> Self {
        assert!(ways > 0, "need at least one way");
        let sets = (capacity.lines() / ways as u64).max(1);
        let sets = 1u64 << (63 - sets.leading_zeros());
        Self::new(sets, ways, policy)
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> u64 {
        self.sets * self.ways as u64
    }

    /// Lines currently resident.
    pub fn len(&self) -> usize {
        self.table.values().map(Vec::len).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Set index of a line (low-order bits, as in a real indexed array).
    #[inline]
    pub fn set_of(&self, line: LineAddr) -> u64 {
        line.as_u64() & (self.sets - 1)
    }

    /// Looks up a line, updating recency on hit. Counts hit/miss stats.
    pub fn get(&mut self, line: LineAddr) -> Option<&mut P> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        match self.table.get_mut(&set) {
            Some(ways) => match ways.iter_mut().find(|w| w.line == line) {
                Some(w) => {
                    w.stamp = tick;
                    self.hits += 1;
                    Some(&mut w.payload)
                }
                None => {
                    self.misses += 1;
                    None
                }
            },
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up a line without touching recency or statistics.
    pub fn peek(&self, line: LineAddr) -> Option<&P> {
        let set = self.set_of(line);
        self.table
            .get(&set)?
            .iter()
            .find(|w| w.line == line)
            .map(|w| &w.payload)
    }

    /// Mutable lookup without touching recency or statistics.
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut P> {
        let set = self.set_of(line);
        self.table
            .get_mut(&set)?
            .iter_mut()
            .find(|w| w.line == line)
            .map(|w| &mut w.payload)
    }

    /// True when the line is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.peek(line).is_some()
    }

    /// Inserts a line, returning the victim if the set was full.
    ///
    /// If the line is already resident its payload is replaced and recency
    /// refreshed; no eviction happens.
    pub fn insert(&mut self, line: LineAddr, payload: P) -> Option<EvictionVictim<P>> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        let ways = self.table.entry(set).or_default();

        if let Some(w) = ways.iter_mut().find(|w| w.line == line) {
            w.payload = payload;
            w.stamp = tick;
            return None;
        }

        if ways.len() < self.ways {
            ways.push(Way {
                line,
                payload,
                stamp: tick,
            });
            return None;
        }

        let victim_idx = match self.policy {
            ReplacementPolicy::Lru => ways
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.stamp)
                .map(|(i, _)| i)
                .expect("set is full, so non-empty"),
            ReplacementPolicy::Random => (line.scramble() ^ tick) as usize % ways.len(),
        };
        let old = std::mem::replace(
            &mut ways[victim_idx],
            Way {
                line,
                payload,
                stamp: tick,
            },
        );
        self.evictions += 1;
        Some(EvictionVictim {
            line: old.line,
            payload: old.payload,
        })
    }

    /// Removes a line, returning its payload.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<P> {
        let set = self.set_of(line);
        let ways = self.table.get_mut(&set)?;
        let idx = ways.iter().position(|w| w.line == line)?;
        let w = ways.swap_remove(idx);
        if ways.is_empty() {
            self.table.remove(&set);
        }
        Some(w.payload)
    }

    /// Iterates over all resident (line, payload) pairs in arbitrary
    /// order; used by invariant checks and warm-state inspection.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &P)> {
        self.table
            .values()
            .flat_map(|ways| ways.iter().map(|w| (w.line, &w.payload)))
    }

    /// Hits recorded by [`get`](Self::get).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded by [`get`](Self::get).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions caused by [`insert`](Self::insert).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Resets hit/miss/eviction statistics, keeping contents (used at the
    /// warmup/measurement boundary).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }

    /// Drops all contents and statistics.
    pub fn clear(&mut self) {
        self.table.clear();
        self.tick = 0;
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: usize) -> SetAssocCache<u32> {
        // 4 sets.
        SetAssocCache::new(4, ways, ReplacementPolicy::Lru)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny(2);
        assert!(c.get(LineAddr::new(5)).is_none());
        c.insert(LineAddr::new(5), 7);
        assert_eq!(c.get(LineAddr::new(5)), Some(&mut 7));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2);
        // Lines 0, 4, 8 all map to set 0.
        c.insert(LineAddr::new(0), 0);
        c.insert(LineAddr::new(4), 4);
        // Touch 0 so 4 becomes LRU.
        c.get(LineAddr::new(0));
        let victim = c.insert(LineAddr::new(8), 8).expect("eviction");
        assert_eq!(victim.line, LineAddr::new(4));
        assert!(c.contains(LineAddr::new(0)));
        assert!(c.contains(LineAddr::new(8)));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c: SetAssocCache<()> = SetAssocCache::new(4, 1, ReplacementPolicy::Lru);
        c.insert(LineAddr::new(1), ());
        let v = c.insert(LineAddr::new(5), ()).expect("conflict eviction");
        assert_eq!(v.line, LineAddr::new(1));
        assert!(!c.contains(LineAddr::new(1)));
    }

    #[test]
    fn reinsert_updates_payload_without_eviction() {
        let mut c = tiny(2);
        c.insert(LineAddr::new(3), 1);
        assert!(c.insert(LineAddr::new(3), 9).is_none());
        assert_eq!(c.peek(LineAddr::new(3)), Some(&9));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny(2);
        c.insert(LineAddr::new(3), 1);
        assert_eq!(c.invalidate(LineAddr::new(3)), Some(1));
        assert!(!c.contains(LineAddr::new(3)));
        assert_eq!(c.invalidate(LineAddr::new(3)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn peek_does_not_disturb_lru_or_stats() {
        let mut c = tiny(2);
        c.insert(LineAddr::new(0), 0);
        c.insert(LineAddr::new(4), 4);
        // Peek 0; 0 stays LRU because peek must not refresh recency.
        assert_eq!(c.peek(LineAddr::new(0)), Some(&0));
        let victim = c.insert(LineAddr::new(8), 8).expect("eviction");
        assert_eq!(victim.line, LineAddr::new(0));
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn with_capacity_sizes_correctly() {
        let c: SetAssocCache<()> =
            SetAssocCache::with_capacity(ByteSize::from_kib(64), 8, ReplacementPolicy::Lru);
        assert_eq!(c.capacity_lines(), 1024);
        assert_eq!(c.sets(), 128);
        assert_eq!(c.ways(), 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        SetAssocCache::<()>::new(3, 1, ReplacementPolicy::Lru);
    }

    #[test]
    fn with_capacity_rounded_floors_to_power_of_two() {
        // 100 lines / 8 ways = 12 sets -> floored to 8.
        let c: SetAssocCache<()> = SetAssocCache::with_capacity_rounded(
            ByteSize::from_bytes(100 * 64),
            8,
            ReplacementPolicy::Lru,
        );
        assert_eq!(c.sets(), 8);
        // Smaller than one line per way still yields one set.
        let c: SetAssocCache<()> = SetAssocCache::with_capacity_rounded(
            ByteSize::from_bytes(64),
            16,
            ReplacementPolicy::Lru,
        );
        assert_eq!(c.sets(), 1);
        // Exact powers of two are preserved.
        let c: SetAssocCache<()> =
            SetAssocCache::with_capacity_rounded(ByteSize::from_kib(64), 8, ReplacementPolicy::Lru);
        assert_eq!(c.sets(), 128);
    }

    #[test]
    fn random_policy_fills_before_evicting() {
        let mut c: SetAssocCache<()> = SetAssocCache::new(1, 4, ReplacementPolicy::Random);
        for i in 0..4 {
            assert!(c.insert(LineAddr::new(i), ()).is_none());
        }
        assert!(c.insert(LineAddr::new(99), ()).is_some());
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn iter_visits_all_lines() {
        let mut c = tiny(4);
        for i in 0..8 {
            c.insert(LineAddr::new(i), i as u32);
        }
        let mut lines: Vec<u64> = c.iter().map(|(l, _)| l.as_u64()).collect();
        lines.sort_unstable();
        assert_eq!(lines, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn clear_and_reset_stats() {
        let mut c = tiny(2);
        c.insert(LineAddr::new(1), 1);
        c.get(LineAddr::new(1));
        c.get(LineAddr::new(2));
        c.reset_stats();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(c.contains(LineAddr::new(1)), "reset_stats keeps contents");
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn peek_mut_allows_payload_update() {
        let mut c = tiny(2);
        c.insert(LineAddr::new(1), 1);
        *c.peek_mut(LineAddr::new(1)).unwrap() = 5;
        assert_eq!(c.peek(LineAddr::new(1)), Some(&5));
        assert!(c.peek_mut(LineAddr::new(2)).is_none());
    }
}
