//! Per-phase wall-clock accumulation for the simulator's hot loop.
//!
//! A [`PhaseProfile`] is a fixed set of named phases, each accumulating
//! total nanoseconds and a sample count. The hot loop adds to it with a
//! bounds-checked index per phase — cheap enough to run per reference
//! when profiling is on, and compiled out entirely when off (the run
//! loop monomorphizes on a `const PROFILED: bool`, the same trick the
//! `--check` oracle uses).
//!
//! Phases may form a tree ([`PhaseProfile::with_tree`]): a child phase
//! attributes a sub-interval of its parent, as measured by a
//! [`LapProbe`](crate::LapProbe), so e.g. `engine_step` can split into
//! the coherence engine's lookup/directory/fill/writeback segments.
//! Totals and shares are computed over root phases only — children are
//! a refinement of their parent, not extra time.
//!
//! Profiles from multiple runs [`merge`](PhaseProfile::merge), and a
//! profile exports as Chrome trace-event JSON (root phases laid
//! end-to-end, children nested inside their parent's interval, so
//! Perfetto shows the relative share of each phase at a glance).

use crate::trace::{chrome_document, Span};

/// Accumulated wall-clock per named phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseProfile {
    labels: Vec<String>,
    parents: Vec<Option<usize>>,
    nanos: Vec<u64>,
    samples: Vec<u64>,
}

impl PhaseProfile {
    /// Creates a flat profile with the given phase labels, all zeroed.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is empty.
    pub fn new(labels: &[&str]) -> Self {
        assert!(!labels.is_empty(), "profile needs at least one phase");
        PhaseProfile {
            labels: labels.iter().map(|l| (*l).to_string()).collect(),
            parents: vec![None; labels.len()],
            nanos: vec![0; labels.len()],
            samples: vec![0; labels.len()],
        }
    }

    /// Creates a hierarchical profile: each phase is `(label, parent)`,
    /// where `parent` indexes an earlier phase (or `None` for a root).
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or a parent index does not point at
    /// an earlier phase.
    pub fn with_tree(phases: &[(&str, Option<usize>)]) -> Self {
        assert!(!phases.is_empty(), "profile needs at least one phase");
        for (i, (label, parent)) in phases.iter().enumerate() {
            if let Some(p) = parent {
                assert!(
                    *p < i,
                    "phase '{label}' ({i}) must name an earlier phase as parent, got {p}"
                );
            }
        }
        PhaseProfile {
            labels: phases.iter().map(|(l, _)| (*l).to_string()).collect(),
            parents: phases.iter().map(|(_, p)| *p).collect(),
            nanos: vec![0; phases.len()],
            samples: vec![0; phases.len()],
        }
    }

    /// Adds one timed sample to phase `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn add(&mut self, idx: usize, nanos: u64) {
        self.nanos[idx] += nanos;
        self.samples[idx] += 1;
    }

    /// Adds pre-accumulated time to phase `idx`: `nanos` total across
    /// `samples` samples. This is how a [`LapProbe`](crate::LapProbe)'s
    /// buckets fold into the profile once at the end of a run.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn add_bulk(&mut self, idx: usize, nanos: u64, samples: u64) {
        self.nanos[idx] += nanos;
        self.samples[idx] += samples;
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the profile has no phases (never: construction
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Phase labels, in construction order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Parent phase of `idx`, or `None` for a root.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn parent(&self, idx: usize) -> Option<usize> {
        self.parents[idx]
    }

    /// Indices of the direct children of `idx`, in construction order.
    pub fn children(&self, idx: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.parents[i] == Some(idx))
            .collect()
    }

    /// Indices of the root phases, in construction order.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.parents[i].is_none())
            .collect()
    }

    /// Accumulated nanoseconds per phase, parallel to `labels()`.
    pub fn nanos(&self) -> &[u64] {
        &self.nanos
    }

    /// Sample counts per phase, parallel to `labels()`.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Sum of the root phases' nanoseconds. Children refine their
    /// parent's interval, so counting them too would double-book.
    pub fn total_nanos(&self) -> u64 {
        self.roots().into_iter().map(|i| self.nanos[i]).sum()
    }

    /// Fraction of total (root) time spent in phase `idx` (0.0 when
    /// nothing was recorded). For a child phase this is its share of the
    /// whole run, not of its parent.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn share(&self, idx: usize) -> f64 {
        silo_types::stats::ratio(self.nanos[idx], self.total_nanos())
    }

    /// Accumulates another profile into this one.
    ///
    /// # Panics
    ///
    /// Panics if the phase labels or the tree shape differ.
    pub fn merge(&mut self, other: &PhaseProfile) {
        assert_eq!(self.labels, other.labels, "phase label mismatch");
        assert_eq!(self.parents, other.parents, "phase tree mismatch");
        for (n, o) in self.nanos.iter_mut().zip(other.nanos.iter()) {
            *n += o;
        }
        for (s, o) in self.samples.iter_mut().zip(other.samples.iter()) {
            *s += o;
        }
    }

    /// Renders the profile as a Chrome trace-event JSON document: one
    /// complete event per phase. Root phases lie end-to-end on a single
    /// track in label order; each child nests inside its parent's
    /// interval (children of one parent laid end-to-end from the
    /// parent's start), with a `parent` arg linking the events.
    /// Timestamps are in microseconds, nanosecond remainders rounded to
    /// nearest.
    pub fn chrome_json(&self) -> String {
        let mut spans = Vec::with_capacity(self.labels.len());
        // Start of each phase's interval; for parents this doubles as
        // the running cursor its children advance.
        let mut cursor = vec![0u64; self.len()];
        let mut root_cursor = 0u64;
        for (i, label) in self.labels.iter().enumerate() {
            let dur_us = (self.nanos[i] + 500) / 1_000;
            let (start, parent) = match self.parents[i] {
                None => {
                    let s = root_cursor;
                    root_cursor += dur_us;
                    (s, None)
                }
                Some(p) => {
                    let s = cursor[p];
                    cursor[p] += dur_us;
                    (s, Some(p as u64 + 1))
                }
            };
            cursor[i] = start;
            spans.push(Span {
                id: i as u64 + 1,
                parent,
                name: label.clone(),
                cat: "profile".to_string(),
                tid: 0,
                start_us: start,
                dur_us,
            });
        }
        chrome_document(&spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_shares() {
        let mut p = PhaseProfile::new(&["pull", "step"]);
        p.add(0, 300);
        p.add(0, 100);
        p.add(1, 600);
        assert_eq!(p.len(), 2);
        assert_eq!(p.nanos(), &[400, 600]);
        assert_eq!(p.samples(), &[2, 1]);
        assert_eq!(p.total_nanos(), 1000);
        assert!((p.share(0) - 0.4).abs() < 1e-12);
        assert!((p.share(1) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_has_zero_shares() {
        let p = PhaseProfile::new(&["only"]);
        assert_eq!(p.total_nanos(), 0);
        assert_eq!(p.share(0), 0.0);
    }

    #[test]
    fn merge_sums_matching_phases() {
        let mut a = PhaseProfile::new(&["x", "y"]);
        let mut b = PhaseProfile::new(&["x", "y"]);
        a.add(0, 10);
        b.add(0, 5);
        b.add(1, 7);
        a.merge(&b);
        assert_eq!(a.nanos(), &[15, 7]);
        assert_eq!(a.samples(), &[2, 1]);
    }

    #[test]
    #[should_panic(expected = "phase label mismatch")]
    fn merge_rejects_different_labels() {
        let mut a = PhaseProfile::new(&["x"]);
        a.merge(&PhaseProfile::new(&["y"]));
    }

    #[test]
    #[should_panic(expected = "phase tree mismatch")]
    fn merge_rejects_different_trees() {
        let mut a = PhaseProfile::with_tree(&[("x", None), ("y", None)]);
        a.merge(&PhaseProfile::with_tree(&[("x", None), ("y", Some(0))]));
    }

    #[test]
    fn tree_totals_count_roots_only() {
        let mut p = PhaseProfile::with_tree(&[
            ("engine", None),
            ("lookup", Some(0)),
            ("dir", Some(0)),
            ("timing", None),
        ]);
        p.add_bulk(1, 300, 10);
        p.add_bulk(2, 700, 10);
        p.add_bulk(0, 1000, 10); // parent = sum of children, folded by the caller
        p.add(3, 1000);
        assert_eq!(p.total_nanos(), 2000, "children are not extra time");
        assert!((p.share(0) - 0.5).abs() < 1e-12);
        assert!((p.share(2) - 0.35).abs() < 1e-12);
        assert_eq!(p.parent(1), Some(0));
        assert_eq!(p.parent(3), None);
        assert_eq!(p.children(0), vec![1, 2]);
        assert_eq!(p.roots(), vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "must name an earlier phase")]
    fn tree_rejects_forward_parents() {
        let _ = PhaseProfile::with_tree(&[("a", Some(0))]);
    }

    #[test]
    fn chrome_export_lays_phases_end_to_end() {
        let mut p = PhaseProfile::new(&["pull", "step"]);
        p.add(0, 2_000_000); // 2000us
        p.add(1, 1_000_000); // 1000us
        let json = p.chrome_json();
        assert!(json.contains("\"name\":\"pull\""));
        assert!(json.contains("\"ts\":0,\"dur\":2000"));
        assert!(json.contains("\"name\":\"step\""));
        assert!(json.contains("\"ts\":2000,\"dur\":1000"));
    }

    #[test]
    fn chrome_export_nests_children_in_the_parent_interval() {
        let mut p = PhaseProfile::with_tree(&[
            ("pull", None),
            ("step", None),
            ("lookup", Some(1)),
            ("dir", Some(1)),
        ]);
        p.add(0, 1_000_000);
        p.add(1, 2_000_000);
        p.add_bulk(2, 500_000, 1);
        p.add_bulk(3, 1_500_000, 1);
        let json = p.chrome_json();
        // step starts after pull; its children tile it from its start.
        assert!(json.contains("\"name\":\"step\""));
        assert!(json.contains("\"ts\":1000,\"dur\":2000"));
        assert!(json.contains("\"ts\":1000,\"dur\":500"));
        assert!(json.contains("\"ts\":1500,\"dur\":1500"));
        assert!(
            json.contains("\"parent\":2"),
            "children link to the parent event"
        );
    }
}
