//! Per-phase wall-clock accumulation for the simulator's hot loop.
//!
//! A [`PhaseProfile`] is a fixed set of named phases, each accumulating
//! total nanoseconds and a sample count. The hot loop adds to it with a
//! bounds-checked index per phase — cheap enough to run per reference
//! when profiling is on, and compiled out entirely when off (the run
//! loop monomorphizes on a `const PROFILED: bool`, the same trick the
//! `--check` oracle uses).
//!
//! Profiles from multiple runs [`merge`](PhaseProfile::merge), and a
//! profile exports as Chrome trace-event JSON (phases laid end-to-end,
//! so Perfetto shows the relative share of each phase at a glance).

use crate::trace::{chrome_document, Span};

/// Accumulated wall-clock per named phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseProfile {
    labels: Vec<String>,
    nanos: Vec<u64>,
    samples: Vec<u64>,
}

impl PhaseProfile {
    /// Creates a profile with the given phase labels, all zeroed.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is empty.
    pub fn new(labels: &[&str]) -> Self {
        assert!(!labels.is_empty(), "profile needs at least one phase");
        PhaseProfile {
            labels: labels.iter().map(|l| (*l).to_string()).collect(),
            nanos: vec![0; labels.len()],
            samples: vec![0; labels.len()],
        }
    }

    /// Adds one timed sample to phase `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn add(&mut self, idx: usize, nanos: u64) {
        self.nanos[idx] += nanos;
        self.samples[idx] += 1;
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the profile has no phases (never: construction
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Phase labels, in construction order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Accumulated nanoseconds per phase, parallel to `labels()`.
    pub fn nanos(&self) -> &[u64] {
        &self.nanos
    }

    /// Sample counts per phase, parallel to `labels()`.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Sum of all phase nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Fraction of total time spent in phase `idx` (0.0 when nothing
    /// was recorded).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn share(&self, idx: usize) -> f64 {
        silo_types::stats::ratio(self.nanos[idx], self.total_nanos())
    }

    /// Accumulates another profile into this one.
    ///
    /// # Panics
    ///
    /// Panics if the phase labels differ.
    pub fn merge(&mut self, other: &PhaseProfile) {
        assert_eq!(self.labels, other.labels, "phase label mismatch");
        for (n, o) in self.nanos.iter_mut().zip(other.nanos.iter()) {
            *n += o;
        }
        for (s, o) in self.samples.iter_mut().zip(other.samples.iter()) {
            *s += o;
        }
    }

    /// Renders the profile as a Chrome trace-event JSON document: one
    /// complete event per phase, laid end-to-end on a single track in
    /// label order (timestamps in microseconds, nanosecond remainders
    /// rounded to nearest).
    pub fn chrome_json(&self) -> String {
        let mut spans = Vec::with_capacity(self.labels.len());
        let mut cursor = 0u64;
        for (i, label) in self.labels.iter().enumerate() {
            let dur_us = (self.nanos[i] + 500) / 1_000;
            spans.push(Span {
                id: i as u64 + 1,
                parent: None,
                name: label.clone(),
                cat: "profile".to_string(),
                tid: 0,
                start_us: cursor,
                dur_us,
            });
            cursor += dur_us;
        }
        chrome_document(&spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_shares() {
        let mut p = PhaseProfile::new(&["pull", "step"]);
        p.add(0, 300);
        p.add(0, 100);
        p.add(1, 600);
        assert_eq!(p.len(), 2);
        assert_eq!(p.nanos(), &[400, 600]);
        assert_eq!(p.samples(), &[2, 1]);
        assert_eq!(p.total_nanos(), 1000);
        assert!((p.share(0) - 0.4).abs() < 1e-12);
        assert!((p.share(1) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_has_zero_shares() {
        let p = PhaseProfile::new(&["only"]);
        assert_eq!(p.total_nanos(), 0);
        assert_eq!(p.share(0), 0.0);
    }

    #[test]
    fn merge_sums_matching_phases() {
        let mut a = PhaseProfile::new(&["x", "y"]);
        let mut b = PhaseProfile::new(&["x", "y"]);
        a.add(0, 10);
        b.add(0, 5);
        b.add(1, 7);
        a.merge(&b);
        assert_eq!(a.nanos(), &[15, 7]);
        assert_eq!(a.samples(), &[2, 1]);
    }

    #[test]
    #[should_panic(expected = "phase label mismatch")]
    fn merge_rejects_different_labels() {
        let mut a = PhaseProfile::new(&["x"]);
        a.merge(&PhaseProfile::new(&["y"]));
    }

    #[test]
    fn chrome_export_lays_phases_end_to_end() {
        let mut p = PhaseProfile::new(&["pull", "step"]);
        p.add(0, 2_000_000); // 2000us
        p.add(1, 1_000_000); // 1000us
        let json = p.chrome_json();
        assert!(json.contains("\"name\":\"pull\""));
        assert!(json.contains("\"ts\":0,\"dur\":2000"));
        assert!(json.contains("\"name\":\"step\""));
        assert!(json.contains("\"ts\":2000,\"dur\":1000"));
    }
}
