//! Observability engines for the SILO toolchain.
//!
//! Independent engines plus hot-loop helpers, all dependency-free
//! (only `silo-types`):
//!
//! * [`metrics`] — an ordered metrics registry of counters, gauges, and
//!   log-bucketed histograms, rendered in the Prometheus text
//!   exposition format (`GET /metrics` on the serve daemon).
//! * [`trace`] — a ring-buffered span recorder on a monotonic clock
//!   with parent links, exported as Chrome trace-event JSON that loads
//!   directly in Perfetto or `chrome://tracing`.
//! * [`profile`] — a per-phase wall-clock accumulator for the
//!   simulator's hot loop (`silo-sim --profile`), with the same
//!   trace-event export. Phases may nest; the sub-phase buckets come
//!   from [`probe`] lap probes.
//! * [`probe`] — gap-free stopwatch-lap probes for sub-phase
//!   attribution, compiled out entirely via the [`NoProbe`]
//!   implementation when profiling is off.
//! * [`log`] — a leveled, timestamped, bounded-ring structured event
//!   log with NDJSON export (`GET /logs`, `--log-out`).
//!
//! None of these engines touch simulated state: instrumented paths must
//! produce byte-identical `silo-bench/v1` documents, so everything here
//! observes wall-clock behaviour only.

#![forbid(unsafe_code)]

pub mod log;
pub mod metrics;
pub mod probe;
pub mod profile;
pub mod trace;

pub use crate::log::{EventLog, LogLevel, LogRecord};
pub use metrics::{Counter, Gauge, Histo, Registry};
pub use probe::{Lap, LapProbe, NoProbe};
pub use profile::PhaseProfile;
pub use trace::{Span, SpanRecorder};

/// Escapes a string for embedding in a JSON string literal (shared by
/// the trace-event and profile exporters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}
