//! Lap probes: sub-phase wall-clock attribution with zero gaps.
//!
//! A [`PhaseProfile`](crate::PhaseProfile) measures a phase by wrapping
//! it in two clock reads. That is fine at phase granularity (hundreds of
//! nanoseconds per phase), but splitting a ~90ns phase into sub-phases
//! the same way would spend more time reading the clock than doing the
//! work, and the unmeasured gap *between* the wrapped regions would
//! dwarf the children. A [`LapProbe`] avoids both problems with the
//! stopwatch-lap trick: every [`lap`](LapProbe::lap) takes **one** clock
//! read that simultaneously ends the current segment (accumulating it
//! into the named bucket) and starts the next. Consecutive laps tile the
//! interval since [`begin`](LapProbe::begin) exactly — the buckets sum
//! to the parent by construction, with no gap and half the clock reads.
//!
//! Instrumented code is generic over the [`Lap`] trait so the probed and
//! unprobed monomorphizations share one body: [`NoProbe`] compiles every
//! probe operation out entirely (the same `const`-dispatch discipline as
//! the run loop's `PROFILED` parameter), keeping unprofiled runs
//! byte-identical and cost-free.

use std::time::Instant;

/// The probe operations instrumented code is generic over.
///
/// Implementors are [`LapProbe`] (real measurement) and [`NoProbe`]
/// (no-ops, compiled out).
pub trait Lap {
    /// Starts (or restarts) the stopwatch and counts one probed call.
    fn begin(&mut self);
    /// Ends the current segment, accumulating it into bucket `idx`, and
    /// starts the next segment.
    fn lap(&mut self, idx: usize);
}

/// The disabled probe: every operation is a no-op the optimizer deletes,
/// so un-instrumented code paths pay nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoProbe;

impl Lap for NoProbe {
    #[inline(always)]
    fn begin(&mut self) {}
    #[inline(always)]
    fn lap(&mut self, _idx: usize) {}
}

/// A stopwatch with `N` named buckets, accumulating lap times.
#[derive(Clone, Copy, Debug)]
pub struct LapProbe<const N: usize> {
    t: Instant,
    nanos: [u64; N],
    samples: [u64; N],
    calls: u64,
}

impl<const N: usize> LapProbe<N> {
    /// A zeroed probe. The embedded instant is placeholder state;
    /// [`begin`](Lap::begin) resets it before every probed call.
    pub fn new() -> Self {
        LapProbe {
            t: Instant::now(),
            nanos: [0; N],
            samples: [0; N],
            calls: 0,
        }
    }

    /// Accumulated nanoseconds per bucket.
    pub fn nanos(&self) -> &[u64; N] {
        &self.nanos
    }

    /// Lap counts per bucket.
    pub fn samples(&self) -> &[u64; N] {
        &self.samples
    }

    /// Number of [`begin`](Lap::begin) calls (probed calls observed).
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Sum of all buckets — exactly the wall-clock tiled by the laps.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }
}

impl<const N: usize> Default for LapProbe<N> {
    fn default() -> Self {
        LapProbe::new()
    }
}

impl<const N: usize> Lap for LapProbe<N> {
    #[inline]
    fn begin(&mut self) {
        self.calls += 1;
        self.t = Instant::now();
    }

    #[inline]
    fn lap(&mut self, idx: usize) {
        let now = Instant::now();
        self.nanos[idx] += now.duration_since(self.t).as_nanos() as u64;
        self.samples[idx] += 1;
        self.t = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laps_tile_the_interval_exactly() {
        let mut p: LapProbe<3> = LapProbe::new();
        for _ in 0..100 {
            p.begin();
            std::hint::black_box(0u64);
            p.lap(0);
            std::hint::black_box(0u64);
            p.lap(2);
        }
        assert_eq!(p.calls(), 100);
        assert_eq!(p.samples(), &[100, 0, 100]);
        assert_eq!(p.total_nanos(), p.nanos()[0] + p.nanos()[1] + p.nanos()[2]);
    }

    #[test]
    fn begin_resets_the_stopwatch() {
        let mut p: LapProbe<1> = LapProbe::new();
        p.begin();
        p.lap(0);
        let first = p.nanos()[0];
        // A second begin/lap pair measures only its own segment, not the
        // time between the pairs.
        std::thread::sleep(std::time::Duration::from_millis(5));
        p.begin();
        p.lap(0);
        assert!(
            p.nanos()[0] - first < 5_000_000,
            "sleep between probed calls must not be attributed"
        );
    }

    #[test]
    fn no_probe_is_inert() {
        let mut n = NoProbe;
        n.begin();
        n.lap(0);
        n.lap(usize::MAX); // out-of-range indices are fine: there are no buckets
    }
}
