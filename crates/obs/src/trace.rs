//! A ring-buffered span recorder exporting Chrome trace-event JSON.
//!
//! Spans are measured on a single monotonic clock (the recorder's
//! creation instant), carry optional parent links, and live in a
//! bounded ring — a long-running daemon keeps the most recent window
//! instead of growing without bound. [`SpanRecorder::chrome_json`]
//! renders the ring as a JSON object-format trace (`traceEvents` of
//! `"ph":"X"` complete events, timestamps in microseconds) that loads
//! directly in Perfetto or `chrome://tracing`.
//!
//! Recording is explicit — callers capture `now_us()` timestamps and
//! call [`SpanRecorder::record`] once the span is over — because
//! daemon spans routinely start on one thread (enqueue) and finish on
//! another (worker), where scope-guard APIs mislead.

use crate::json_escape;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One completed span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Recorder-unique id (1-based, in record order).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Event name (e.g. `request`, `run`).
    pub name: String,
    /// Event category (e.g. `http`, `job`).
    pub cat: String,
    /// Logical track: thread index for daemon spans.
    pub tid: u64,
    /// Start offset from recorder creation, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

#[derive(Debug)]
struct Inner {
    t0: Instant,
    next_id: AtomicU64,
    spans: Mutex<VecDeque<Span>>,
    capacity: usize,
    dropped: AtomicU64,
}

/// The recorder: clone freely, all clones share one ring.
#[derive(Clone, Debug)]
pub struct SpanRecorder {
    inner: Arc<Inner>,
}

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

impl SpanRecorder {
    /// Creates a recorder keeping at most `capacity` spans (oldest
    /// evicted first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "span ring needs capacity");
        SpanRecorder {
            inner: Arc::new(Inner {
                t0: Instant::now(),
                next_id: AtomicU64::new(1),
                spans: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
                capacity,
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Microseconds since the recorder was created — the clock every
    /// span timestamp is expressed in.
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.inner.t0.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Reserves a span id without recording anything yet. Lets a
    /// long-lived parent hand its id to children that complete (and
    /// record) first; finish the parent with
    /// [`SpanRecorder::record_with_id`].
    pub fn reserve(&self) -> u64 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Records a completed span on the calling thread's track and
    /// returns its id (usable as `parent` for children).
    ///
    /// `end_us` is clamped to `start_us` so a mis-ordered pair never
    /// produces a negative duration.
    ///
    /// # Panics
    ///
    /// Panics if the span ring mutex is poisoned.
    pub fn record(
        &self,
        name: &str,
        cat: &str,
        parent: Option<u64>,
        start_us: u64,
        end_us: u64,
    ) -> u64 {
        self.record_with_id(self.reserve(), name, cat, parent, start_us, end_us)
    }

    /// [`SpanRecorder::record`] under a previously
    /// [`reserve`](SpanRecorder::reserve)d id.
    ///
    /// # Panics
    ///
    /// Panics if the span ring mutex is poisoned.
    pub fn record_with_id(
        &self,
        id: u64,
        name: &str,
        cat: &str,
        parent: Option<u64>,
        start_us: u64,
        end_us: u64,
    ) -> u64 {
        let span = Span {
            id,
            parent,
            name: name.to_string(),
            cat: cat.to_string(),
            tid: TID.with(|t| *t),
            start_us,
            dur_us: end_us.saturating_sub(start_us),
        };
        let mut ring = self.inner.spans.lock().expect("span ring lock");
        if ring.len() == self.inner.capacity {
            ring.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(span);
        id
    }

    /// Spans evicted from the ring since creation — nonzero means the
    /// exported trace is a truncated window, not the full history
    /// (surfaced as `silo_obs_spans_dropped_total` on the daemon).
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Number of spans currently buffered.
    ///
    /// # Panics
    ///
    /// Panics if the span ring mutex is poisoned.
    pub fn len(&self) -> usize {
        self.inner.spans.lock().expect("span ring lock").len()
    }

    /// True when no spans are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the buffered spans, oldest first.
    ///
    /// # Panics
    ///
    /// Panics if the span ring mutex is poisoned.
    pub fn snapshot(&self) -> Vec<Span> {
        self.inner
            .spans
            .lock()
            .expect("span ring lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Renders the ring as Chrome trace-event JSON (object format):
    /// `{"displayTimeUnit":"ms","traceEvents":[...]}` with one
    /// `"ph":"X"` complete event per span. Span ids and parent links
    /// ride in each event's `args`.
    pub fn chrome_json(&self) -> String {
        chrome_document(&self.snapshot())
    }
}

/// Renders a list of spans as a Chrome trace-event JSON document.
pub(crate) fn chrome_document(spans: &[Span]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"id\":{}{}}}}}",
            json_escape(&s.name),
            json_escape(&s.cat),
            s.start_us,
            s.dur_us,
            s.tid,
            s.id,
            s.parent
                .map(|p| format!(",\"parent\":{p}"))
                .unwrap_or_default(),
        ));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_spans_with_parent_links() {
        let rec = SpanRecorder::new(16);
        let t0 = rec.now_us();
        let parent = rec.record("request", "http", None, t0, t0 + 100);
        let child = rec.record("run", "job", Some(parent), t0 + 10, t0 + 60);
        assert_ne!(parent, child);
        let spans = rec.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(parent));
        assert_eq!(spans[1].dur_us, 50);
    }

    #[test]
    fn reserved_parent_ids_link_children_recorded_first() {
        let rec = SpanRecorder::new(8);
        let parent = rec.reserve();
        let child = rec.record("child", "t", Some(parent), 10, 20);
        rec.record_with_id(parent, "parent", "t", None, 0, 30);
        assert!(child != parent);
        let spans = rec.snapshot();
        assert_eq!(spans[0].parent, Some(parent));
        assert_eq!(spans[1].id, parent);
    }

    #[test]
    fn ring_evicts_oldest() {
        let rec = SpanRecorder::new(2);
        rec.record("a", "t", None, 0, 1);
        rec.record("b", "t", None, 1, 2);
        rec.record("c", "t", None, 2, 3);
        let names: Vec<String> = rec.snapshot().into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["b", "c"]);
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 1, "eviction is counted, not silent");
    }

    #[test]
    fn negative_durations_are_clamped() {
        let rec = SpanRecorder::new(4);
        rec.record("x", "t", None, 100, 40);
        assert_eq!(rec.snapshot()[0].dur_us, 0);
    }

    #[test]
    fn chrome_json_shape() {
        let rec = SpanRecorder::new(4);
        let p = rec.record("req \"q\"", "http", None, 5, 25);
        rec.record("child", "job", Some(p), 10, 20);
        let json = rec.chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"name\":\"req \\\"q\\\"\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":5,\"dur\":20"));
        assert!(json.contains(&format!("\"parent\":{p}")));
    }

    #[test]
    fn empty_ring_renders_empty_event_list() {
        let rec = SpanRecorder::new(4);
        assert!(rec.is_empty());
        assert_eq!(
            rec.chrome_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n"
        );
    }

    #[test]
    fn clones_share_the_ring() {
        let rec = SpanRecorder::new(4);
        let clone = rec.clone();
        clone.record("shared", "t", None, 0, 1);
        assert_eq!(rec.len(), 1);
    }
}
