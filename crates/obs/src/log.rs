//! Structured event log: leveled, timestamped, bounded-ring records.
//!
//! An [`EventLog`] is a cheap, clonable handle (shared ring) that
//! operational code logs structured events into: a [`LogLevel`], a
//! `target` naming the subsystem (`serve.job`, `serve.journal`, …), a
//! human message, and flat key/value fields. Records are sequence-
//! numbered and wall-clock timestamped (microseconds since the Unix
//! epoch), held in a bounded ring — old records are evicted, with the
//! eviction count visible via [`EventLog::dropped`] — and rendered as
//! NDJSON (one JSON object per line), the format `GET /logs` serves and
//! `--log-out` appends to a file.
//!
//! Like the other observability engines, the log never touches simulated
//! state: it records what the *host* process did, when.

use crate::json_escape;
use std::collections::VecDeque;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// Severity of a log record, ordered `Debug < Info < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// High-volume operational detail (per-point progress, journal IO).
    Debug,
    /// Normal lifecycle events (job submitted/completed, daemon up).
    Info,
    /// Something degraded but the process continues (dropped journal
    /// entries, cache evictions under pressure).
    Warn,
    /// A request or job failed.
    Error,
}

impl LogLevel {
    /// The lowercase wire name (`"debug"`, `"info"`, `"warn"`,
    /// `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }

    /// Parses a wire name, case-insensitively. `None` for unknown names.
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Some(LogLevel::Debug),
            "info" => Some(LogLevel::Info),
            "warn" | "warning" => Some(LogLevel::Warn),
            "error" => Some(LogLevel::Error),
            _ => None,
        }
    }
}

/// One structured log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogRecord {
    /// Monotonic sequence number, 1-based, never reused — so a paginated
    /// reader can detect gaps left by ring eviction.
    pub seq: u64,
    /// Wall-clock timestamp, microseconds since the Unix epoch.
    pub unix_us: u64,
    /// Severity.
    pub level: LogLevel,
    /// Subsystem that produced the record (`serve.job`, `sim.run`, …).
    pub target: String,
    /// Human-readable message.
    pub message: String,
    /// Flat key/value context fields, in insertion order.
    pub fields: Vec<(String, String)>,
}

impl LogRecord {
    /// Renders the record as one NDJSON line (no trailing newline).
    pub fn ndjson(&self) -> String {
        let mut out = format!(
            "{{\"seq\":{},\"ts_us\":{},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"",
            self.seq,
            self.unix_us,
            self.level.as_str(),
            json_escape(&self.target),
            json_escape(&self.message),
        );
        for (k, v) in &self.fields {
            out.push_str(&format!(",\"{}\":\"{}\"", json_escape(k), json_escape(v)));
        }
        out.push('}');
        out
    }
}

struct LogState {
    next_seq: u64,
    ring: VecDeque<LogRecord>,
    sink: Option<File>,
}

struct Inner {
    capacity: usize,
    dropped: AtomicU64,
    state: Mutex<LogState>,
}

/// A shared, bounded, structured event log. Clones share the ring.
#[derive(Clone)]
pub struct EventLog {
    inner: Arc<Inner>,
}

impl EventLog {
    /// Creates a log holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event log capacity must be positive");
        EventLog {
            inner: Arc::new(Inner {
                capacity,
                dropped: AtomicU64::new(0),
                state: Mutex::new(LogState {
                    next_seq: 1,
                    ring: VecDeque::with_capacity(capacity),
                    sink: None,
                }),
            }),
        }
    }

    /// Like [`EventLog::new`], additionally appending every record as an
    /// NDJSON line to the file at `path` (created if absent). The ring
    /// stays bounded; the file keeps everything.
    ///
    /// # Errors
    ///
    /// Propagates the open/create failure.
    pub fn with_sink(capacity: usize, path: &Path) -> std::io::Result<Self> {
        let log = EventLog::new(capacity);
        let file = File::options().create(true).append(true).open(path)?;
        log.lock().sink = Some(file);
        Ok(log)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LogState> {
        self.inner.state.lock().expect("event log poisoned")
    }

    /// Appends a record. Fields are borrowed key/value pairs; the record
    /// is timestamped now and sequence-numbered. Sink write failures are
    /// swallowed (logging must never take the daemon down).
    pub fn log(&self, level: LogLevel, target: &str, message: &str, fields: &[(&str, &str)]) {
        let unix_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_micros() as u64);
        let mut s = self.lock();
        let record = LogRecord {
            seq: s.next_seq,
            unix_us,
            level,
            target: target.to_string(),
            message: message.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
        };
        s.next_seq += 1;
        if let Some(sink) = &mut s.sink {
            let _ = writeln!(sink, "{}", record.ndjson());
        }
        if s.ring.len() == self.inner.capacity {
            s.ring.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        s.ring.push_back(record);
    }

    /// [`EventLog::log`] at [`LogLevel::Debug`].
    pub fn debug(&self, target: &str, message: &str, fields: &[(&str, &str)]) {
        self.log(LogLevel::Debug, target, message, fields);
    }

    /// [`EventLog::log`] at [`LogLevel::Info`].
    pub fn info(&self, target: &str, message: &str, fields: &[(&str, &str)]) {
        self.log(LogLevel::Info, target, message, fields);
    }

    /// [`EventLog::log`] at [`LogLevel::Warn`].
    pub fn warn(&self, target: &str, message: &str, fields: &[(&str, &str)]) {
        self.log(LogLevel::Warn, target, message, fields);
    }

    /// [`EventLog::log`] at [`LogLevel::Error`].
    pub fn error(&self, target: &str, message: &str, fields: &[(&str, &str)]) {
        self.log(LogLevel::Error, target, message, fields);
    }

    /// Number of records currently in the ring.
    pub fn len(&self) -> usize {
        self.lock().ring.len()
    }

    /// True when no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted from the ring since construction.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// The last `n` records at `min_level` or above, oldest first.
    pub fn tail(&self, min_level: LogLevel, n: usize) -> Vec<LogRecord> {
        let s = self.lock();
        let mut out: Vec<LogRecord> = s
            .ring
            .iter()
            .rev()
            .filter(|r| r.level >= min_level)
            .take(n)
            .cloned()
            .collect();
        out.reverse();
        out
    }

    /// [`EventLog::tail`] rendered as NDJSON (one line per record,
    /// trailing newline when nonempty).
    pub fn ndjson(&self, min_level: LogLevel, n: usize) -> String {
        let mut out = String::new();
        for r in self.tail(min_level, n) {
            out.push_str(&r.ndjson());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(LogLevel::parse("INFO"), Some(LogLevel::Info));
        assert_eq!(LogLevel::parse("warning"), Some(LogLevel::Warn));
        assert_eq!(LogLevel::parse("nope"), None);
        assert!(LogLevel::Debug < LogLevel::Info);
        assert!(LogLevel::Warn < LogLevel::Error);
        assert_eq!(LogLevel::Error.as_str(), "error");
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let log = EventLog::new(3);
        for i in 0..5 {
            log.info("t", &format!("m{i}"), &[]);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let tail = log.tail(LogLevel::Debug, 10);
        assert_eq!(tail.len(), 3);
        // Oldest first, sequence numbers survive eviction.
        assert_eq!(tail[0].seq, 3);
        assert_eq!(tail[2].seq, 5);
        assert_eq!(tail[2].message, "m4");
    }

    #[test]
    fn tail_filters_by_level_and_paginates() {
        let log = EventLog::new(16);
        log.debug("t", "d", &[]);
        log.info("t", "i", &[]);
        log.warn("t", "w", &[]);
        log.error("t", "e", &[]);
        let warn_up = log.tail(LogLevel::Warn, 10);
        assert_eq!(warn_up.len(), 2);
        assert_eq!(warn_up[0].message, "w");
        let last_one = log.tail(LogLevel::Debug, 1);
        assert_eq!(last_one.len(), 1);
        assert_eq!(last_one[0].message, "e");
    }

    #[test]
    fn ndjson_renders_fields_and_escapes() {
        let log = EventLog::new(4);
        log.info(
            "serve.job",
            "submitted \"x\"",
            &[("job", "1"), ("client", "a\nb")],
        );
        let text = log.ndjson(LogLevel::Debug, 10);
        let line = text.trim_end();
        assert!(line.starts_with("{\"seq\":1,\"ts_us\":"));
        assert!(line.contains("\"level\":\"info\""));
        assert!(line.contains("\"target\":\"serve.job\""));
        assert!(line.contains("\"msg\":\"submitted \\\"x\\\"\""));
        assert!(line.contains("\"job\":\"1\""));
        assert!(line.contains("\"client\":\"a\\nb\""));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn sink_appends_ndjson_lines() {
        let dir = std::env::temp_dir().join(format!("silo-obs-log-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.ndjson");
        let _ = std::fs::remove_file(&path);
        {
            let log = EventLog::with_sink(2, &path).unwrap();
            for i in 0..4 {
                log.info("t", &format!("m{i}"), &[]);
            }
            assert_eq!(log.len(), 2, "ring stays bounded");
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 4, "sink keeps everything");
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
