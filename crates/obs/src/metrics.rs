//! An ordered metrics registry rendered in the Prometheus text
//! exposition format.
//!
//! The registry hands out cheap clonable handles ([`Counter`],
//! [`Gauge`], [`Histo`]) backed by atomics (counters, gauges) or a
//! mutex-guarded log2 histogram. Registration is idempotent: asking for
//! the same `(name, labels)` pair returns a handle to the same series,
//! which is how per-endpoint/per-status label values are minted on the
//! request path. Families render in first-registration order and series
//! in first-appearance order, so `/metrics` output is deterministic for
//! a deterministic request sequence.
//!
//! Histograms reuse [`silo_types::stats::Histogram::log2`]: bucket `b`
//! holds integer values in `[2^(b-1), 2^b)`, so the cumulative
//! Prometheus bucket bound `le = 2^b - 1` is *exact* — no sample is
//! ever misattributed across a bucket boundary.

use silo_types::stats::Histogram as LogHistogram;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter handle.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can go up and down.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements by one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed histogram handle for integer samples (counts,
/// microseconds, bytes).
#[derive(Clone, Debug)]
pub struct Histo(Arc<Mutex<LogHistogram>>);

impl Histo {
    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if the histogram mutex is poisoned.
    pub fn observe(&self, v: u64) {
        self.0.lock().expect("histogram lock").record(v);
    }

    /// Number of recorded samples.
    ///
    /// # Panics
    ///
    /// Panics if the histogram mutex is poisoned.
    pub fn count(&self) -> u64 {
        self.0.lock().expect("histogram lock").count()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    const fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
enum Value {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<Mutex<LogHistogram>>),
}

#[derive(Debug)]
struct Series {
    labels: Vec<(String, String)>,
    value: Value,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

/// The registry: an ordered collection of metric families.
///
/// Cloning shares the underlying storage, so one registry can be
/// threaded through every daemon layer.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    families: Arc<Mutex<Vec<Family>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or retrieves) an unlabelled counter.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name or on a kind clash with an
    /// existing family of the same name.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Declares a counter family without creating any series, pinning
    /// its position in the exposition order before the first labelled
    /// series is minted (e.g. a per-endpoint request counter that only
    /// materializes on the first request). Idempotent.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name or on a kind clash.
    pub fn declare_counter(&self, name: &str, help: &str) {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut fams = self.families.lock().expect("registry lock");
        match fams.iter().find(|f| f.name == name) {
            Some(f) => assert!(
                f.kind == Kind::Counter,
                "metric {name} re-registered as counter (was {})",
                f.kind.as_str()
            ),
            None => fams.push(Family {
                name: name.to_string(),
                help: help.to_string(),
                kind: Kind::Counter,
                series: Vec::new(),
            }),
        }
    }

    /// Registers (or retrieves) a counter series with the given label
    /// pairs. The same `(name, labels)` always returns a handle to the
    /// same series.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric/label name or on a kind clash.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let v = self.series(name, help, Kind::Counter, labels, || {
            Value::Counter(Arc::new(AtomicU64::new(0)))
        });
        match v {
            Value::Counter(a) => Counter(a),
            _ => unreachable!("kind checked by series()"),
        }
    }

    /// Registers (or retrieves) an unlabelled gauge.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name or on a kind clash.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or retrieves) a gauge series with the given label
    /// pairs.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric/label name or on a kind clash.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let v = self.series(name, help, Kind::Gauge, labels, || {
            Value::Gauge(Arc::new(AtomicI64::new(0)))
        });
        match v {
            Value::Gauge(a) => Gauge(a),
            _ => unreachable!("kind checked by series()"),
        }
    }

    /// Registers (or retrieves) an unlabelled log2 histogram.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name or on a kind clash.
    pub fn histogram(&self, name: &str, help: &str) -> Histo {
        let v = self.series(name, help, Kind::Histogram, &[], || {
            Value::Histogram(Arc::new(Mutex::new(LogHistogram::log2())))
        });
        match v {
            Value::Histogram(h) => Histo(h),
            _ => unreachable!("kind checked by series()"),
        }
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Value,
    ) -> Value {
        assert!(valid_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_name(k), "invalid label name {k:?}");
        }
        let mut fams = self.families.lock().expect("registry lock");
        let fam = match fams.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric {name} re-registered as {} (was {})",
                    kind.as_str(),
                    f.kind.as_str()
                );
                f
            }
            None => {
                fams.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                fams.last_mut().expect("just pushed")
            }
        };
        if let Some(s) = fam.series.iter().find(|s| {
            s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels.iter())
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        }) {
            return s.value.clone();
        }
        let value = make();
        fam.series.push(Series {
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
            value: value.clone(),
        });
        value
    }

    /// Renders every family in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers followed by one
    /// sample line per series, histograms expanded into cumulative
    /// `_bucket{le=...}` lines plus `_sum` / `_count`.
    ///
    /// # Panics
    ///
    /// Panics if a registry or histogram mutex is poisoned.
    pub fn render(&self) -> String {
        let fams = self.families.lock().expect("registry lock");
        let mut out = String::new();
        for fam in fams.iter() {
            let _ = writeln!(out, "# HELP {} {}", fam.name, escape_help(&fam.help));
            let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.as_str());
            for s in &fam.series {
                match &s.value {
                    Value::Counter(a) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            fam.name,
                            label_block(&s.labels, None),
                            a.load(Ordering::Relaxed)
                        );
                    }
                    Value::Gauge(a) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            fam.name,
                            label_block(&s.labels, None),
                            a.load(Ordering::Relaxed)
                        );
                    }
                    Value::Histogram(h) => {
                        let h = h.lock().expect("histogram lock");
                        let counts = h.bucket_counts();
                        let last = counts
                            .iter()
                            .rposition(|&c| c > 0)
                            .map_or(0, |i| i.min(counts.len() - 2));
                        let mut cum = 0u64;
                        for (i, &c) in counts.iter().enumerate().take(last + 1) {
                            cum += c;
                            let le = h.bucket_upper_bound(i).to_string();
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {}",
                                fam.name,
                                label_block(&s.labels, Some(&le)),
                                cum
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            fam.name,
                            label_block(&s.labels, Some("+Inf")),
                            h.count()
                        );
                        let _ = writeln!(
                            out,
                            "{}_sum{} {}",
                            fam.name,
                            label_block(&s.labels, None),
                            h.sum()
                        );
                        let _ = writeln!(
                            out,
                            "{}_count{} {}",
                            fam.name,
                            label_block(&s.labels, None),
                            h.count()
                        );
                    }
                }
            }
        }
        out
    }
}

/// `[a-zA-Z_:][a-zA-Z0-9_:]*` — the Prometheus metric/label name rule.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders `{k="v",...}`, optionally appending a histogram `le` label;
/// empty when there are no labels at all.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_render_in_registration_order() {
        let r = Registry::new();
        let c = r.counter("silo_events_total", "Total events.");
        let g = r.gauge("silo_depth", "Current depth.");
        c.add(3);
        g.set(-2);
        let text = r.render();
        let c_pos = text.find("silo_events_total 3").expect("counter line");
        let g_pos = text.find("silo_depth -2").expect("gauge line");
        assert!(c_pos < g_pos, "families must render in registration order");
        assert!(text.contains("# TYPE silo_events_total counter"));
        assert!(text.contains("# TYPE silo_depth gauge"));
        assert!(text.contains("# HELP silo_depth Current depth."));
    }

    #[test]
    fn labelled_series_are_idempotent_and_ordered() {
        let r = Registry::new();
        let a = r.counter_with("silo_req_total", "Requests.", &[("ep", "/jobs")]);
        let b = r.counter_with("silo_req_total", "Requests.", &[("ep", "/status")]);
        let a2 = r.counter_with("silo_req_total", "Requests.", &[("ep", "/jobs")]);
        a.inc();
        a2.inc();
        b.inc();
        let text = r.render();
        assert!(text.contains("silo_req_total{ep=\"/jobs\"} 2"), "{text}");
        assert!(text.contains("silo_req_total{ep=\"/status\"} 1"));
        // One HELP/TYPE header for the whole family.
        assert_eq!(text.matches("# TYPE silo_req_total").count(), 1);
        let jobs = text.find("ep=\"/jobs\"").expect("jobs series");
        let status = text.find("ep=\"/status\"").expect("status series");
        assert!(
            jobs < status,
            "series must render in first-appearance order"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_exact() {
        let r = Registry::new();
        let h = r.histogram("silo_lat_us", "Latency.");
        for v in [0, 1, 2, 3, 900] {
            h.observe(v);
        }
        let text = r.render();
        // Bucket 0 holds value 0 (le="0"); bucket 1 holds value 1
        // (le="1"); bucket 2 holds values 2..=3 (le="3").
        assert!(text.contains("silo_lat_us_bucket{le=\"0\"} 1"), "{text}");
        assert!(text.contains("silo_lat_us_bucket{le=\"1\"} 2"));
        assert!(text.contains("silo_lat_us_bucket{le=\"3\"} 4"));
        assert!(text.contains("silo_lat_us_bucket{le=\"1023\"} 5"));
        assert!(text.contains("silo_lat_us_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("silo_lat_us_sum 906"));
        assert!(text.contains("silo_lat_us_count 5"));
    }

    #[test]
    fn declared_family_pins_exposition_order() {
        let r = Registry::new();
        r.declare_counter("silo_first_total", "Declared early.");
        let g = r.gauge("silo_second", "Registered after.");
        g.set(1);
        let text = r.render();
        // The declared family renders (headers only, no series) ahead
        // of later registrations, even before any series exists.
        let first = text
            .find("# TYPE silo_first_total counter")
            .expect("family");
        let second = text.find("# TYPE silo_second gauge").expect("gauge");
        assert!(first < second);
        // Declaring again or minting a series keeps the position.
        r.declare_counter("silo_first_total", "Declared early.");
        r.counter_with("silo_first_total", "Declared early.", &[("k", "v")])
            .inc();
        let text = r.render();
        assert!(text.contains("silo_first_total{k=\"v\"} 1"));
        assert_eq!(text.matches("# TYPE silo_first_total").count(), 1);
    }

    #[test]
    fn handles_are_shared_across_registry_clones() {
        let r = Registry::new();
        let c = r.counter("silo_shared_total", "Shared.");
        let r2 = r.clone();
        r2.counter("silo_shared_total", "Shared.").add(5);
        assert_eq!(c.get(), 5);
        assert!(r.render().contains("silo_shared_total 5"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("silo_esc_total", "Esc.", &[("p", "a\"b\\c\nd")])
            .inc();
        assert!(r
            .render()
            .contains("silo_esc_total{p=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn rejects_invalid_names() {
        Registry::new().counter("9bad", "nope");
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn rejects_kind_clash() {
        let r = Registry::new();
        r.counter("silo_thing", "a");
        r.gauge("silo_thing", "b");
    }
}
