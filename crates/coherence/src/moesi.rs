//! SILO's all-private hierarchy: directory-based MOESI over per-core
//! DRAM-cache vaults (Sec. V-B).
//!
//! Every core owns an inclusive, direct-mapped DRAM cache vault stacked
//! above it. Coherence state lives with the vault tags; sharers are found
//! through a duplicate-tag directory whose metadata is distributed across
//! the vaults at address-interleaved *home* nodes. The O state lets a
//! dirty block be supplied core-to-core without a main-memory writeback —
//! the common case for the read-mostly sharing of scale-out workloads.
//!
//! The engine is functional + structural: it owns the SRAM nodes, the
//! vault arrays and the directory, performs all state transitions, and
//! emits an [`AccessResult`] whose [`Step`]s the timing simulator prices
//! with mesh hops and bank reservations.

use crate::directory::DuplicateTagDirectory;
use crate::node::{Node, NodeSpec, SramHit};
use crate::state::State;
use crate::stats::CoherenceStats;
use crate::step::{AccessResult, Background, ServedBy, Step};
use crate::{EngineProbe, EP_DIR, EP_FILL, EP_L1, EP_WB};
use silo_cache::{ReplacementPolicy, SetAssocCache};
use silo_obs::{Lap, NoProbe};
use silo_types::{ByteSize, LineAddr, MemRef};

/// Configuration of the SILO private hierarchy.
#[derive(Clone, Copy, Debug)]
pub struct PrivateMoesiConfig {
    /// Per-core SRAM geometry.
    pub node_spec: NodeSpec,
    /// Capacity of each private vault (256 MiB for the latency-optimized
    /// design point of Table I).
    pub vault_capacity: ByteSize,
    /// Capacity-scaling knob shared with the workload generators.
    pub scale: u64,
    /// Model the ideal vault miss predictor of Sec. V-C: a known local
    /// miss skips the local TAD probe entirely.
    pub ideal_miss_predict: bool,
    /// Keep the O state: a dirty owner supplies readers core-to-core
    /// without a main-memory writeback (the paper's protocol). When
    /// disabled, a dirty owner forwarding to a reader writes the line
    /// back to memory and degrades to S — MESI-over-vaults, the
    /// `silo-no-forward` sensitivity variant.
    pub o_state_forwarding: bool,
}

impl Default for PrivateMoesiConfig {
    fn default() -> Self {
        PrivateMoesiConfig {
            node_spec: NodeSpec::two_level(),
            vault_capacity: ByteSize::from_mib(256),
            scale: 64,
            ideal_miss_predict: true,
            o_state_forwarding: true,
        }
    }
}

/// The SILO protocol engine: N private nodes, N private vaults, one
/// functional duplicate-tag MOESI directory homed by address interleave.
#[derive(Clone, Debug)]
pub struct PrivateMoesi {
    nodes: Vec<Node>,
    /// Direct-mapped vault per core; payload is the MOESI state.
    vaults: Vec<SetAssocCache<State>>,
    dir: DuplicateTagDirectory,
    ideal_miss_predict: bool,
    o_state_forwarding: bool,
    stats: CoherenceStats,
}

impl PrivateMoesi {
    /// Builds the SILO hierarchy for `n_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero or exceeds 64.
    pub fn new(n_cores: usize, cfg: &PrivateMoesiConfig) -> Self {
        let vault_cap = cfg.vault_capacity.scaled_down(cfg.scale);
        PrivateMoesi {
            nodes: (0..n_cores)
                .map(|_| Node::new(&cfg.node_spec, cfg.scale))
                .collect(),
            vaults: (0..n_cores)
                .map(|_| SetAssocCache::with_capacity_rounded(vault_cap, 1, ReplacementPolicy::Lru))
                .collect(),
            dir: DuplicateTagDirectory::new(n_cores),
            ideal_miss_predict: cfg.ideal_miss_predict,
            o_state_forwarding: cfg.o_state_forwarding,
            stats: CoherenceStats::default(),
        }
    }

    /// Coherence event counters since construction (or the last
    /// [`PrivateMoesi::reset_stats`]).
    pub fn stats(&self) -> CoherenceStats {
        self.stats
    }

    /// Zeroes the event counters without touching any protocol state
    /// (the telemetry warmup boundary).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Number of cores/nodes.
    pub fn n_cores(&self) -> usize {
        self.nodes.len()
    }

    /// Directory home node of a line (address-interleaved, scrambled).
    pub fn home_of(&self, line: LineAddr) -> usize {
        (line.scramble() % self.nodes.len() as u64) as usize
    }

    /// Host-cache prefetch hint for an upcoming access by `core` to
    /// `line`: warms the local vault slot, the hottest and largest array
    /// on the access path. Changes no simulated state.
    #[inline]
    pub fn prefetch_hint(&self, core: usize, line: LineAddr) {
        self.vaults[core].prefetch(line);
    }

    /// The functional directory (for invariant checks and tests).
    pub fn directory(&self) -> &DuplicateTagDirectory {
        &self.dir
    }

    /// Whether dirty reads forward through the O state (the paper's
    /// protocol) instead of writing back to memory (`silo-no-forward`).
    pub fn o_state_forwarding(&self) -> bool {
        self.o_state_forwarding
    }

    /// Vault hit/miss counters of one core.
    pub fn vault_stats(&self, core: usize) -> (u64, u64) {
        (self.vaults[core].hits(), self.vaults[core].misses())
    }

    /// True when `core`'s SRAM hierarchy (L1-I, L1-D, or L2) holds the
    /// line. Read-only introspection for the model checker.
    pub fn sram_contains(&self, core: usize, line: LineAddr) -> bool {
        self.nodes[core].contains(line)
    }

    /// The coherence state of `line` in `core`'s vault (I when absent).
    /// Read-only: no hit/miss accounting.
    pub fn vault_state(&self, core: usize, line: LineAddr) -> State {
        self.vaults[core].peek(line).copied().unwrap_or(State::I)
    }

    /// Total lines resident across all vaults. Under vault/directory
    /// agreement this equals [`DuplicateTagDirectory::total_holders`] —
    /// the cheap cross-layer occupancy invariant the `--check` oracle
    /// replays every N references.
    pub fn vault_occupancy(&self) -> u64 {
        self.vaults.iter().map(|v| v.len() as u64).sum()
    }

    /// Executes one memory reference from `core` and returns the protocol
    /// steps for the timing simulator.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, mr: MemRef) -> AccessResult {
        let mut r = AccessResult::default();
        self.access_into(core, mr, &mut r);
        r
    }

    /// [`PrivateMoesi::access`] writing into a caller-owned result, so a
    /// hot loop can reuse the step buffers instead of allocating two
    /// vectors per access.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access_into(&mut self, core: usize, mr: MemRef, r: &mut AccessResult) {
        self.access_impl(core, mr, r, &mut NoProbe);
    }

    /// [`PrivateMoesi::access_into`] with sub-phase wall-clock
    /// attribution: every segment of the access is lapped into one of
    /// the [`crate::ENGINE_SUBPHASES`] buckets of `probe`, tiling the
    /// call exactly. Simulated results are bit-identical to the
    /// unprobed path (one shared body, generic over the probe).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access_into_probed(
        &mut self,
        core: usize,
        mr: MemRef,
        r: &mut AccessResult,
        probe: &mut EngineProbe,
    ) {
        self.access_impl(core, mr, r, probe);
    }

    /// The one access body both entry points monomorphize: [`NoProbe`]
    /// compiles every lap out, a real [`EngineProbe`] attributes each
    /// segment as it closes.
    fn access_impl<P: Lap>(
        &mut self,
        core: usize,
        mr: MemRef,
        r: &mut AccessResult,
        probe: &mut P,
    ) {
        assert!(core < self.nodes.len(), "core {core} out of range");
        probe.begin();
        r.clear();
        r.line = mr.line;
        r.is_write = mr.kind.is_write();
        match self.nodes[core].probe(mr.line, mr.kind) {
            SramHit::L1 => {
                r.served = Some(ServedBy::L1);
                probe.lap(EP_L1);
                if mr.kind.is_write() {
                    self.write_permission(core, mr.line, r);
                    probe.lap(EP_DIR);
                }
            }
            SramHit::L2 => {
                r.served = Some(ServedBy::L2);
                probe.lap(EP_L1);
                if mr.kind.is_write() {
                    self.write_permission(core, mr.line, r);
                    probe.lap(EP_DIR);
                }
            }
            SramHit::Miss => {
                probe.lap(EP_L1);
                self.sram_miss(core, mr, r, probe);
            }
        }
    }

    /// Ensures `core` may write a line it already caches (SRAM or vault
    /// hit): silent E->M, or an upgrade transaction for S/O copies.
    fn write_permission(&mut self, core: usize, line: LineAddr, r: &mut AccessResult) {
        let state = *self.vaults[core]
            .peek(line)
            .expect("SRAM-resident line must be vault-resident (inclusion)");
        match state {
            State::M => {}
            State::E => {
                // Silent upgrade: no transaction; keep the functional
                // directory in sync so eviction writebacks are exact.
                *self.vaults[core].peek_mut(line).expect("just peeked") = State::M;
                self.dir.set_state(line, core, State::M);
            }
            State::S | State::O => self.upgrade(core, line, r),
            State::I => unreachable!("valid vault state peeked"),
        }
    }

    /// Write-upgrade transaction: invalidate every other holder through
    /// the home directory, then take M.
    fn upgrade(&mut self, core: usize, line: LineAddr, r: &mut AccessResult) {
        r.llc_access = true;
        self.stats.upgrades.inc();
        let home = self.home_of(line);
        r.steps.push(Step::Net {
            from: core,
            to: home,
        });
        r.steps.push(Step::VaultAccess { node: home });
        let mask = self.dir.lookup_view(line).mask & !(1u64 << core);
        if mask != 0 {
            r.steps.push(Step::Invalidations { home, mask });
            self.invalidate_holders(line, mask);
        }
        r.steps.push(Step::Net {
            from: home,
            to: core,
        });
        let touched = mask.count_ones() + 1;
        self.dir.set_state(line, core, State::M);
        *self.vaults[core]
            .peek_mut(line)
            .expect("upgrader holds line") = State::M;
        r.background.push(Background::DirUpdate {
            home,
            ways: touched,
        });
    }

    /// Handles an access that missed every SRAM level.
    fn sram_miss<P: Lap>(&mut self, core: usize, mr: MemRef, r: &mut AccessResult, probe: &mut P) {
        r.llc_access = true;
        let line = mr.line;
        let is_write = mr.kind.is_write();

        // Local vault TAD probe.
        let vstate = self.vaults[core].get(line).copied().unwrap_or(State::I);
        probe.lap(EP_L1);
        if vstate.is_valid() {
            r.steps.push(Step::VaultAccess { node: core });
            r.served = Some(ServedBy::LocalVault);
            if is_write {
                self.write_permission(core, line, r);
            }
            probe.lap(EP_DIR);
            self.fill_sram(core, line, mr);
            probe.lap(EP_FILL);
            return;
        }
        // Known local miss: with the ideal miss predictor the TAD probe is
        // skipped; otherwise the failed DRAM access is on the critical path.
        if !self.ideal_miss_predict {
            r.steps.push(Step::VaultAccess { node: core });
        }

        // Go to the home directory.
        let home = self.home_of(line);
        r.steps.push(Step::Net {
            from: core,
            to: home,
        });
        r.steps.push(Step::VaultAccess { node: home });
        let view = self.dir.lookup_view(line);
        let mask = view.mask & !(1u64 << core);
        let mut dir_ways = 1u32;

        let new_state = if let Some((o, ostate)) = view.owner {
            debug_assert_ne!(o, core, "requester missed its vault, so cannot own");
            // Forward from the owner's vault.
            r.steps.push(Step::Net { from: home, to: o });
            r.steps.push(Step::VaultAccess { node: o });
            r.steps.push(Step::Net { from: o, to: core });
            r.served = Some(ServedBy::RemoteVault);
            if is_write {
                // Invalidate the owner (rides the forward) and, in
                // parallel, any S sharers.
                let sharer_mask = mask & !(1u64 << o);
                if sharer_mask != 0 {
                    r.steps.push(Step::Invalidations {
                        home,
                        mask: sharer_mask,
                    });
                }
                self.invalidate_holders(line, mask);
                dir_ways += mask.count_ones();
                State::M
            } else {
                // MOESI read: dirty owners keep supplying without a
                // writeback (M->O); clean exclusives degrade to S. With
                // O-state forwarding disabled the dirty owner instead
                // writes back to memory and degrades to S.
                let downgraded = match ostate {
                    State::M | State::O if self.o_state_forwarding => {
                        self.stats.o_state_forwards.inc();
                        State::O
                    }
                    State::M | State::O => {
                        r.background.push(Background::MemoryWrite);
                        self.stats.dirty_writebacks.inc();
                        State::S
                    }
                    State::E => State::S,
                    _ => unreachable!("owner must be ownerlike"),
                };
                self.dir.set_state(line, o, downgraded);
                *self.vaults[o].peek_mut(line).expect("owner holds line") = downgraded;
                dir_ways += 1;
                State::S
            }
        } else if mask != 0 {
            // Clean sharers only: forward from the first holder's vault.
            let s = self
                .dir
                .first_holder_except(line, core)
                .expect("mask nonzero implies a holder");
            r.steps.push(Step::Net { from: home, to: s });
            r.steps.push(Step::VaultAccess { node: s });
            r.steps.push(Step::Net { from: s, to: core });
            r.served = Some(ServedBy::RemoteVault);
            if is_write {
                r.steps.push(Step::Invalidations { home, mask });
                self.invalidate_holders(line, mask);
                dir_ways += mask.count_ones();
                State::M
            } else {
                State::S
            }
        } else {
            // Uncached anywhere: main memory.
            r.steps.push(Step::Memory);
            r.steps.push(Step::Net {
                from: home,
                to: core,
            });
            r.served = Some(ServedBy::Memory);
            if is_write {
                State::M
            } else {
                State::E
            }
        };

        self.dir.set_state(line, core, new_state);
        r.background.push(Background::DirUpdate {
            home,
            ways: dir_ways,
        });
        probe.lap(EP_DIR);
        self.fill_vault(core, line, new_state, r, probe);
        self.fill_sram(core, line, mr);
        probe.lap(EP_FILL);
    }

    /// Installs `line` into `core`'s vault, handling the direct-mapped
    /// victim: back-invalidate the SRAM (inclusion), retire the directory
    /// entry at the victim's home, and write dirty data back to memory.
    fn fill_vault<P: Lap>(
        &mut self,
        core: usize,
        line: LineAddr,
        state: State,
        r: &mut AccessResult,
        probe: &mut P,
    ) {
        let victim = self.vaults[core].insert(line, state);
        probe.lap(EP_FILL);
        match victim {
            Some(victim) => {
                self.nodes[core].invalidate(victim.line);
                self.dir.set_state(victim.line, core, State::I);
                self.stats.directory_evictions.inc();
                if victim.payload.is_dirty() {
                    self.stats.dirty_writebacks.inc();
                }
                let vhome = self.home_of(victim.line);
                r.background.push(Background::DirUpdate {
                    home: vhome,
                    ways: 1,
                });
                r.background.push(Background::VaultFill {
                    node: core,
                    dirty_writeback: victim.payload.is_dirty(),
                });
                probe.lap(EP_WB);
            }
            None => {
                r.background.push(Background::VaultFill {
                    node: core,
                    dirty_writeback: false,
                });
                probe.lap(EP_FILL);
            }
        }
    }

    /// Fills the SRAM levels. Node-level victims stay vault-resident, so
    /// no directory maintenance is needed (the directory tracks vaults).
    fn fill_sram(&mut self, core: usize, line: LineAddr, mr: MemRef) {
        self.nodes[core].fill_untracked(line, mr.kind);
    }

    /// Invalidates every node in `mask`: vault, SRAM, and directory.
    /// Invalidated dirty copies need no writeback — they are superseded by
    /// the requester's M copy.
    fn invalidate_holders(&mut self, line: LineAddr, mask: u64) {
        self.stats.invalidations.add(u64::from(mask.count_ones()));
        for node in 0..self.nodes.len() {
            if mask & (1u64 << node) != 0 {
                self.vaults[node].invalidate(line);
                self.nodes[node].invalidate(line);
                self.dir.set_state(line, node, State::I);
            }
        }
    }

    /// Verifies the protocol invariants: the directory's MOESI invariants,
    /// directory/vault agreement, and vault-inclusion of the SRAM levels.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn check(&self) -> Result<(), String> {
        self.dir.check_invariants()?;
        let (occ, tracked) = (self.vault_occupancy(), self.dir.total_holders());
        if occ != tracked {
            return Err(format!(
                "occupancy: vaults hold {occ} lines, directory tracks {tracked}"
            ));
        }
        for (core, vault) in self.vaults.iter().enumerate() {
            for (line, &state) in vault.iter() {
                let dstate = self.dir.state_of(line, core);
                if dstate != state {
                    return Err(format!(
                        "{line}: vault {core} holds {state}, directory says {dstate}"
                    ));
                }
            }
        }
        for (line, states) in self.dir.iter() {
            for (core, s) in states.iter().enumerate() {
                if s.is_valid() && !self.vaults[core].contains(line) {
                    return Err(format!("{line}: directory {s} at {core} but vault misses"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_types::MemRef;

    fn small() -> PrivateMoesi {
        PrivateMoesi::new(
            4,
            &PrivateMoesiConfig {
                vault_capacity: ByteSize::from_kib(64),
                scale: 1,
                ..PrivateMoesiConfig::default()
            },
        )
    }

    #[test]
    fn cold_read_goes_to_memory_and_takes_e() {
        let mut p = small();
        let l = LineAddr::new(42);
        let r = p.access(0, MemRef::read(l));
        assert_eq!(r.served_by(), ServedBy::Memory);
        assert!(r.llc_access);
        assert!(r.steps.contains(&Step::Memory));
        assert_eq!(p.directory().state_of(l, 0), State::E);
        p.check().unwrap();
    }

    #[test]
    fn second_access_hits_l1_silently() {
        let mut p = small();
        let l = LineAddr::new(42);
        p.access(0, MemRef::read(l));
        let r = p.access(0, MemRef::read(l));
        assert_eq!(r.served_by(), ServedBy::L1);
        assert!(!r.llc_access);
        assert!(r.steps.is_empty());
    }

    #[test]
    fn remote_read_forwards_from_owner_vault() {
        let mut p = small();
        let l = LineAddr::new(42);
        p.access(0, MemRef::read(l));
        let r = p.access(1, MemRef::read(l));
        assert_eq!(r.served_by(), ServedBy::RemoteVault);
        // E owner degrades to S on a clean read.
        assert_eq!(p.directory().state_of(l, 0), State::S);
        assert_eq!(p.directory().state_of(l, 1), State::S);
        p.check().unwrap();
    }

    #[test]
    fn dirty_owner_moves_to_o_without_writeback() {
        let mut p = small();
        let l = LineAddr::new(42);
        p.access(0, MemRef::write(l));
        assert_eq!(p.directory().state_of(l, 0), State::M);
        let r = p.access(1, MemRef::read(l));
        assert_eq!(r.served_by(), ServedBy::RemoteVault);
        assert_eq!(p.directory().state_of(l, 0), State::O);
        assert_eq!(p.directory().state_of(l, 1), State::S);
        // No memory step anywhere: the O state avoided the writeback.
        assert!(!r.steps.contains(&Step::Memory));
        p.check().unwrap();
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut p = small();
        let l = LineAddr::new(42);
        p.access(0, MemRef::read(l));
        p.access(1, MemRef::read(l));
        p.access(2, MemRef::read(l));
        let r = p.access(3, MemRef::write(l));
        assert_eq!(r.served_by(), ServedBy::RemoteVault);
        assert!(r
            .steps
            .iter()
            .any(|s| matches!(s, Step::Invalidations { .. })));
        for core in 0..3 {
            assert_eq!(p.directory().state_of(l, core), State::I);
        }
        assert_eq!(p.directory().state_of(l, 3), State::M);
        p.check().unwrap();
    }

    #[test]
    fn upgrade_on_l1_write_hit_to_shared_line() {
        let mut p = small();
        let l = LineAddr::new(42);
        p.access(0, MemRef::read(l));
        p.access(1, MemRef::read(l));
        // Core 0 has the line in L1 (S in vault): write hits SRAM but
        // needs an upgrade transaction.
        let r = p.access(0, MemRef::write(l));
        assert_eq!(r.served_by(), ServedBy::L1);
        assert!(r.llc_access, "upgrade is a coherence transaction");
        assert_eq!(p.directory().state_of(l, 0), State::M);
        assert_eq!(p.directory().state_of(l, 1), State::I);
        p.check().unwrap();
    }

    #[test]
    fn silent_e_to_m_upgrade_is_free() {
        let mut p = small();
        let l = LineAddr::new(42);
        p.access(0, MemRef::read(l));
        let r = p.access(0, MemRef::write(l));
        assert!(!r.llc_access);
        assert!(r.steps.is_empty());
        assert_eq!(p.directory().state_of(l, 0), State::M);
        p.check().unwrap();
    }

    #[test]
    fn vault_conflict_evicts_and_back_invalidates() {
        let mut p = small();
        // 64 KiB direct-mapped vault = 1024 lines; lines l and l+1024
        // conflict.
        let a = LineAddr::new(7);
        let b = LineAddr::new(7 + 1024);
        p.access(0, MemRef::write(a));
        p.access(0, MemRef::read(b));
        assert_eq!(p.directory().state_of(a, 0), State::I, "victim retired");
        assert_eq!(p.directory().state_of(b, 0), State::E);
        // A re-access misses SRAM and vault: memory again.
        let r = p.access(0, MemRef::read(a));
        assert_eq!(r.served_by(), ServedBy::Memory);
        p.check().unwrap();
    }

    #[test]
    fn local_vault_hit_after_sram_eviction() {
        // 128 KiB direct-mapped vault (2048 sets) so the L1-thrashing
        // lines below never alias line 3's vault set.
        let mut p = PrivateMoesi::new(
            4,
            &PrivateMoesiConfig {
                vault_capacity: ByteSize::from_kib(128),
                scale: 1,
                ..PrivateMoesiConfig::default()
            },
        );
        let l = LineAddr::new(3);
        p.access(0, MemRef::read(l));
        // Thrash L1-D (64 KiB, 8-way at scale 1 = 128 sets; same-set
        // lines are 128 apart) to evict l from SRAM only.
        for i in 1..=8 {
            p.access(0, MemRef::read(LineAddr::new(3 + i * 128)));
        }
        let r = p.access(0, MemRef::read(l));
        assert_eq!(r.served_by(), ServedBy::LocalVault);
        assert_eq!(r.steps, vec![Step::VaultAccess { node: 0 }]);
        p.check().unwrap();
    }

    #[test]
    fn disabled_o_forwarding_writes_back_and_degrades_to_s() {
        let mut p = PrivateMoesi::new(
            4,
            &PrivateMoesiConfig {
                vault_capacity: ByteSize::from_kib(64),
                scale: 1,
                o_state_forwarding: false,
                ..PrivateMoesiConfig::default()
            },
        );
        let l = LineAddr::new(42);
        p.access(0, MemRef::write(l));
        assert_eq!(p.directory().state_of(l, 0), State::M);
        let r = p.access(1, MemRef::read(l));
        // Data still forwards from the owner's vault, but the dirty line
        // goes back to memory and the owner degrades to S, never O.
        assert_eq!(r.served_by(), ServedBy::RemoteVault);
        assert!(r.background.contains(&Background::MemoryWrite));
        assert_eq!(p.directory().state_of(l, 0), State::S);
        assert_eq!(p.directory().state_of(l, 1), State::S);
        p.check().unwrap();
    }

    #[test]
    fn non_ideal_predictor_charges_failed_probe() {
        let mut p = PrivateMoesi::new(
            2,
            &PrivateMoesiConfig {
                vault_capacity: ByteSize::from_kib(64),
                scale: 1,
                ideal_miss_predict: false,
                ..PrivateMoesiConfig::default()
            },
        );
        let r = p.access(0, MemRef::read(LineAddr::new(1)));
        assert_eq!(r.steps.first(), Some(&Step::VaultAccess { node: 0 }));
    }

    #[test]
    fn stats_count_forwards_invalidations_and_evictions() {
        let mut p = small();
        let l = LineAddr::new(42);
        p.access(0, MemRef::write(l));
        p.access(1, MemRef::read(l)); // dirty forward, M -> O
        assert_eq!(p.stats().o_state_forwards.get(), 1);
        p.access(2, MemRef::write(l)); // invalidates owner 0 and sharer 1
        assert_eq!(p.stats().invalidations.get(), 2);
        // Vault conflict: 64 KiB direct-mapped = 1024 lines.
        p.access(2, MemRef::read(LineAddr::new(42 + 1024)));
        assert_eq!(p.stats().directory_evictions.get(), 1);
        assert!(p.stats().dirty_writebacks.get() >= 1, "dirty victim");
        p.reset_stats();
        assert_eq!(p.stats(), crate::CoherenceStats::default());
        p.check().unwrap();
    }

    #[test]
    fn probed_access_matches_unprobed_and_tiles_the_call() {
        let mut plain = small();
        let mut probed = small();
        let mut probe = crate::EngineProbe::new();
        let mut rng = 0xdead_beef_u64;
        let mut r = AccessResult::default();
        for i in 0..2000 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let core = (rng >> 33) as usize % 4;
            let line = LineAddr::new((rng >> 17) % 4096);
            let mr = if i % 3 == 0 {
                MemRef::write(line)
            } else {
                MemRef::read(line)
            };
            probed.access_into_probed(core, mr, &mut r, &mut probe);
            assert_eq!(plain.access(core, mr), r, "probe must not change results");
        }
        probed.check().unwrap();
        assert_eq!(probe.calls(), 2000);
        // Every access starts with an SRAM-probe lap; misses lap again
        // for the vault probe, so lookups meet or exceed the call count.
        assert!(probe.samples()[crate::EP_L1] >= probe.calls());
        assert!(probe.samples()[crate::EP_DIR] > 0);
        assert!(probe.samples()[crate::EP_FILL] > 0);
        assert!(probe.samples()[crate::EP_WB] > 0, "vault conflicts occur");
    }

    #[test]
    fn served_classification_is_always_set() {
        let mut p = small();
        let mut rng = 0x1234_5678_u64;
        for i in 0..2000 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let core = (rng >> 33) as usize % 4;
            let line = LineAddr::new((rng >> 17) % 4096);
            let mr = if i % 3 == 0 {
                MemRef::write(line)
            } else {
                MemRef::read(line)
            };
            let r = p.access(core, mr);
            let _ = r.served_by();
        }
        p.check().unwrap();
    }
}
