//! Duplicate-tag directory (Sec. V-B, Fig. 9).
//!
//! The directory is logically an N-way-associative tag store where N is
//! the core count: the way position of an entry encodes which core's
//! vault caches the block, so no sharing vector is needed. Finding the
//! sharers of a block reads all N ways; most updates touch one entry, but
//! a full-set transition (e.g. a block shared by every core moving to
//! exclusive) touches N.
//!
//! Physically the directory is distributed across the vaults in an
//! address-interleaved fashion; this structure is the *functional*
//! content, and the engine emits `DirLookup`/`DirUpdate` steps against the
//! home node so the simulator charges the DRAM accesses.

use crate::state::State;
use silo_types::hash::{fx_map_with_capacity, FxHashMap};
use silo_types::LineAddr;

/// Buckets reserved up front: enough to track the hot working set of a
/// scaled run without rehashing, small enough to be free at rest.
const PRESIZE_LINES: usize = 1 << 12;

/// Compact result of one directory lookup: the information the protocol
/// engines act on, without materializing the per-node state vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirView {
    /// Bitmask of nodes holding the line in any valid state.
    pub mask: u64,
    /// The node holding the line in an owner-like state (M, O, or E),
    /// with that state; at most one exists (protocol invariant).
    pub owner: Option<(usize, State)>,
}

/// One tracked line: the per-node states packed 4 bits each (the paper
/// stores 3 bits per way, Fig. 9 — we round up to a nibble for cheap
/// shifts), plus the holder mask and owner-like node cached so the hot
/// [`DuplicateTagDirectory::lookup_view`] path is O(1) instead of a
/// scan over a heap-allocated state vector.
///
/// `mask` is maintained unconditionally in `set_state` and therefore
/// always equals the valid bits of `states`. `owner` is maintained under
/// the single-writer invariant (at most one owner-like node); the
/// inspection APIs that must work even on deliberately broken state
/// ([`DuplicateTagDirectory::owner`],
/// [`DuplicateTagDirectory::check_invariants`]) scan `states` instead.
#[derive(Clone, Copy, Debug)]
struct LargeEntry {
    /// 4 bits per node, node `n` at bits `4*(n%16)` of word `n/16`;
    /// zeroed storage decodes to all-I.
    states: [u64; 4],
    /// Bitmask of nodes whose packed state is valid.
    mask: u64,
    /// The owner-like node and its state, under the protocol invariant.
    owner: Option<(u8, State)>,
}

/// `Small::owner` encoding: no owner.
const NO_OWNER: u16 = u16::MAX;

#[derive(Clone, Debug)]
enum Entry {
    /// Up to 16 nodes (the paper's machine is 16-core): the whole state
    /// vector in one word, 16 bytes per entry. Directory entries are
    /// the largest metadata population of a run, so halving them keeps
    /// far more of the map in host cache.
    Small {
        /// 4 bits per node, node `n` at bits `4n`.
        states: u64,
        /// Bitmask of nodes whose packed state is valid.
        mask: u16,
        /// `state.to_bits() << 8 | node`, or [`NO_OWNER`].
        owner: u16,
    },
    /// 17–64 nodes, boxed to keep the common case small.
    Large(Box<LargeEntry>),
}

impl Entry {
    fn empty(n_nodes: usize) -> Entry {
        if n_nodes <= 16 {
            Entry::Small {
                states: 0,
                mask: 0,
                owner: NO_OWNER,
            }
        } else {
            Entry::Large(Box::new(LargeEntry {
                states: [0; 4],
                mask: 0,
                owner: None,
            }))
        }
    }

    #[inline]
    fn get(&self, node: usize) -> State {
        match self {
            Entry::Small { states, .. } => State::from_bits(((states >> (node * 4)) & 0xF) as u8),
            Entry::Large(e) => {
                State::from_bits(((e.states[node >> 4] >> ((node & 15) * 4)) & 0xF) as u8)
            }
        }
    }

    #[inline]
    fn set(&mut self, node: usize, s: State) {
        match self {
            Entry::Small { states, .. } => {
                let shift = node * 4;
                *states = (*states & !(0xF << shift)) | (u64::from(s.to_bits()) << shift);
            }
            Entry::Large(e) => {
                let shift = (node & 15) * 4;
                let word = &mut e.states[node >> 4];
                *word = (*word & !(0xF << shift)) | (u64::from(s.to_bits()) << shift);
            }
        }
    }

    #[inline]
    fn mask(&self) -> u64 {
        match self {
            Entry::Small { mask, .. } => u64::from(*mask),
            Entry::Large(e) => e.mask,
        }
    }

    #[inline]
    fn set_mask_bit(&mut self, node: usize, on: bool) {
        match self {
            Entry::Small { mask, .. } => {
                if on {
                    *mask |= 1 << node;
                } else {
                    *mask &= !(1 << node);
                }
            }
            Entry::Large(e) => {
                if on {
                    e.mask |= 1 << node;
                } else {
                    e.mask &= !(1 << node);
                }
            }
        }
    }

    #[inline]
    fn owner(&self) -> Option<(usize, State)> {
        match self {
            Entry::Small { owner, .. } => (*owner != NO_OWNER).then(|| {
                (
                    (owner & 0xFF) as usize,
                    State::from_bits((owner >> 8) as u8),
                )
            }),
            Entry::Large(e) => e.owner.map(|(n, s)| (n as usize, s)),
        }
    }

    #[inline]
    fn set_owner(&mut self, new: Option<(u8, State)>) {
        match self {
            Entry::Small { owner, .. } => {
                *owner = new.map_or(NO_OWNER, |(n, s)| {
                    u16::from(s.to_bits()) << 8 | u16::from(n)
                });
            }
            Entry::Large(e) => e.owner = new,
        }
    }

    fn unpack(&self, n_nodes: usize) -> Vec<State> {
        (0..n_nodes).map(|n| self.get(n)).collect()
    }
}

/// The functional duplicate-tag directory: per line, one coherence state
/// per node (way position = node id).
#[derive(Clone, Debug)]
pub struct DuplicateTagDirectory {
    n_nodes: usize,
    entries: FxHashMap<LineAddr, Entry>,
    lookups: u64,
    updates: u64,
}

impl DuplicateTagDirectory {
    /// Creates a directory for `n_nodes` vaults.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero or exceeds 64 (sharer masks are u64).
    pub fn new(n_nodes: usize) -> Self {
        assert!(
            (1..=64).contains(&n_nodes),
            "node count {n_nodes} outside [1, 64]"
        );
        DuplicateTagDirectory {
            n_nodes,
            entries: fx_map_with_capacity(PRESIZE_LINES),
            lookups: 0,
            updates: 0,
        }
    }

    /// Number of nodes (directory ways).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// State of `line` at `node`.
    pub fn state_of(&self, line: LineAddr, node: usize) -> State {
        self.entries.get(&line).map_or(State::I, |e| e.get(node))
    }

    /// Records a directory lookup (sharer scan) and returns the full
    /// per-node state vector (I for absent). Thin allocating wrapper
    /// around [`DuplicateTagDirectory::lookup_states`]; hot callers
    /// should use the iterator (or [`DuplicateTagDirectory::lookup_view`])
    /// instead.
    pub fn lookup(&mut self, line: LineAddr) -> Vec<State> {
        self.lookup_states(line).collect()
    }

    /// Records a directory lookup and iterates the per-node states
    /// without allocating (I for absent). Same accounting as
    /// [`DuplicateTagDirectory::lookup`].
    pub fn lookup_states(&mut self, line: LineAddr) -> impl Iterator<Item = State> + '_ {
        self.lookups += 1;
        let entry = self.entries.get(&line);
        (0..self.n_nodes).map(move |n| entry.map_or(State::I, |e| e.get(n)))
    }

    /// Records a directory lookup and returns the compact per-line view
    /// the protocol engines act on: the holder bitmask and the owner-like
    /// node with its state (at most one, by the single-writer invariant).
    /// O(1): both fields are maintained incrementally by
    /// [`DuplicateTagDirectory::set_state`].
    pub fn lookup_view(&mut self, line: LineAddr) -> DirView {
        self.lookups += 1;
        match self.entries.get(&line) {
            None => DirView {
                mask: 0,
                owner: None,
            },
            Some(e) => DirView {
                mask: e.mask(),
                owner: e.owner(),
            },
        }
    }

    /// Sets the state of `line` at `node`, creating or garbage-collecting
    /// the entry as needed. Returns the previous state.
    pub fn set_state(&mut self, line: LineAddr, node: usize, state: State) -> State {
        assert!(node < self.n_nodes, "node {node} out of range");
        self.updates += 1;
        match self.entries.get_mut(&line) {
            Some(e) => {
                let prev = e.get(node);
                e.set(node, state);
                e.set_mask_bit(node, state.is_valid());
                if state.is_ownerlike() {
                    e.set_owner(Some((node as u8, state)));
                } else if e.owner().is_some_and(|(n, _)| n == node) {
                    e.set_owner(None);
                }
                if e.mask() == 0 {
                    self.entries.remove(&line);
                }
                prev
            }
            None => {
                if state.is_valid() {
                    let mut e = Entry::empty(self.n_nodes);
                    e.set(node, state);
                    e.set_mask_bit(node, true);
                    if state.is_ownerlike() {
                        e.set_owner(Some((node as u8, state)));
                    }
                    self.entries.insert(line, e);
                }
                State::I
            }
        }
    }

    /// The node holding the line in an owner-like state (M, O, or E), if
    /// any. At most one such node exists (protocol invariant); this scans
    /// the packed states rather than trusting the cached owner, so it
    /// stays meaningful on invariant-violating state under test.
    pub fn owner(&self, line: LineAddr) -> Option<usize> {
        let e = self.entries.get(&line)?;
        (0..self.n_nodes).find(|&n| e.get(n).is_ownerlike())
    }

    /// Bitmask of nodes holding the line in any valid state.
    pub fn holders_mask(&self, line: LineAddr) -> u64 {
        self.entries.get(&line).map_or(0, Entry::mask)
    }

    /// Lowest-numbered node holding the line in any valid state,
    /// excluding `except`.
    pub fn first_holder_except(&self, line: LineAddr, except: usize) -> Option<usize> {
        let m = self.entries.get(&line)?.mask() & !(1u64 << except);
        (m != 0).then(|| m.trailing_zeros() as usize)
    }

    /// True when no node caches the line.
    pub fn is_uncached(&self, line: LineAddr) -> bool {
        !self.entries.contains_key(&line)
    }

    /// Number of tracked lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the directory tracks nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookup operations performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Update operations performed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Total valid copies tracked across all lines: the sum of holder
    /// populations. For an inclusive hierarchy (SILO's vaults) this must
    /// equal the sum of the per-node cache occupancies — the cross-layer
    /// occupancy invariant checked by the `--check` oracle.
    pub fn total_holders(&self) -> u64 {
        self.entries
            .values()
            .map(|e| u64::from(e.mask().count_ones()))
            .sum()
    }

    /// Checks the MOESI single-writer invariants for every tracked line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant:
    /// * at most one node in an owner-like state (M/O/E);
    /// * M and E never coexist with any other valid copy;
    /// * no fully-invalid entries survive (garbage collection);
    /// * the cached holder mask equals the valid bits of the packed
    ///   states;
    /// * the cached owner equals the scanned owner-like node.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (line, e) in &self.entries {
            let states = e.unpack(self.n_nodes);
            let ownerlike = states.iter().filter(|s| s.is_ownerlike()).count();
            if ownerlike > 1 {
                return Err(format!("{line}: {ownerlike} owner-like copies"));
            }
            let valid = states.iter().filter(|s| s.is_valid()).count();
            if valid == 0 {
                return Err(format!("{line}: empty entry not collected"));
            }
            let exclusive = states.iter().any(|s| matches!(s, State::M | State::E));
            if exclusive && valid > 1 {
                return Err(format!("{line}: M/E coexists with other copies"));
            }
            // The cached mask and owner are redundant encodings of the
            // packed states; a disagreement means an update path skipped
            // the incremental maintenance.
            let scanned_mask = states
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_valid())
                .fold(0u64, |m, (n, _)| m | 1u64 << n);
            if e.mask() != scanned_mask {
                return Err(format!(
                    "{line}: cached mask {:#x} != scanned {scanned_mask:#x}",
                    e.mask()
                ));
            }
            let scanned_owner = states
                .iter()
                .enumerate()
                .find(|(_, s)| s.is_ownerlike())
                .map(|(n, &s)| (n, s));
            if e.owner() != scanned_owner {
                return Err(format!(
                    "{line}: cached owner {:?} != scanned {scanned_owner:?}",
                    e.owner()
                ));
            }
        }
        Ok(())
    }

    /// Test-only: installs a raw entry whose packed states, cached mask,
    /// and cached owner are set *independently*, bypassing the
    /// maintenance in [`DuplicateTagDirectory::set_state`] — so tests can
    /// construct the corrupt configurations (stale mask, stale owner,
    /// double writer) that `check_invariants` must reject.
    #[cfg(test)]
    fn install_raw_entry(
        &mut self,
        line: LineAddr,
        states: &[State],
        cached_mask: u64,
        cached_owner: Option<(u8, State)>,
    ) {
        assert_eq!(states.len(), self.n_nodes);
        let mut e = Entry::empty(self.n_nodes);
        for (n, &s) in states.iter().enumerate() {
            e.set(n, s);
        }
        match &mut e {
            Entry::Small { mask, .. } => {
                *mask = u16::try_from(cached_mask).expect("small entry mask fits u16");
            }
            Entry::Large(le) => le.mask = cached_mask,
        }
        e.set_owner(cached_owner);
        self.entries.insert(line, e);
    }

    /// Iterates over tracked lines and their (unpacked) state vectors.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, Vec<State>)> + '_ {
        self.entries
            .iter()
            .map(|(l, e)| (*l, e.unpack(self.n_nodes)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_lines_are_invalid_everywhere() {
        let mut d = DuplicateTagDirectory::new(4);
        assert_eq!(d.state_of(LineAddr::new(1), 0), State::I);
        assert!(d.is_uncached(LineAddr::new(1)));
        assert_eq!(d.lookup(LineAddr::new(1)), vec![State::I; 4]);
        assert_eq!(d.lookups(), 1);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut d = DuplicateTagDirectory::new(4);
        assert_eq!(d.set_state(LineAddr::new(7), 2, State::M), State::I);
        assert_eq!(d.state_of(LineAddr::new(7), 2), State::M);
        assert_eq!(d.owner(LineAddr::new(7)), Some(2));
        assert_eq!(d.holders_mask(LineAddr::new(7)), 0b0100);
    }

    #[test]
    fn entry_garbage_collected_when_all_invalid() {
        let mut d = DuplicateTagDirectory::new(2);
        d.set_state(LineAddr::new(3), 0, State::S);
        assert_eq!(d.len(), 1);
        d.set_state(LineAddr::new(3), 0, State::I);
        assert_eq!(d.len(), 0);
        assert!(d.is_empty());
    }

    #[test]
    fn setting_invalid_on_absent_line_is_noop() {
        let mut d = DuplicateTagDirectory::new(2);
        d.set_state(LineAddr::new(3), 1, State::I);
        assert!(d.is_empty());
        assert_eq!(d.updates(), 1);
    }

    #[test]
    fn owner_prefers_ownerlike_over_shared() {
        let mut d = DuplicateTagDirectory::new(4);
        d.set_state(LineAddr::new(9), 0, State::S);
        d.set_state(LineAddr::new(9), 3, State::O);
        assert_eq!(d.owner(LineAddr::new(9)), Some(3));
        assert_eq!(d.holders_mask(LineAddr::new(9)), 0b1001);
    }

    #[test]
    fn first_holder_except_skips_requester() {
        let mut d = DuplicateTagDirectory::new(4);
        d.set_state(LineAddr::new(9), 1, State::S);
        d.set_state(LineAddr::new(9), 2, State::S);
        assert_eq!(d.first_holder_except(LineAddr::new(9), 1), Some(2));
        assert_eq!(d.first_holder_except(LineAddr::new(9), 0), Some(1));
        d.set_state(LineAddr::new(9), 2, State::I);
        assert_eq!(d.first_holder_except(LineAddr::new(9), 1), None);
    }

    #[test]
    fn lookup_view_matches_vector_lookup() {
        let mut d = DuplicateTagDirectory::new(4);
        assert_eq!(
            d.lookup_view(LineAddr::new(1)),
            DirView {
                mask: 0,
                owner: None
            }
        );
        d.set_state(LineAddr::new(1), 0, State::S);
        d.set_state(LineAddr::new(1), 2, State::O);
        let v = d.lookup_view(LineAddr::new(1));
        assert_eq!(v.mask, 0b0101);
        assert_eq!(v.owner, Some((2, State::O)));
        assert_eq!(d.lookups(), 2);
    }

    #[test]
    fn invariants_catch_double_owner() {
        let mut d = DuplicateTagDirectory::new(4);
        d.set_state(LineAddr::new(5), 0, State::M);
        assert!(d.check_invariants().is_ok());
        d.set_state(LineAddr::new(5), 1, State::M);
        assert!(d.check_invariants().is_err());
    }

    #[test]
    fn invariants_catch_exclusive_with_sharer() {
        let mut d = DuplicateTagDirectory::new(4);
        d.set_state(LineAddr::new(5), 0, State::E);
        d.set_state(LineAddr::new(5), 1, State::S);
        assert!(d.check_invariants().is_err());
    }

    #[test]
    fn owned_with_sharers_is_legal() {
        let mut d = DuplicateTagDirectory::new(4);
        d.set_state(LineAddr::new(5), 0, State::O);
        d.set_state(LineAddr::new(5), 1, State::S);
        d.set_state(LineAddr::new(5), 2, State::S);
        assert!(d.check_invariants().is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_bounds_checked() {
        DuplicateTagDirectory::new(2).set_state(LineAddr::new(0), 5, State::S);
    }

    #[test]
    fn iter_exposes_entries() {
        let mut d = DuplicateTagDirectory::new(2);
        d.set_state(LineAddr::new(1), 0, State::S);
        d.set_state(LineAddr::new(2), 1, State::M);
        assert_eq!(d.iter().count(), 2);
    }

    #[test]
    fn large_entries_track_nodes_beyond_sixteen() {
        // 32 nodes picks the boxed `Entry::Large` layout; exercise every
        // operation the Small path covers, at node ids above 16.
        let mut d = DuplicateTagDirectory::new(32);
        assert_eq!(d.set_state(LineAddr::new(7), 31, State::O), State::I);
        d.set_state(LineAddr::new(7), 0, State::S);
        d.set_state(LineAddr::new(7), 17, State::S);
        assert_eq!(d.state_of(LineAddr::new(7), 31), State::O);
        assert_eq!(d.state_of(LineAddr::new(7), 17), State::S);
        assert_eq!(d.state_of(LineAddr::new(7), 16), State::I);
        assert_eq!(d.owner(LineAddr::new(7)), Some(31));
        assert_eq!(d.holders_mask(LineAddr::new(7)), 1 << 31 | 1 << 17 | 1);
        let v = d.lookup_view(LineAddr::new(7));
        assert_eq!(v.mask, 1 << 31 | 1 << 17 | 1);
        assert_eq!(v.owner, Some((31, State::O)));
        assert_eq!(d.first_holder_except(LineAddr::new(7), 0), Some(17));
        assert_eq!(d.lookup(LineAddr::new(7)).len(), 32);
        assert!(d.check_invariants().is_ok());
    }

    #[test]
    fn lookup_states_matches_lookup_and_counts_once() {
        let mut d = DuplicateTagDirectory::new(4);
        d.set_state(LineAddr::new(11), 1, State::O);
        d.set_state(LineAddr::new(11), 3, State::S);
        let via_iter: Vec<State> = d.lookup_states(LineAddr::new(11)).collect();
        let via_vec = d.lookup(LineAddr::new(11));
        assert_eq!(via_iter, via_vec);
        assert_eq!(via_iter, vec![State::I, State::O, State::I, State::S]);
        assert_eq!(d.lookups(), 2, "each lookup flavour counts once");
        // Absent lines iterate all-I without creating an entry.
        assert_eq!(
            d.lookup_states(LineAddr::new(99))
                .filter(|s| s.is_valid())
                .count(),
            0
        );
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn total_holders_sums_valid_copies() {
        let mut d = DuplicateTagDirectory::new(4);
        assert_eq!(d.total_holders(), 0);
        d.set_state(LineAddr::new(1), 0, State::O);
        d.set_state(LineAddr::new(1), 2, State::S);
        d.set_state(LineAddr::new(2), 3, State::M);
        assert_eq!(d.total_holders(), 3);
        d.set_state(LineAddr::new(1), 2, State::I);
        assert_eq!(d.total_holders(), 2);
    }

    /// Small-form corruption: each distinct `check_invariants` error
    /// message fires for a deliberately inconsistent packed entry.
    #[test]
    fn small_entry_corruptions_name_each_invariant() {
        let l = LineAddr::new(77);
        // Two M holders (consistent caches, broken protocol).
        let mut d = DuplicateTagDirectory::new(4);
        d.install_raw_entry(
            l,
            &[State::M, State::M, State::I, State::I],
            0b0011,
            Some((0, State::M)),
        );
        let e = d.check_invariants().unwrap_err();
        assert!(e.contains("2 owner-like copies"), "{e}");

        // O holder whose mask bit was dropped (stale cached mask).
        let mut d = DuplicateTagDirectory::new(4);
        d.install_raw_entry(
            l,
            &[State::O, State::S, State::I, State::I],
            0b0010,
            Some((0, State::O)),
        );
        let e = d.check_invariants().unwrap_err();
        assert!(e.contains("cached mask"), "{e}");

        // Cached owner pointing at a node that no longer owns.
        let mut d = DuplicateTagDirectory::new(4);
        d.install_raw_entry(
            l,
            &[State::S, State::S, State::I, State::I],
            0b0011,
            Some((1, State::M)),
        );
        let e = d.check_invariants().unwrap_err();
        assert!(e.contains("cached owner"), "{e}");

        // All-invalid entry that survived garbage collection.
        let mut d = DuplicateTagDirectory::new(4);
        d.install_raw_entry(l, &[State::I; 4], 0, None);
        let e = d.check_invariants().unwrap_err();
        assert!(e.contains("empty entry not collected"), "{e}");

        // M coexisting with a sharer (caches consistent, SWMR broken).
        let mut d = DuplicateTagDirectory::new(4);
        d.install_raw_entry(
            l,
            &[State::M, State::S, State::I, State::I],
            0b0011,
            Some((0, State::M)),
        );
        let e = d.check_invariants().unwrap_err();
        assert!(e.contains("M/E coexists"), "{e}");
    }

    /// The same corruptions through the boxed Large form (> 16 nodes),
    /// at node ids beyond the Small range.
    #[test]
    fn large_entry_corruptions_name_each_invariant() {
        let l = LineAddr::new(88);
        let n = 20;
        let vec_with = |pairs: &[(usize, State)]| {
            let mut v = vec![State::I; n];
            for &(i, s) in pairs {
                v[i] = s;
            }
            v
        };

        let mut d = DuplicateTagDirectory::new(n);
        d.install_raw_entry(
            l,
            &vec_with(&[(17, State::M), (19, State::M)]),
            1 << 17 | 1 << 19,
            Some((17, State::M)),
        );
        let e = d.check_invariants().unwrap_err();
        assert!(e.contains("2 owner-like copies"), "{e}");

        let mut d = DuplicateTagDirectory::new(n);
        d.install_raw_entry(
            l,
            &vec_with(&[(18, State::O), (3, State::S)]),
            1 << 3,
            Some((18, State::O)),
        );
        let e = d.check_invariants().unwrap_err();
        assert!(e.contains("cached mask"), "{e}");

        let mut d = DuplicateTagDirectory::new(n);
        d.install_raw_entry(
            l,
            &vec_with(&[(2, State::S), (19, State::S)]),
            1 << 2 | 1 << 19,
            Some((19, State::M)),
        );
        let e = d.check_invariants().unwrap_err();
        assert!(e.contains("cached owner"), "{e}");
    }

    #[test]
    fn well_formed_states_pass_the_extended_invariants() {
        let mut d = DuplicateTagDirectory::new(20);
        d.set_state(LineAddr::new(1), 0, State::O);
        d.set_state(LineAddr::new(1), 17, State::S);
        d.set_state(LineAddr::new(2), 19, State::M);
        d.set_state(LineAddr::new(3), 4, State::E);
        d.check_invariants().unwrap();
    }

    #[test]
    fn large_entries_garbage_collect_and_drop_the_owner_cache() {
        let mut d = DuplicateTagDirectory::new(20);
        d.set_state(LineAddr::new(3), 19, State::M);
        assert_eq!(d.lookup_view(LineAddr::new(3)).owner, Some((19, State::M)));
        // Downgrading the owner clears the cached owner but keeps the
        // entry; invalidating the last copy collects it.
        d.set_state(LineAddr::new(3), 19, State::S);
        assert_eq!(d.lookup_view(LineAddr::new(3)).owner, None);
        assert_eq!(d.holders_mask(LineAddr::new(3)), 1 << 19);
        assert_eq!(d.set_state(LineAddr::new(3), 19, State::I), State::S);
        assert!(d.is_empty());
    }
}
