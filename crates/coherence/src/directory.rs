//! Duplicate-tag directory (Sec. V-B, Fig. 9).
//!
//! The directory is logically an N-way-associative tag store where N is
//! the core count: the way position of an entry encodes which core's
//! vault caches the block, so no sharing vector is needed. Finding the
//! sharers of a block reads all N ways; most updates touch one entry, but
//! a full-set transition (e.g. a block shared by every core moving to
//! exclusive) touches N.
//!
//! Physically the directory is distributed across the vaults in an
//! address-interleaved fashion; this structure is the *functional*
//! content, and the engine emits `DirLookup`/`DirUpdate` steps against the
//! home node so the simulator charges the DRAM accesses.

use crate::state::State;
use silo_types::LineAddr;
use std::collections::HashMap;

/// Compact result of one directory lookup: the information the protocol
/// engines act on, without materializing the per-node state vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirView {
    /// Bitmask of nodes holding the line in any valid state.
    pub mask: u64,
    /// The node holding the line in an owner-like state (M, O, or E),
    /// with that state; at most one exists (protocol invariant).
    pub owner: Option<(usize, State)>,
}

/// The functional duplicate-tag directory: per line, one coherence state
/// per node (way position = node id).
#[derive(Clone, Debug)]
pub struct DuplicateTagDirectory {
    n_nodes: usize,
    entries: HashMap<LineAddr, Vec<State>>,
    lookups: u64,
    updates: u64,
}

impl DuplicateTagDirectory {
    /// Creates a directory for `n_nodes` vaults.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero or exceeds 64 (sharer masks are u64).
    pub fn new(n_nodes: usize) -> Self {
        assert!(
            (1..=64).contains(&n_nodes),
            "node count {n_nodes} outside [1, 64]"
        );
        DuplicateTagDirectory {
            n_nodes,
            entries: HashMap::new(),
            lookups: 0,
            updates: 0,
        }
    }

    /// Number of nodes (directory ways).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// State of `line` at `node`.
    pub fn state_of(&self, line: LineAddr, node: usize) -> State {
        self.entries
            .get(&line)
            .map_or(State::I, |states| states[node])
    }

    /// Records a directory lookup (sharer scan) and returns the full
    /// per-node state vector (I for absent).
    pub fn lookup(&mut self, line: LineAddr) -> Vec<State> {
        self.lookups += 1;
        self.entries
            .get(&line)
            .cloned()
            .unwrap_or_else(|| vec![State::I; self.n_nodes])
    }

    /// Records a directory lookup and returns the compact per-line view
    /// the protocol engines act on, without allocating: the holder
    /// bitmask and the owner-like node with its state (at most one, by
    /// the single-writer invariant).
    pub fn lookup_view(&mut self, line: LineAddr) -> DirView {
        self.lookups += 1;
        match self.entries.get(&line) {
            None => DirView {
                mask: 0,
                owner: None,
            },
            Some(states) => {
                let mut view = DirView {
                    mask: 0,
                    owner: None,
                };
                for (i, s) in states.iter().enumerate() {
                    if s.is_valid() {
                        view.mask |= 1u64 << i;
                    }
                    if s.is_ownerlike() {
                        view.owner = Some((i, *s));
                    }
                }
                view
            }
        }
    }

    /// Sets the state of `line` at `node`, creating or garbage-collecting
    /// the entry as needed. Returns the previous state.
    pub fn set_state(&mut self, line: LineAddr, node: usize, state: State) -> State {
        assert!(node < self.n_nodes, "node {node} out of range");
        self.updates += 1;
        match self.entries.get_mut(&line) {
            Some(states) => {
                let prev = states[node];
                states[node] = state;
                if states.iter().all(|s| !s.is_valid()) {
                    self.entries.remove(&line);
                }
                prev
            }
            None => {
                if state.is_valid() {
                    let mut states = vec![State::I; self.n_nodes];
                    states[node] = state;
                    self.entries.insert(line, states);
                }
                State::I
            }
        }
    }

    /// The node holding the line in an owner-like state (M, O, or E), if
    /// any. At most one such node exists (protocol invariant).
    pub fn owner(&self, line: LineAddr) -> Option<usize> {
        let states = self.entries.get(&line)?;
        states.iter().position(|s| s.is_ownerlike())
    }

    /// Bitmask of nodes holding the line in any valid state.
    pub fn holders_mask(&self, line: LineAddr) -> u64 {
        match self.entries.get(&line) {
            None => 0,
            Some(states) => states
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_valid())
                .fold(0u64, |m, (i, _)| m | (1 << i)),
        }
    }

    /// Lowest-numbered node holding the line in any valid state,
    /// excluding `except`.
    pub fn first_holder_except(&self, line: LineAddr, except: usize) -> Option<usize> {
        let states = self.entries.get(&line)?;
        states
            .iter()
            .enumerate()
            .find(|(i, s)| *i != except && s.is_valid())
            .map(|(i, _)| i)
    }

    /// True when no node caches the line.
    pub fn is_uncached(&self, line: LineAddr) -> bool {
        !self.entries.contains_key(&line)
    }

    /// Number of tracked lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the directory tracks nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookup operations performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Update operations performed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Checks the MOESI single-writer invariants for every tracked line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant:
    /// * at most one node in an owner-like state (M/O/E);
    /// * M and E never coexist with any other valid copy;
    /// * no fully-invalid entries survive (garbage collection).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (line, states) in &self.entries {
            let ownerlike = states.iter().filter(|s| s.is_ownerlike()).count();
            if ownerlike > 1 {
                return Err(format!("{line}: {ownerlike} owner-like copies"));
            }
            let valid = states.iter().filter(|s| s.is_valid()).count();
            if valid == 0 {
                return Err(format!("{line}: empty entry not collected"));
            }
            let exclusive = states.iter().any(|s| matches!(s, State::M | State::E));
            if exclusive && valid > 1 {
                return Err(format!("{line}: M/E coexists with other copies"));
            }
        }
        Ok(())
    }

    /// Iterates over tracked lines and their state vectors.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &[State])> {
        self.entries.iter().map(|(l, s)| (*l, s.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_lines_are_invalid_everywhere() {
        let mut d = DuplicateTagDirectory::new(4);
        assert_eq!(d.state_of(LineAddr::new(1), 0), State::I);
        assert!(d.is_uncached(LineAddr::new(1)));
        assert_eq!(d.lookup(LineAddr::new(1)), vec![State::I; 4]);
        assert_eq!(d.lookups(), 1);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut d = DuplicateTagDirectory::new(4);
        assert_eq!(d.set_state(LineAddr::new(7), 2, State::M), State::I);
        assert_eq!(d.state_of(LineAddr::new(7), 2), State::M);
        assert_eq!(d.owner(LineAddr::new(7)), Some(2));
        assert_eq!(d.holders_mask(LineAddr::new(7)), 0b0100);
    }

    #[test]
    fn entry_garbage_collected_when_all_invalid() {
        let mut d = DuplicateTagDirectory::new(2);
        d.set_state(LineAddr::new(3), 0, State::S);
        assert_eq!(d.len(), 1);
        d.set_state(LineAddr::new(3), 0, State::I);
        assert_eq!(d.len(), 0);
        assert!(d.is_empty());
    }

    #[test]
    fn setting_invalid_on_absent_line_is_noop() {
        let mut d = DuplicateTagDirectory::new(2);
        d.set_state(LineAddr::new(3), 1, State::I);
        assert!(d.is_empty());
        assert_eq!(d.updates(), 1);
    }

    #[test]
    fn owner_prefers_ownerlike_over_shared() {
        let mut d = DuplicateTagDirectory::new(4);
        d.set_state(LineAddr::new(9), 0, State::S);
        d.set_state(LineAddr::new(9), 3, State::O);
        assert_eq!(d.owner(LineAddr::new(9)), Some(3));
        assert_eq!(d.holders_mask(LineAddr::new(9)), 0b1001);
    }

    #[test]
    fn first_holder_except_skips_requester() {
        let mut d = DuplicateTagDirectory::new(4);
        d.set_state(LineAddr::new(9), 1, State::S);
        d.set_state(LineAddr::new(9), 2, State::S);
        assert_eq!(d.first_holder_except(LineAddr::new(9), 1), Some(2));
        assert_eq!(d.first_holder_except(LineAddr::new(9), 0), Some(1));
        d.set_state(LineAddr::new(9), 2, State::I);
        assert_eq!(d.first_holder_except(LineAddr::new(9), 1), None);
    }

    #[test]
    fn lookup_view_matches_vector_lookup() {
        let mut d = DuplicateTagDirectory::new(4);
        assert_eq!(
            d.lookup_view(LineAddr::new(1)),
            DirView {
                mask: 0,
                owner: None
            }
        );
        d.set_state(LineAddr::new(1), 0, State::S);
        d.set_state(LineAddr::new(1), 2, State::O);
        let v = d.lookup_view(LineAddr::new(1));
        assert_eq!(v.mask, 0b0101);
        assert_eq!(v.owner, Some((2, State::O)));
        assert_eq!(d.lookups(), 2);
    }

    #[test]
    fn invariants_catch_double_owner() {
        let mut d = DuplicateTagDirectory::new(4);
        d.set_state(LineAddr::new(5), 0, State::M);
        assert!(d.check_invariants().is_ok());
        d.set_state(LineAddr::new(5), 1, State::M);
        assert!(d.check_invariants().is_err());
    }

    #[test]
    fn invariants_catch_exclusive_with_sharer() {
        let mut d = DuplicateTagDirectory::new(4);
        d.set_state(LineAddr::new(5), 0, State::E);
        d.set_state(LineAddr::new(5), 1, State::S);
        assert!(d.check_invariants().is_err());
    }

    #[test]
    fn owned_with_sharers_is_legal() {
        let mut d = DuplicateTagDirectory::new(4);
        d.set_state(LineAddr::new(5), 0, State::O);
        d.set_state(LineAddr::new(5), 1, State::S);
        d.set_state(LineAddr::new(5), 2, State::S);
        assert!(d.check_invariants().is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_bounds_checked() {
        DuplicateTagDirectory::new(2).set_state(LineAddr::new(0), 5, State::S);
    }

    #[test]
    fn iter_exposes_entries() {
        let mut d = DuplicateTagDirectory::new(2);
        d.set_state(LineAddr::new(1), 0, State::S);
        d.set_state(LineAddr::new(2), 1, State::M);
        assert_eq!(d.iter().count(), 2);
    }
}
