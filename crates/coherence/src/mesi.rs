//! The conventional baseline: per-core L1s (and optional L2s) over a
//! shared, banked, non-inclusive NUCA LLC with an embedded MESI directory
//! tracking the SRAM-level copies (Sec. V-B).
//!
//! Banks are address-interleaved across the mesh nodes (one bank per
//! tile, as in the paper's Table II baseline). The directory at each bank
//! tracks which cores' SRAM hierarchies hold the line and in what MESI
//! state; dirty L1 victims are written back into the LLC, dirty LLC
//! victims to memory. Because the LLC is non-inclusive, an LLC eviction
//! does not recall SRAM copies — the directory keeps tracking them.

use crate::directory::DuplicateTagDirectory;
use crate::node::{Node, NodeSpec, SramHit};
use crate::state::State;
use crate::stats::CoherenceStats;
use crate::step::{AccessResult, Background, ServedBy, Step};
use crate::{EngineProbe, EP_DIR, EP_FILL, EP_L1, EP_WB};
use silo_cache::{ReplacementPolicy, SetAssocCache};
use silo_obs::{Lap, NoProbe};
use silo_types::{ByteSize, LineAddr, MemRef};

/// Configuration of the shared-LLC baseline.
#[derive(Clone, Copy, Debug)]
pub struct SharedMesiConfig {
    /// Per-core SRAM geometry.
    pub node_spec: NodeSpec,
    /// Aggregate LLC capacity (16 MiB SRAM NUCA in Table II).
    pub llc_capacity: ByteSize,
    /// LLC associativity.
    pub llc_ways: usize,
    /// Capacity-scaling knob shared with the workload generators.
    pub scale: u64,
}

impl Default for SharedMesiConfig {
    fn default() -> Self {
        SharedMesiConfig {
            node_spec: NodeSpec::two_level(),
            llc_capacity: ByteSize::from_mib(16),
            llc_ways: 16,
            scale: 64,
        }
    }
}

/// Per-LLC-line payload: dirty with respect to memory.
type LlcLine = bool;

/// The shared-LLC MESI engine: N SRAM nodes over N address-interleaved
/// LLC banks with an embedded duplicate-tag directory of SRAM copies.
#[derive(Clone, Debug)]
pub struct SharedMesi {
    nodes: Vec<Node>,
    banks: Vec<SetAssocCache<LlcLine>>,
    /// Tracks SRAM-level copies; way position = core id.
    dir: DuplicateTagDirectory,
    stats: CoherenceStats,
}

impl SharedMesi {
    /// Builds the baseline hierarchy for `n_cores` cores, splitting the
    /// (scaled) LLC capacity evenly across `n_cores` banks (set counts
    /// are floored to powers of two).
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero or exceeds 64.
    pub fn new(n_cores: usize, cfg: &SharedMesiConfig) -> Self {
        let total = cfg.llc_capacity.scaled_down(cfg.scale);
        let per_bank = ByteSize::from_bytes(total.as_bytes() / n_cores as u64);
        SharedMesi {
            nodes: (0..n_cores)
                .map(|_| Node::new(&cfg.node_spec, cfg.scale))
                .collect(),
            banks: (0..n_cores)
                .map(|_| {
                    SetAssocCache::with_capacity_rounded(
                        per_bank,
                        cfg.llc_ways,
                        ReplacementPolicy::Lru,
                    )
                })
                .collect(),
            dir: DuplicateTagDirectory::new(n_cores),
            stats: CoherenceStats::default(),
        }
    }

    /// Coherence event counters since construction (or the last
    /// [`SharedMesi::reset_stats`]). `o_state_forwards` stays zero:
    /// MESI has no O state.
    pub fn stats(&self) -> CoherenceStats {
        self.stats
    }

    /// Zeroes the event counters without touching any protocol state
    /// (the telemetry warmup boundary).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Number of cores (and LLC banks).
    pub fn n_cores(&self) -> usize {
        self.nodes.len()
    }

    /// LLC bank (and mesh node) serving a line; same interleaving as the
    /// SILO directory homes so both systems see the same traffic spread.
    pub fn bank_of(&self, line: LineAddr) -> usize {
        (line.scramble() % self.banks.len() as u64) as usize
    }

    /// Host-cache prefetch hint for an upcoming access by any core to
    /// `line`: warms the home bank's set. Changes no simulated state.
    #[inline]
    pub fn prefetch_hint(&self, line: LineAddr) {
        self.banks[self.bank_of(line)].prefetch(line);
    }

    /// The functional directory of SRAM copies.
    pub fn directory(&self) -> &DuplicateTagDirectory {
        &self.dir
    }

    /// Aggregate LLC hit/miss counters across banks.
    pub fn llc_stats(&self) -> (u64, u64) {
        self.banks
            .iter()
            .fold((0, 0), |(h, m), b| (h + b.hits(), m + b.misses()))
    }

    /// True when `core`'s SRAM hierarchy holds the line. Read-only
    /// introspection for the model checker.
    pub fn sram_contains(&self, core: usize, line: LineAddr) -> bool {
        self.nodes[core].contains(line)
    }

    /// The LLC's view of `line`: `Some(dirty)` when a bank holds it.
    /// Read-only: no hit/miss or recency accounting.
    pub fn llc_state(&self, line: LineAddr) -> Option<bool> {
        self.banks[self.bank_of(line)].peek(line).copied()
    }

    /// Executes one memory reference from `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, mr: MemRef) -> AccessResult {
        let mut r = AccessResult::default();
        self.access_into(core, mr, &mut r);
        r
    }

    /// [`SharedMesi::access`] writing into a caller-owned result, so a
    /// hot loop can reuse the step buffers instead of allocating two
    /// vectors per access.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access_into(&mut self, core: usize, mr: MemRef, r: &mut AccessResult) {
        self.access_impl(core, mr, r, &mut NoProbe);
    }

    /// [`SharedMesi::access_into`] with sub-phase wall-clock attribution
    /// into the [`crate::ENGINE_SUBPHASES`] buckets of `probe`, tiling
    /// the call exactly. Simulated results are bit-identical to the
    /// unprobed path (one shared body, generic over the probe).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access_into_probed(
        &mut self,
        core: usize,
        mr: MemRef,
        r: &mut AccessResult,
        probe: &mut EngineProbe,
    ) {
        self.access_impl(core, mr, r, probe);
    }

    /// The one access body both entry points monomorphize: [`NoProbe`]
    /// compiles every lap out, a real [`EngineProbe`] attributes each
    /// segment as it closes.
    fn access_impl<P: Lap>(
        &mut self,
        core: usize,
        mr: MemRef,
        r: &mut AccessResult,
        probe: &mut P,
    ) {
        assert!(core < self.nodes.len(), "core {core} out of range");
        probe.begin();
        r.clear();
        r.line = mr.line;
        r.is_write = mr.kind.is_write();
        match self.nodes[core].probe(mr.line, mr.kind) {
            SramHit::L1 => {
                r.served = Some(ServedBy::L1);
                probe.lap(EP_L1);
                if mr.kind.is_write() {
                    self.write_permission(core, mr.line, r);
                    probe.lap(EP_DIR);
                }
            }
            SramHit::L2 => {
                r.served = Some(ServedBy::L2);
                probe.lap(EP_L1);
                if mr.kind.is_write() {
                    self.write_permission(core, mr.line, r);
                    probe.lap(EP_DIR);
                }
            }
            SramHit::Miss => {
                probe.lap(EP_L1);
                self.sram_miss(core, mr, r, probe);
            }
        }
    }

    /// Write to an SRAM-resident line: silent E->M, or an upgrade through
    /// the home bank's directory for S copies.
    fn write_permission(&mut self, core: usize, line: LineAddr, r: &mut AccessResult) {
        match self.dir.state_of(line, core) {
            State::M => {}
            State::E => {
                self.dir.set_state(line, core, State::M);
            }
            State::S => self.upgrade(core, line, r),
            State::I => unreachable!("SRAM-resident line must be directory-tracked"),
            State::O => unreachable!("MESI never reaches O"),
        }
    }

    /// Write-upgrade: invalidate the other SRAM holders via the home
    /// bank's directory and take M.
    fn upgrade(&mut self, core: usize, line: LineAddr, r: &mut AccessResult) {
        r.llc_access = true;
        self.stats.upgrades.inc();
        let bank = self.bank_of(line);
        r.steps.push(Step::Net {
            from: core,
            to: bank,
        });
        r.steps.push(Step::LlcBank { bank });
        let mask = self.dir.lookup_view(line).mask & !(1u64 << core);
        if mask != 0 {
            r.steps.push(Step::Invalidations { home: bank, mask });
            self.invalidate_holders(line, mask);
        }
        r.steps.push(Step::Net {
            from: bank,
            to: core,
        });
        self.dir.set_state(line, core, State::M);
        r.background.push(Background::DirUpdate {
            home: bank,
            ways: mask.count_ones() + 1,
        });
    }

    /// Handles an access that missed every SRAM level.
    fn sram_miss<P: Lap>(&mut self, core: usize, mr: MemRef, r: &mut AccessResult, probe: &mut P) {
        r.llc_access = true;
        let line = mr.line;
        let is_write = mr.kind.is_write();
        let bank = self.bank_of(line);
        r.steps.push(Step::Net {
            from: core,
            to: bank,
        });
        r.steps.push(Step::LlcBank { bank });

        let view = self.dir.lookup_view(line);
        // The requester can hold the line in the *other* L1 (an ifetch
        // probing the L1-I while the line sits in the L1-D): its own state
        // survives and no remote work is needed for reads.
        let own = self.dir.state_of(line, core);
        let owner = view.owner.filter(|&(o, _)| o != core);
        let mask = view.mask & !(1u64 << core);
        let mut dir_ways = 1u32;

        let new_state = if own.is_valid() {
            r.steps.push(Step::Net {
                from: bank,
                to: core,
            });
            r.served = Some(ServedBy::SharedLlc);
            if is_write && !own.can_write_silently() {
                if mask != 0 {
                    r.steps.push(Step::Invalidations { home: bank, mask });
                    self.invalidate_holders(line, mask);
                    dir_ways += mask.count_ones();
                }
                State::M
            } else if is_write {
                State::M
            } else {
                own
            }
        } else if let Some((o, ostate)) = owner {
            // Cache-to-cache forward through the LLC directory.
            r.steps.push(Step::Net { from: bank, to: o });
            r.steps.push(Step::L1Probe { node: o });
            r.steps.push(Step::Net { from: o, to: core });
            r.served = Some(ServedBy::SharedLlc);
            if is_write {
                // MESI invariant: an M/E owner has no co-sharers, so the
                // forward itself carries the only invalidation.
                self.invalidate_holders(line, 1u64 << o);
                dir_ways += 1;
                State::M
            } else {
                // Owner degrades to S; a dirty owner writes back into the
                // LLC so the S copies stay clean (MESI has no O state).
                if ostate == State::M {
                    self.fill_llc(line, true, r, probe, EP_DIR);
                    r.background.push(Background::L1Writeback { node: o });
                }
                self.dir.set_state(line, o, State::S);
                dir_ways += 1;
                State::S
            }
        } else if self.banks[bank].get(line).is_some() {
            // LLC data hit.
            r.steps.push(Step::Net {
                from: bank,
                to: core,
            });
            r.served = Some(ServedBy::SharedLlc);
            if is_write {
                if mask != 0 {
                    r.steps.push(Step::Invalidations { home: bank, mask });
                    self.invalidate_holders(line, mask);
                    dir_ways += mask.count_ones();
                }
                State::M
            } else if mask == 0 {
                State::E
            } else {
                State::S
            }
        } else {
            // LLC miss with no owner: memory supplies the data. (Sharers
            // may survive in SRAM because the LLC is non-inclusive; their
            // copies are clean, so memory is current.)
            r.steps.push(Step::Memory);
            r.steps.push(Step::Net {
                from: bank,
                to: core,
            });
            r.served = Some(ServedBy::Memory);
            self.fill_llc(line, false, r, probe, EP_DIR);
            if is_write {
                if mask != 0 {
                    r.steps.push(Step::Invalidations { home: bank, mask });
                    self.invalidate_holders(line, mask);
                    dir_ways += mask.count_ones();
                }
                State::M
            } else if mask == 0 {
                State::E
            } else {
                State::S
            }
        };

        self.dir.set_state(line, core, new_state);
        r.background.push(Background::DirUpdate {
            home: bank,
            ways: dir_ways,
        });
        probe.lap(EP_DIR);
        self.fill_sram(core, line, mr, r, probe);
    }

    /// Installs `line` into its LLC bank with the given dirty bit,
    /// accounting the fill and any dirty-victim writeback to memory.
    /// Whatever ran since the caller's last lap is attributed to `seg`
    /// before the insert; the insert itself lands in the fill bucket.
    fn fill_llc<P: Lap>(
        &mut self,
        line: LineAddr,
        dirty: bool,
        r: &mut AccessResult,
        probe: &mut P,
        seg: usize,
    ) {
        probe.lap(seg);
        let bank = self.bank_of(line);
        let dirty_writeback = match self.banks[bank].insert(line, dirty) {
            Some(victim) => victim.payload,
            None => false,
        };
        if dirty_writeback {
            self.stats.dirty_writebacks.inc();
        }
        r.background.push(Background::LlcFill {
            bank,
            dirty_writeback,
        });
        probe.lap(EP_FILL);
    }

    /// Fills the SRAM levels; a node-level victim leaves the directory,
    /// and a dirty victim is written back into the LLC.
    fn fill_sram<P: Lap>(
        &mut self,
        core: usize,
        line: LineAddr,
        mr: MemRef,
        r: &mut AccessResult,
        probe: &mut P,
    ) {
        let victim = self.nodes[core].fill(line, mr.kind);
        probe.lap(EP_FILL);
        if let Some(victim) = victim {
            let prev = self.dir.set_state(victim, core, State::I);
            if prev.is_valid() {
                self.stats.directory_evictions.inc();
            }
            if prev == State::M {
                self.fill_llc(victim, true, r, probe, EP_WB);
                r.background.push(Background::L1Writeback { node: core });
            }
            probe.lap(EP_WB);
        }
    }

    /// Invalidates the SRAM copies named by `mask` and retires their
    /// directory entries. A dirty invalidated copy needs no writeback —
    /// it is superseded by the requester's M copy.
    fn invalidate_holders(&mut self, line: LineAddr, mask: u64) {
        self.stats.invalidations.add(u64::from(mask.count_ones()));
        for node in 0..self.nodes.len() {
            if mask & (1u64 << node) != 0 {
                self.nodes[node].invalidate(line);
                self.dir.set_state(line, node, State::I);
            }
        }
    }

    /// Verifies the protocol invariants: MESI directory invariants (no O
    /// state, single writer) and directory/SRAM agreement.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn check(&self) -> Result<(), String> {
        self.dir.check_invariants()?;
        for (bank, b) in self.banks.iter().enumerate() {
            if b.len() as u64 > b.capacity_lines() {
                return Err(format!(
                    "bank {bank}: {} resident lines exceed capacity {}",
                    b.len(),
                    b.capacity_lines()
                ));
            }
        }
        for (line, states) in self.dir.iter() {
            for (core, s) in states.iter().enumerate() {
                if *s == State::O {
                    return Err(format!("{line}: MESI directory holds O at {core}"));
                }
                if s.is_valid() && !self.nodes[core].contains(line) {
                    return Err(format!("{line}: directory {s} at {core} but SRAM misses"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_types::{AccessKind, MemRef};

    fn small() -> SharedMesi {
        SharedMesi::new(
            4,
            &SharedMesiConfig {
                llc_capacity: ByteSize::from_kib(256),
                scale: 1,
                ..SharedMesiConfig::default()
            },
        )
    }

    #[test]
    fn cold_read_misses_to_memory_and_fills_llc() {
        let mut m = small();
        let l = LineAddr::new(42);
        let r = m.access(0, MemRef::read(l));
        assert_eq!(r.served_by(), ServedBy::Memory);
        assert!(r.llc_access);
        assert_eq!(m.directory().state_of(l, 0), State::E);
        assert!(r
            .background
            .iter()
            .any(|b| matches!(b, Background::LlcFill { .. })));
        m.check().unwrap();
    }

    #[test]
    fn second_core_hits_llc() {
        let mut m = small();
        let l = LineAddr::new(42);
        m.access(0, MemRef::read(l));
        // Core 0 holds E in L1: forward through the LLC directory.
        let r = m.access(1, MemRef::read(l));
        assert_eq!(r.served_by(), ServedBy::SharedLlc);
        assert_eq!(m.directory().state_of(l, 0), State::S);
        assert_eq!(m.directory().state_of(l, 1), State::S);
        m.check().unwrap();
    }

    #[test]
    fn dirty_forward_writes_back_into_llc() {
        let mut m = small();
        let l = LineAddr::new(42);
        m.access(0, MemRef::write(l));
        assert_eq!(m.directory().state_of(l, 0), State::M);
        let r = m.access(1, MemRef::read(l));
        assert_eq!(r.served_by(), ServedBy::SharedLlc);
        assert!(r
            .background
            .iter()
            .any(|b| matches!(b, Background::L1Writeback { .. })));
        assert_eq!(m.directory().state_of(l, 0), State::S);
        assert_eq!(m.directory().state_of(l, 1), State::S);
        m.check().unwrap();
    }

    #[test]
    fn write_invalidates_all_sharers() {
        let mut m = small();
        let l = LineAddr::new(42);
        m.access(0, MemRef::read(l));
        m.access(1, MemRef::read(l));
        m.access(2, MemRef::read(l));
        let r = m.access(3, MemRef::write(l));
        assert!(r
            .steps
            .iter()
            .any(|s| matches!(s, Step::Invalidations { .. })));
        for core in 0..3 {
            assert_eq!(m.directory().state_of(l, core), State::I);
        }
        assert_eq!(m.directory().state_of(l, 3), State::M);
        m.check().unwrap();
    }

    #[test]
    fn upgrade_on_sram_write_hit() {
        let mut m = small();
        let l = LineAddr::new(42);
        m.access(0, MemRef::read(l));
        m.access(1, MemRef::read(l));
        let r = m.access(0, MemRef::write(l));
        assert_eq!(r.served_by(), ServedBy::L1);
        assert!(r.llc_access);
        assert_eq!(m.directory().state_of(l, 0), State::M);
        assert_eq!(m.directory().state_of(l, 1), State::I);
        m.check().unwrap();
    }

    #[test]
    fn ifetch_of_data_resident_line_stays_local_state() {
        let mut m = small();
        let l = LineAddr::new(42);
        m.access(0, MemRef::read(l));
        let mr = MemRef {
            line: l,
            kind: AccessKind::IFetch,
            gap_instructions: 0,
            dependent: false,
        };
        let r = m.access(0, mr);
        assert_eq!(r.served_by(), ServedBy::SharedLlc);
        assert_eq!(m.directory().state_of(l, 0), State::E);
        m.check().unwrap();
    }

    #[test]
    fn l1i_eviction_keeps_directory_entry_while_l1d_holds_line() {
        let mut m = small();
        let l = LineAddr::new(5);
        let ifetch = |line| MemRef {
            line,
            kind: AccessKind::IFetch,
            gap_instructions: 0,
            dependent: false,
        };
        m.access(0, ifetch(l));
        m.access(0, MemRef::read(l)); // now in both L1-I and L1-D
                                      // Evict l from the L1-I (128 sets at scale 1) only.
        for i in 1..=8 {
            m.access(0, ifetch(LineAddr::new(5 + i * 128)));
        }
        assert_eq!(
            m.directory().state_of(l, 0),
            State::E,
            "L1-D copy must keep the directory entry alive"
        );
        // The write must hit the surviving copy and upgrade silently.
        let r = m.access(0, MemRef::write(l));
        assert_eq!(r.served_by(), ServedBy::L1);
        assert_eq!(m.directory().state_of(l, 0), State::M);
        m.check().unwrap();
    }

    #[test]
    fn llc_is_non_inclusive_of_sram() {
        // A dirty L1 victim is written back to the LLC and the directory
        // entry retires; re-reading then hits the LLC.
        let mut m = small();
        // L1-D at scale 1 is 64 KiB 8-way = 128 sets; fill 9 lines of the
        // same set to evict the first.
        let l = LineAddr::new(5);
        m.access(0, MemRef::write(l));
        for i in 1..=8 {
            m.access(0, MemRef::write(LineAddr::new(5 + i * 128)));
        }
        assert_eq!(m.directory().state_of(l, 0), State::I, "L1 victim retired");
        let r = m.access(0, MemRef::read(l));
        assert_eq!(r.served_by(), ServedBy::SharedLlc);
        m.check().unwrap();
    }

    #[test]
    fn stats_count_upgrades_and_invalidations_without_o_forwards() {
        let mut m = small();
        let l = LineAddr::new(42);
        m.access(0, MemRef::read(l));
        m.access(1, MemRef::read(l));
        m.access(0, MemRef::write(l)); // upgrade, invalidates core 1
        let s = m.stats();
        assert_eq!(s.upgrades.get(), 1);
        assert_eq!(s.invalidations.get(), 1);
        assert_eq!(s.o_state_forwards.get(), 0, "MESI has no O state");
        m.reset_stats();
        assert_eq!(m.stats(), crate::CoherenceStats::default());
        m.check().unwrap();
    }

    #[test]
    fn probed_access_matches_unprobed_and_tiles_the_call() {
        let mut plain = small();
        let mut probed = small();
        let mut probe = crate::EngineProbe::new();
        let mut rng = 0xfeed_face_u64;
        let mut r = AccessResult::default();
        for i in 0..2000 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let core = (rng >> 33) as usize % 4;
            let line = LineAddr::new((rng >> 17) % 4096);
            let mr = if i % 3 == 0 {
                MemRef::write(line)
            } else {
                MemRef::read(line)
            };
            probed.access_into_probed(core, mr, &mut r, &mut probe);
            assert_eq!(plain.access(core, mr), r, "probe must not change results");
        }
        probed.check().unwrap();
        assert_eq!(probe.calls(), 2000);
        assert!(probe.samples()[crate::EP_L1] >= probe.calls());
        assert!(probe.samples()[crate::EP_DIR] > 0);
        assert!(probe.samples()[crate::EP_FILL] > 0);
    }

    #[test]
    fn served_classification_is_always_set() {
        let mut m = small();
        let mut rng = 0x8765_4321_u64;
        for i in 0..2000 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let core = (rng >> 33) as usize % 4;
            let line = LineAddr::new((rng >> 17) % 4096);
            let mr = if i % 3 == 0 {
                MemRef::write(line)
            } else {
                MemRef::read(line)
            };
            let r = m.access(core, mr);
            let _ = r.served_by();
        }
        m.check().unwrap();
    }
}
