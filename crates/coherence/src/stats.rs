//! Coherence event counters.
//!
//! Both protocol engines keep a [`CoherenceStats`] of the protocol
//! events the paper's interconnect-pressure discussion cares about:
//! invalidations, O-state dirty forwards, directory evictions, write
//! upgrades, and dirty writebacks to memory. The counters are purely
//! observational (resetting them never touches protocol state), so the
//! telemetry warmup window can zero them mid-run.

use silo_types::stats::Counter;

/// Event counters of one protocol engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    /// Copies invalidated at other nodes (one count per invalidated
    /// holder, across write upgrades and write misses).
    pub invalidations: Counter,
    /// Dirty core-to-core forwards where the owner kept supplying via
    /// the O state instead of writing back (MOESI only; the event the
    /// `silo-no-forward` variant trades for memory writebacks).
    pub o_state_forwards: Counter,
    /// Directory entries retired by capacity evictions (vault victims in
    /// SILO, SRAM victims under the baseline's embedded directory).
    pub directory_evictions: Counter,
    /// Write-upgrade transactions (S/O holder taking M through the home).
    pub upgrades: Counter,
    /// Dirty lines written back to main memory (capacity victims, plus
    /// dirty forwards when O-state forwarding is disabled).
    pub dirty_writebacks: Counter,
}

impl CoherenceStats {
    /// Zeroes every counter (the warmup/measurement boundary).
    pub fn reset(&mut self) {
        *self = CoherenceStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_zeroes_all_counters() {
        let mut s = CoherenceStats::default();
        s.invalidations.add(3);
        s.o_state_forwards.inc();
        s.directory_evictions.inc();
        s.upgrades.inc();
        s.dirty_writebacks.inc();
        s.reset();
        assert_eq!(s, CoherenceStats::default());
    }
}
