//! Per-core SRAM cache hierarchy (L1-I, L1-D, optional private L2).
//!
//! Nodes track *presence* only; coherence state is maintained at the
//! backing level (the vault in SILO, the LLC directory in the shared
//! baseline), which is accurate because the on-chip levels are inclusive
//! with respect to their backing store in every evaluated system.

use silo_cache::{ReplacementPolicy, SetAssocCache};
use silo_types::{AccessKind, ByteSize, LineAddr};

/// Geometry of a node's SRAM levels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeSpec {
    /// L1 instruction cache capacity (64 KiB, 8-way in Table II).
    pub l1i_capacity: ByteSize,
    /// L1 data cache capacity.
    pub l1d_capacity: ByteSize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// Optional private L2 (512 KiB in the 3-level study, Sec. VII-F).
    pub l2_capacity: Option<ByteSize>,
    /// L2 associativity.
    pub l2_ways: usize,
}

impl Default for NodeSpec {
    fn default() -> Self {
        NodeSpec {
            l1i_capacity: ByteSize::from_kib(64),
            l1d_capacity: ByteSize::from_kib(64),
            l1_ways: 8,
            l2_capacity: None,
            l2_ways: 8,
        }
    }
}

impl NodeSpec {
    /// The paper's 2-level node: 64 KiB 8-way L1s, no L2.
    pub fn two_level() -> Self {
        Self::default()
    }

    /// The 3-level node: adds a 512 KiB 8-way private L2.
    pub fn three_level() -> Self {
        NodeSpec {
            l2_capacity: Some(ByteSize::from_kib(512)),
            ..Self::default()
        }
    }
}

/// One core's private SRAM hierarchy.
#[derive(Clone, Debug)]
pub struct Node {
    l1i: SetAssocCache<()>,
    l1d: SetAssocCache<()>,
    l2: Option<SetAssocCache<()>>,
}

/// Which SRAM level (if any) hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SramHit {
    /// Hit in the relevant L1.
    L1,
    /// Missed L1, hit the private L2.
    L2,
    /// Missed all SRAM levels.
    Miss,
}

impl Node {
    /// Builds a node, scaling capacities down by `scale` (the simulator's
    /// capacity-scaling knob; working sets are scaled identically).
    pub fn new(spec: &NodeSpec, scale: u64) -> Self {
        let mk = |cap: ByteSize, ways: usize| {
            SetAssocCache::with_capacity_rounded(
                cap.scaled_down(scale),
                ways,
                ReplacementPolicy::Lru,
            )
        };
        Node {
            l1i: mk(spec.l1i_capacity, spec.l1_ways),
            l1d: mk(spec.l1d_capacity, spec.l1_ways),
            l2: spec.l2_capacity.map(|cap| mk(cap, spec.l2_ways)),
        }
    }

    /// Probes the SRAM levels for `line`, filling upper levels on an L2
    /// hit. Returns where it hit.
    pub fn probe(&mut self, line: LineAddr, kind: AccessKind) -> SramHit {
        let l1 = if kind.is_ifetch() {
            &mut self.l1i
        } else {
            &mut self.l1d
        };
        if l1.get(line).is_some() {
            return SramHit::L1;
        }
        if let Some(l2) = &mut self.l2 {
            if l2.get(line).is_some() {
                l1.insert(line, ());
                return SramHit::L2;
            }
        }
        SramHit::Miss
    }

    /// Fills `line` into the appropriate L1 (and L2 if present) after the
    /// backing level supplied it.
    ///
    /// Returns the line that left the node entirely, if any: with an L2,
    /// the L2 is inclusive of both L1s (its victims are back-invalidated),
    /// so only L2 victims leave the node; without one, L1 victims do —
    /// unless the *other* L1 still holds the line (a line resident in
    /// both the L1-I and L1-D). The caller (protocol engine) uses this to
    /// keep directory sharer information exact.
    pub fn fill(&mut self, line: LineAddr, kind: AccessKind) -> Option<LineAddr> {
        let l1 = if kind.is_ifetch() {
            &mut self.l1i
        } else {
            &mut self.l1d
        };
        let l1_victim = l1.insert(line, ()).map(|v| v.line);
        let Some(l2) = &mut self.l2 else {
            return l1_victim.filter(|&v| !self.contains(v));
        };
        let l2_victim = l2.insert(line, ()).map(|v| v.line);
        if let Some(v) = l2_victim {
            // Enforce L2 inclusion of the L1s.
            self.l1i.invalidate(v);
            self.l1d.invalidate(v);
        }
        l2_victim
    }

    /// [`Node::fill`] for callers that do not track SRAM residency
    /// (SILO keeps sharer state per vault, not per SRAM line): performs
    /// the same insertions and inclusion invalidations but skips the
    /// other-L1 residency scan that computing the departing line costs
    /// on every two-level victim.
    pub fn fill_untracked(&mut self, line: LineAddr, kind: AccessKind) {
        let l1 = if kind.is_ifetch() {
            &mut self.l1i
        } else {
            &mut self.l1d
        };
        l1.insert(line, ());
        if let Some(l2) = &mut self.l2 {
            if let Some(v) = l2.insert(line, ()) {
                self.l1i.invalidate(v.line);
                self.l1d.invalidate(v.line);
            }
        }
    }

    /// Removes `line` from every SRAM level (inclusion enforcement on
    /// backing-store eviction, or a coherence invalidation). Returns true
    /// if any level held it.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let a = self.l1i.invalidate(line).is_some();
        let b = self.l1d.invalidate(line).is_some();
        let c = self
            .l2
            .as_mut()
            .is_some_and(|l2| l2.invalidate(line).is_some());
        a || b || c
    }

    /// True if any SRAM level holds the line.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.l1i.contains(line)
            || self.l1d.contains(line)
            || self.l2.as_ref().is_some_and(|l2| l2.contains(line))
    }

    /// True when the node has a private L2.
    pub fn has_l2(&self) -> bool {
        self.l2.is_some()
    }

    /// L1-D hit/miss counters (hits, misses) — for MPKI-style statistics.
    pub fn l1d_stats(&self) -> (u64, u64) {
        (self.l1d.hits(), self.l1d.misses())
    }

    /// L1-I hit/miss counters.
    pub fn l1i_stats(&self) -> (u64, u64) {
        (self.l1i.hits(), self.l1i.misses())
    }

    /// Resets hit/miss statistics on all levels, keeping contents.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        if let Some(l2) = &mut self.l2 {
            l2.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node2() -> Node {
        Node::new(&NodeSpec::two_level(), 64)
    }

    fn node3() -> Node {
        Node::new(&NodeSpec::three_level(), 64)
    }

    #[test]
    fn ifetch_and_data_use_separate_l1s() {
        let mut n = node2();
        n.fill(LineAddr::new(1), AccessKind::IFetch);
        assert_eq!(n.probe(LineAddr::new(1), AccessKind::IFetch), SramHit::L1);
        assert_eq!(n.probe(LineAddr::new(1), AccessKind::Read), SramHit::Miss);
    }

    #[test]
    fn l2_backs_l1_in_three_level() {
        let mut n = node3();
        n.fill(LineAddr::new(5), AccessKind::Read);
        // Evict line 5 from the L1-D (1 KiB = 8 ways x 2 sets at scale
        // 64) by filling eight more odd lines into its set, picked to
        // land in L2 set 1 (8 KiB = 8 ways x 16 sets) so line 5's L2 copy
        // in set 5 survives.
        for i in 0..8 {
            n.fill(LineAddr::new(1009 + i * 16), AccessKind::Read);
        }
        // Line 5 fell out of L1 but should still be in the 8 KiB L2.
        let hit = n.probe(LineAddr::new(5), AccessKind::Read);
        assert_eq!(hit, SramHit::L2);
        // And the L2 hit refilled L1.
        assert_eq!(n.probe(LineAddr::new(5), AccessKind::Read), SramHit::L1);
    }

    #[test]
    fn victim_resident_in_other_l1_does_not_leave_node() {
        let mut n = node2();
        // Line 5 in both L1s (ifetch then load).
        n.fill(LineAddr::new(5), AccessKind::IFetch);
        n.fill(LineAddr::new(5), AccessKind::Read);
        // Evict 5 from the L1-D (1 KiB = 8 ways x 2 sets at scale 64) by
        // filling eight more odd lines; the L1-I copy survives, so no
        // fill may report line 5 as having left the node.
        for i in 0..8 {
            assert_eq!(n.fill(LineAddr::new(7 + i * 2), AccessKind::Read), None);
        }
        assert!(n.contains(LineAddr::new(5)), "L1-I copy must survive");
        assert_eq!(n.probe(LineAddr::new(5), AccessKind::Read), SramHit::Miss);
        assert_eq!(n.probe(LineAddr::new(5), AccessKind::IFetch), SramHit::L1);
    }

    #[test]
    fn two_level_node_has_no_l2() {
        let n = node2();
        assert!(!n.has_l2());
        assert!(node3().has_l2());
    }

    #[test]
    fn invalidate_clears_all_levels() {
        let mut n = node3();
        n.fill(LineAddr::new(9), AccessKind::Write);
        assert!(n.contains(LineAddr::new(9)));
        assert!(n.invalidate(LineAddr::new(9)));
        assert!(!n.contains(LineAddr::new(9)));
        assert!(!n.invalidate(LineAddr::new(9)));
        assert_eq!(n.probe(LineAddr::new(9), AccessKind::Read), SramHit::Miss);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut n = node2();
        n.probe(LineAddr::new(1), AccessKind::Read);
        n.fill(LineAddr::new(1), AccessKind::Read);
        n.probe(LineAddr::new(1), AccessKind::Read);
        let (h, m) = n.l1d_stats();
        assert_eq!((h, m), (1, 1));
        n.reset_stats();
        assert_eq!(n.l1d_stats(), (0, 0));
        assert!(n.contains(LineAddr::new(1)));
    }
}
