//! MOESI coherence states.

/// A MOESI coherence state as tracked per (line, node) in the vault tag
/// and the duplicate-tag directory (3 bits in the paper's Fig. 9).
///
/// The MESI engine uses the subset {I, S, E, M}.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum State {
    /// Invalid: not present.
    #[default]
    I,
    /// Shared: clean, possibly multiple copies.
    S,
    /// Exclusive: clean, sole copy.
    E,
    /// Owned: dirty, this node must respond to coherence requests, other
    /// nodes may hold S copies (MOESI only).
    O,
    /// Modified: dirty, sole copy.
    M,
}

impl State {
    /// True when the line is present (any state but I).
    #[inline]
    pub const fn is_valid(self) -> bool {
        !matches!(self, State::I)
    }

    /// True when this copy is dirty with respect to memory.
    #[inline]
    pub const fn is_dirty(self) -> bool {
        matches!(self, State::M | State::O)
    }

    /// True when this node may write without a coherence transaction.
    #[inline]
    pub const fn can_write_silently(self) -> bool {
        matches!(self, State::M | State::E)
    }

    /// True when this node is responsible for supplying data
    /// (the owner in coherence terms: M, O, or E holder).
    #[inline]
    pub const fn is_ownerlike(self) -> bool {
        matches!(self, State::M | State::O | State::E)
    }

    /// Packs the state into a small integer for bit-packed per-way
    /// storage (the directory stores 3 bits per way, Fig. 9). `I` is 0,
    /// so zeroed storage reads as all-invalid.
    #[inline]
    pub const fn to_bits(self) -> u8 {
        self as u8
    }

    /// Inverse of [`State::to_bits`].
    ///
    /// # Panics
    ///
    /// Panics on a value [`State::to_bits`] never produces.
    #[inline]
    pub const fn from_bits(bits: u8) -> State {
        match bits {
            0 => State::I,
            1 => State::S,
            2 => State::E,
            3 => State::O,
            4 => State::M,
            _ => panic!("invalid packed coherence state"),
        }
    }
}

impl std::fmt::Display for State {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            State::I => "I",
            State::S => "S",
            State::E => "E",
            State::O => "O",
            State::M => "M",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity() {
        assert!(!State::I.is_valid());
        for s in [State::S, State::E, State::O, State::M] {
            assert!(s.is_valid());
        }
    }

    #[test]
    fn dirtiness_matches_moesi_semantics() {
        assert!(State::M.is_dirty());
        assert!(State::O.is_dirty());
        assert!(!State::E.is_dirty());
        assert!(!State::S.is_dirty());
        assert!(!State::I.is_dirty());
    }

    #[test]
    fn silent_write_rights() {
        assert!(State::M.can_write_silently());
        assert!(State::E.can_write_silently());
        assert!(!State::O.can_write_silently());
        assert!(!State::S.can_write_silently());
    }

    #[test]
    fn owner_like_states() {
        assert!(State::M.is_ownerlike());
        assert!(State::O.is_ownerlike());
        assert!(State::E.is_ownerlike());
        assert!(!State::S.is_ownerlike());
    }

    #[test]
    fn display_is_single_letter() {
        assert_eq!(State::O.to_string(), "O");
        assert_eq!(State::default(), State::I);
    }
}
