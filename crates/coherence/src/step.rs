//! Protocol step vocabulary exchanged between the coherence engines and
//! the timing simulator.
//!
//! Each access produces an [`AccessResult`]: the ordered critical-path
//! [`Step`]s the requesting core waits for, plus [`Background`] work
//! (fills, writebacks, directory updates) that occupies resources without
//! extending the load-to-use latency.

use silo_types::LineAddr;

/// Which level of the hierarchy ultimately served an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServedBy {
    /// Hit in the core's L1.
    L1,
    /// Hit in the core's private L2 (3-level configurations).
    L2,
    /// Hit in the core's own DRAM cache vault (SILO).
    LocalVault,
    /// Supplied by another core's vault via the directory (SILO).
    RemoteVault,
    /// Hit in the shared LLC (baseline NUCA SRAM/eDRAM or shared vaults),
    /// including cache-to-cache forwards through the LLC directory.
    SharedLlc,
    /// Served by main memory (optionally filtered by a conventional DRAM
    /// cache in the `Baseline+DRAM$` system — the split is made by the
    /// simulator, which owns that structure).
    Memory,
}

impl ServedBy {
    /// True for accesses that left the chip (LLC misses).
    pub const fn is_off_chip(self) -> bool {
        matches!(self, ServedBy::Memory)
    }
}

/// One critical-path protocol step. The simulator charges each step's
/// latency in order, reserving contended resources (banks, links) as it
/// goes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// One-way mesh traversal between two nodes.
    Net { from: usize, to: usize },
    /// DRAM access in a vault (TAD read, directory read, or forward).
    VaultAccess { node: usize },
    /// SRAM/eDRAM shared-LLC bank access (the simulator maps the bank to
    /// its mesh node and technology latency).
    LlcBank { bank: usize },
    /// Probe of a remote core's L1 (forward or invalidation ack).
    L1Probe { node: usize },
    /// Invalidation round from `home` to every node in `mask`
    /// (bit i = node i); performed in parallel, so the simulator charges
    /// the farthest round trip plus one probe.
    Invalidations { home: usize, mask: u64 },
    /// Directory metadata served by the on-chip directory cache instead of
    /// DRAM (Sec. V-C optimization).
    DirCacheHit,
    /// Main-memory access.
    Memory,
}

/// Off-critical-path work. The simulator reserves resources and accounts
/// energy for these but does not add their latency to the access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Background {
    /// Fill of the requester's vault; `dirty_writeback` is set when the
    /// evicted victim was M/O and must go to memory.
    VaultFill { node: usize, dirty_writeback: bool },
    /// Fill of a shared LLC bank; `dirty_writeback` set when the victim
    /// was dirty.
    LlcFill { bank: usize, dirty_writeback: bool },
    /// Directory metadata update at `home` touching `ways` entries
    /// (worst case N on a full-set transition, Sec. V-B).
    DirUpdate { home: usize, ways: u32 },
    /// Dirty L1 victim written back into the level below.
    L1Writeback { node: usize },
    /// Standalone main-memory write (dirty eviction).
    MemoryWrite,
}

/// The full description of one access as executed by a protocol engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessResult {
    /// Who served the data.
    pub served: Option<ServedBy>,
    /// Ordered critical-path steps.
    pub steps: Vec<Step>,
    /// Off-critical-path work.
    pub background: Vec<Background>,
    /// True when this access reached the LLC level (an "LLC access" in
    /// the paper's Fig. 3/11 sense, i.e. it missed the on-chip SRAM
    /// levels).
    pub llc_access: bool,
    /// The line involved (for sharing classification and the DRAM cache
    /// layer in the simulator).
    pub line: LineAddr,
    /// True when the demand access was a write.
    pub is_write: bool,
}

impl AccessResult {
    /// Clears the result for reuse without freeing buffers.
    pub fn clear(&mut self) {
        self.served = None;
        self.steps.clear();
        self.background.clear();
        self.llc_access = false;
        self.line = LineAddr::new(0);
        self.is_write = false;
    }

    /// The final service level.
    ///
    /// # Panics
    ///
    /// Panics if the engine never set it (engine bug).
    pub fn served_by(&self) -> ServedBy {
        self.served.expect("engine must classify every access")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn served_by_classification() {
        assert!(ServedBy::Memory.is_off_chip());
        assert!(!ServedBy::LocalVault.is_off_chip());
        assert!(!ServedBy::SharedLlc.is_off_chip());
    }

    #[test]
    fn clear_resets_everything() {
        let mut r = AccessResult {
            served: Some(ServedBy::L1),
            steps: vec![Step::Memory],
            background: vec![Background::MemoryWrite],
            llc_access: true,
            line: LineAddr::new(9),
            is_write: true,
        };
        r.clear();
        assert!(r.served.is_none());
        assert!(r.steps.is_empty());
        assert!(r.background.is_empty());
        assert!(!r.llc_access);
        assert!(!r.is_write);
    }

    #[test]
    #[should_panic(expected = "classify")]
    fn served_by_panics_when_unset() {
        AccessResult::default().served_by();
    }
}
