//! Cache-coherence protocols for the SILO simulator.
//!
//! Two complete protocol engines (Sec. V-B):
//!
//! * [`PrivateMoesi`] — SILO's all-private hierarchy: per-core L1s (and
//!   optionally L2s) backed by a private, inclusive, direct-mapped DRAM
//!   cache vault, kept coherent by a directory-based MOESI protocol whose
//!   duplicate-tag directory metadata lives in the DRAM cache of an
//!   address-interleaved home node. The O state lets a dirty block be
//!   supplied core-to-core without a main-memory writeback.
//! * [`SharedMesi`] — the conventional baseline: per-core L1s (and
//!   optionally L2s) over a shared, banked, non-inclusive NUCA LLC with an
//!   embedded MESI directory tracking L1 copies.
//!
//! Engines are *functional + structural*: they own the cache arrays,
//! perform all state transitions, and emit a [`step::AccessResult`]
//! describing the critical-path protocol steps and background work of each
//! access. The timing simulator (`silo-sim`) assigns cycles to those steps
//! using the mesh, bank reservations, and system latencies.

#![forbid(unsafe_code)]

pub mod directory;
pub mod mesi;
pub mod moesi;
pub mod node;
pub mod state;
pub mod stats;
pub mod step;

pub use directory::{DirView, DuplicateTagDirectory};
pub use mesi::{SharedMesi, SharedMesiConfig};
pub use moesi::{PrivateMoesi, PrivateMoesiConfig};
pub use node::{Node, NodeSpec};
pub use state::State;
pub use stats::CoherenceStats;
pub use step::{AccessResult, Background, ServedBy, Step};

/// Labels of the engine-step sub-phases both engines attribute their
/// access work to under the hot-loop profiler, in bucket order: SRAM/
/// vault lookup, directory & coherence transitions, cache fills, and
/// victim/writeback handling.
pub const ENGINE_SUBPHASES: [&str; 4] = ["l1_lookup", "directory", "fill", "writeback"];

/// [`ENGINE_SUBPHASES`] bucket: SRAM probe and local vault lookup.
pub const EP_L1: usize = 0;
/// [`ENGINE_SUBPHASES`] bucket: directory lookups, state transitions,
/// upgrades, and invalidations.
pub const EP_DIR: usize = 1;
/// [`ENGINE_SUBPHASES`] bucket: vault/LLC/SRAM fills.
pub const EP_FILL: usize = 2;
/// [`ENGINE_SUBPHASES`] bucket: victim eviction and writeback handling.
pub const EP_WB: usize = 3;

/// The concrete lap probe engines attribute sub-phases into — one
/// bucket per [`ENGINE_SUBPHASES`] entry. Concrete (not generic) so
/// `access_into_probed` stays object-safe on `dyn`-boxed protocols.
pub type EngineProbe = silo_obs::LapProbe<4>;
