//! Cache-coherence protocols for the SILO simulator.
//!
//! Two complete protocol engines (Sec. V-B):
//!
//! * [`PrivateMoesi`] — SILO's all-private hierarchy: per-core L1s (and
//!   optionally L2s) backed by a private, inclusive, direct-mapped DRAM
//!   cache vault, kept coherent by a directory-based MOESI protocol whose
//!   duplicate-tag directory metadata lives in the DRAM cache of an
//!   address-interleaved home node. The O state lets a dirty block be
//!   supplied core-to-core without a main-memory writeback.
//! * [`SharedMesi`] — the conventional baseline: per-core L1s (and
//!   optionally L2s) over a shared, banked, non-inclusive NUCA LLC with an
//!   embedded MESI directory tracking L1 copies.
//!
//! Engines are *functional + structural*: they own the cache arrays,
//! perform all state transitions, and emit a [`step::AccessResult`]
//! describing the critical-path protocol steps and background work of each
//! access. The timing simulator (`silo-sim`) assigns cycles to those steps
//! using the mesh, bank reservations, and system latencies.

#![forbid(unsafe_code)]

pub mod directory;
pub mod mesi;
pub mod moesi;
pub mod node;
pub mod state;
pub mod stats;
pub mod step;

pub use directory::{DirView, DuplicateTagDirectory};
pub use mesi::{SharedMesi, SharedMesiConfig};
pub use moesi::{PrivateMoesi, PrivateMoesiConfig};
pub use node::{Node, NodeSpec};
pub use state::State;
pub use stats::CoherenceStats;
pub use step::{AccessResult, Background, ServedBy, Step};
