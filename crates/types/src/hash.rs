//! A fast, dependency-free hasher for the simulator's hot-path tables.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, which is
//! DoS-resistant but costs tens of cycles per lookup — pure overhead
//! for a simulator hashing its own deterministic line addresses. This
//! module provides the multiply-and-rotate scheme used by the Firefox
//! and rustc `FxHasher` (public-domain algorithm, reimplemented here so
//! the workspace stays dependency-free): one wrapping multiply per
//! 8-byte word, no per-instance state, no randomization.
//!
//! Determinism note: the hasher is fixed across runs and platforms of
//! the same pointer width, but *simulated results must never depend on
//! hash-table iteration order anyway* — that invariant (already
//! required under std's randomized SipHash seeds) is what makes
//! swapping the hasher bit-identity-safe.
//!
//! ```
//! use silo_types::hash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(0xdead_beef, "line");
//! assert_eq!(m.get(&0xdead_beef), Some(&"line"));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Zero-sized `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// An [`FxHashMap`] pre-sized for `capacity` entries.
pub fn fx_map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash word mixer: rotate, xor in the word, multiply by an
/// odd constant (the 64-bit golden-ratio-derived seed `rustc` uses).
#[derive(Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (word, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(word.try_into().expect("8-byte chunk")));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (word, rest) = bytes.split_at(4);
            self.add_to_hash(u64::from(u32::from_le_bytes(
                word.try_into().expect("4-byte chunk"),
            )));
            bytes = rest;
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_keys_hash_equal_and_runs_are_stable() {
        assert_eq!(hash_of(&0xdead_beef_u64), hash_of(&0xdead_beef_u64));
        assert_eq!(hash_of(&"line"), hash_of(&"line"));
        // No per-instance randomization: two independent builders agree.
        let a = FxBuildHasher::default().hash_one(42u64);
        let b = FxBuildHasher::default().hash_one(42u64);
        assert_eq!(a, b);
    }

    #[test]
    fn nearby_line_addresses_spread_across_buckets() {
        // Sequential line numbers are the common key pattern; the
        // multiply must spread them even before HashMap's bucket mask.
        let mut buckets = [0u32; 16];
        for i in 0u64..1600 {
            buckets[(hash_of(&i) >> 60) as usize] += 1;
        }
        for &b in &buckets {
            assert!(b > 40, "high-bit bucket underpopulated: {buckets:?}");
        }
    }

    #[test]
    fn byte_stream_chunking_covers_all_widths() {
        // 8-byte, 4-byte, and tail paths all feed the mix; distinct
        // inputs of awkward lengths should not collide trivially.
        let inputs: Vec<&[u8]> = vec![b"", b"a", b"abc", b"abcd", b"abcdefg", b"abcdefgh1234"];
        let hashes: Vec<u64> = inputs
            .iter()
            .map(|b| {
                let mut h = FxHasher::default();
                h.write(b);
                h.finish()
            })
            .collect();
        for i in 0..hashes.len() {
            for j in (i + 1)..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "{:?} vs {:?}", inputs[i], inputs[j]);
            }
        }
    }

    #[test]
    fn map_and_set_aliases_work_with_presizing() {
        let mut m = fx_map_with_capacity::<u64, u64>(100);
        assert!(m.capacity() >= 100);
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&99), Some(&198));
        let mut s: FxHashSet<&str> = FxHashSet::default();
        s.insert("x");
        assert!(s.contains("x"));
    }
}
