//! Common vocabulary types for the SILO simulation workspace.
//!
//! This crate defines the newtypes shared by every other crate in the
//! reproduction of *"Farewell My Shared LLC! A Case for Private Die-Stacked
//! DRAM Caches for Servers"* (MICRO'18): physical addresses, cache-line
//! addresses, core identifiers, cycle counts, byte sizes, and the memory
//! reference record exchanged between the workload generators and the
//! timing simulator.
//!
//! # Examples
//!
//! ```
//! use silo_types::{Address, ByteSize, CoreId, LINE_SIZE};
//!
//! let addr = Address::new(0x1234_5678);
//! let line = addr.line();
//! assert_eq!(line.base_address().as_u64() % LINE_SIZE as u64, 0);
//! assert_eq!(ByteSize::from_mib(8).as_bytes(), 8 * 1024 * 1024);
//! assert_eq!(CoreId::new(3).as_usize(), 3);
//! ```

#![forbid(unsafe_code)]

pub mod hash;
pub mod sha;
pub mod stats;

use std::fmt;

/// The workspace version, shared by every crate (they all inherit
/// `workspace.package.version`). Surfaced as `silo-sim --version`, the
/// daemon's `Server:` header, and the `/status` endpoint — the single
/// source of truth instead of scattered literals.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Size of a cache line in bytes (64B throughout the paper, Table II).
pub const LINE_SIZE: usize = 64;

/// log2 of [`LINE_SIZE`].
pub const LINE_SHIFT: u32 = 6;

/// A physical byte address in the simulated machine.
///
/// Addresses are plain 64-bit values; the workload generators carve the
/// address space into disjoint regions using the high bits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw 64-bit value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw 64-bit value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the cache line containing this address.
    #[inline]
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Address({:#x})", self.0)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

/// A cache-line address: a byte address shifted right by [`LINE_SHIFT`].
///
/// All caches, directories and coherence machinery operate on line
/// addresses; byte offsets within a line never matter to the timing model.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw line number.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the first byte address of the line.
    #[inline]
    pub const fn base_address(self) -> Address {
        Address(self.0 << LINE_SHIFT)
    }

    /// Returns the page number of this line for the given page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is smaller than a line or not a power of two.
    #[inline]
    pub fn page(self, page_bytes: usize) -> u64 {
        assert!(
            page_bytes >= LINE_SIZE && page_bytes.is_power_of_two(),
            "page size must be a power of two of at least one line"
        );
        let lines_per_page = (page_bytes / LINE_SIZE) as u64;
        self.0 / lines_per_page
    }

    /// Deterministically scrambles the line address for interleaving
    /// decisions, decorrelating home-node selection from low-order
    /// allocation patterns.
    #[inline]
    pub fn scramble(self) -> u64 {
        // SplitMix64 finalizer: a fixed, high-quality 64-bit mix.
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<Address> for LineAddr {
    fn from(addr: Address) -> Self {
        addr.line()
    }
}

/// Identifier of a processor core (0-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core id.
    #[inline]
    pub const fn new(id: usize) -> Self {
        CoreId(id as u16)
    }

    /// Returns the id as a usize (for indexing per-core state).
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<usize> for CoreId {
    fn from(id: usize) -> Self {
        CoreId::new(id)
    }
}

/// A duration or point in time measured in CPU clock cycles.
///
/// The simulated machine runs at a fixed 2.0 GHz (Table II), so one cycle
/// is 0.5 ns.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// Returns the raw count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Converts a duration in nanoseconds to cycles at the given core
    /// frequency in GHz, rounding to the nearest cycle.
    #[inline]
    pub fn from_ns(ns: f64, ghz: f64) -> Self {
        Cycles((ns * ghz).round() as u64)
    }

    /// Converts this cycle count back to nanoseconds at `ghz`.
    #[inline]
    pub fn as_ns(self, ghz: f64) -> f64 {
        self.0 as f64 / ghz
    }

    /// Returns the larger of two cycle counts.
    #[inline]
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl std::ops::Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl std::ops::Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl std::iter::Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

/// A storage size in bytes with convenient MiB/GiB constructors.
///
/// Used for cache capacities, working-set sizes and DRAM geometry.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size from a raw byte count.
    #[inline]
    pub const fn from_bytes(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a size from kibibytes.
    #[inline]
    pub const fn from_kib(kib: u64) -> Self {
        ByteSize(kib * 1024)
    }

    /// Creates a size from mebibytes.
    #[inline]
    pub const fn from_mib(mib: u64) -> Self {
        ByteSize(mib * 1024 * 1024)
    }

    /// Creates a size from gibibytes.
    #[inline]
    pub const fn from_gib(gib: u64) -> Self {
        ByteSize(gib * 1024 * 1024 * 1024)
    }

    /// Returns the raw byte count.
    #[inline]
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Returns the size in mebibytes as a float.
    #[inline]
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Returns the number of 64-byte cache lines this size holds.
    #[inline]
    pub const fn lines(self) -> u64 {
        self.0 / LINE_SIZE as u64
    }

    /// Divides the size by an integer factor (used by the capacity-scaling
    /// knob of the simulator), flooring at one cache line.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    #[inline]
    pub fn scaled_down(self, factor: u64) -> ByteSize {
        assert!(factor > 0, "scale factor must be positive");
        ByteSize((self.0 / factor).max(LINE_SIZE as u64))
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1 << 30 && b % (1 << 30) == 0 {
            write!(f, "{}GiB", b >> 30)
        } else if b >= 1 << 20 && b % (1 << 20) == 0 {
            write!(f, "{}MiB", b >> 20)
        } else if b >= 1 << 10 && b % (1 << 10) == 0 {
            write!(f, "{}KiB", b >> 10)
        } else {
            write!(f, "{}B", b)
        }
    }
}

/// The kind of a memory reference issued by a core.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// Instruction fetch (misses in the L1-I).
    IFetch,
    /// Data load.
    Read,
    /// Data store.
    Write,
}

impl AccessKind {
    /// True for stores.
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }

    /// True for instruction fetches.
    #[inline]
    pub const fn is_ifetch(self) -> bool {
        matches!(self, AccessKind::IFetch)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::IFetch => "ifetch",
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        };
        f.write_str(s)
    }
}

/// One memory reference produced by a workload generator.
///
/// `gap_instructions` is the number of instructions retired between the
/// previous reference from this core and this one; the core model converts
/// it to compute cycles via the workload's base CPI.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemRef {
    /// Line touched by the reference.
    pub line: LineAddr,
    /// Load / store / instruction fetch.
    pub kind: AccessKind,
    /// Instructions retired since the previous reference.
    pub gap_instructions: u32,
    /// True if this reference depends on the previous in-flight miss
    /// (pointer-chasing behaviour; serialises misses).
    pub dependent: bool,
}

impl MemRef {
    /// Convenience constructor for an independent data read with no
    /// preceding compute gap; useful in tests.
    pub fn read(line: LineAddr) -> Self {
        MemRef {
            line,
            kind: AccessKind::Read,
            gap_instructions: 0,
            dependent: false,
        }
    }

    /// Convenience constructor for an independent data write with no
    /// preceding compute gap; useful in tests.
    pub fn write(line: LineAddr) -> Self {
        MemRef {
            line,
            kind: AccessKind::Write,
            gap_instructions: 0,
            dependent: false,
        }
    }
}

/// Geometric mean of a slice of positive values.
///
/// Used throughout the evaluation to aggregate normalized performance, as
/// the paper does ("geomean of scale-out workloads").
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_line_roundtrip() {
        let a = Address::new(0xdead_beef);
        let l = a.line();
        assert_eq!(l.as_u64(), 0xdead_beef >> LINE_SHIFT);
        assert_eq!(l.base_address().as_u64(), (0xdead_beef >> 6) << 6);
    }

    #[test]
    fn line_page_mapping() {
        let l = LineAddr::new(100);
        // 4 KiB page = 64 lines.
        assert_eq!(l.page(4096), 1);
        assert_eq!(LineAddr::new(63).page(4096), 0);
        assert_eq!(LineAddr::new(64).page(4096), 1);
    }

    #[test]
    #[should_panic(expected = "page size")]
    fn line_page_rejects_non_power_of_two() {
        LineAddr::new(0).page(3000);
    }

    #[test]
    fn scramble_is_deterministic_and_spreads() {
        let a = LineAddr::new(1).scramble();
        let b = LineAddr::new(2).scramble();
        assert_eq!(a, LineAddr::new(1).scramble());
        assert_ne!(a, b);
        // Consecutive lines should spread over 16 buckets.
        let mut buckets = [0u32; 16];
        for i in 0..1600 {
            buckets[(LineAddr::new(i).scramble() % 16) as usize] += 1;
        }
        for &b in &buckets {
            assert!(b > 50, "bucket underpopulated: {buckets:?}");
        }
    }

    #[test]
    fn cycles_ns_conversion() {
        // 50 ns at 2 GHz = 100 cycles.
        assert_eq!(Cycles::from_ns(50.0, 2.0), Cycles(100));
        assert_eq!(Cycles(100).as_ns(2.0), 50.0);
    }

    #[test]
    fn cycles_arithmetic() {
        assert_eq!(Cycles(3) + Cycles(4), Cycles(7));
        assert_eq!(Cycles(10) - Cycles(4), Cycles(6));
        assert_eq!(Cycles(3) * 4, Cycles(12));
        assert_eq!(Cycles(3).max(Cycles(9)), Cycles(9));
        assert_eq!(Cycles(3).saturating_sub(Cycles(9)), Cycles(0));
        let s: Cycles = [Cycles(1), Cycles(2)].into_iter().sum();
        assert_eq!(s, Cycles(3));
    }

    #[test]
    fn bytesize_constructors() {
        assert_eq!(ByteSize::from_kib(64).as_bytes(), 65536);
        assert_eq!(ByteSize::from_mib(8).lines(), 8 * 1024 * 1024 / 64);
        assert_eq!(ByteSize::from_gib(1).as_mib(), 1024.0);
        assert_eq!(format!("{}", ByteSize::from_mib(256)), "256MiB");
        assert_eq!(format!("{}", ByteSize::from_gib(8)), "8GiB");
        assert_eq!(format!("{}", ByteSize::from_bytes(100)), "100B");
    }

    #[test]
    fn bytesize_scaling_floors_at_one_line() {
        assert_eq!(
            ByteSize::from_mib(256).scaled_down(64),
            ByteSize::from_mib(4)
        );
        assert_eq!(
            ByteSize::from_bytes(64).scaled_down(1000),
            ByteSize::from_bytes(64)
        );
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        let g = geomean(&[1.05, 1.54, 1.37, 1.29, 1.2]);
        assert!(g > 1.2 && g < 1.4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::IFetch.is_ifetch());
        assert_eq!(AccessKind::Read.to_string(), "read");
    }

    #[test]
    fn memref_constructors() {
        let r = MemRef::read(LineAddr::new(7));
        assert_eq!(r.kind, AccessKind::Read);
        assert!(!r.dependent);
        let w = MemRef::write(LineAddr::new(7));
        assert!(w.kind.is_write());
    }
}
