//! Lightweight statistics primitives used by every simulated component.
//!
//! The simulator aggregates everything through [`Counter`]s (monotonically
//! increasing event counts) and [`Histogram`]s (latency distributions).
//! They are intentionally plain `u64`-based structures: the simulator is
//! single-threaded per run and parallelism happens across runs.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use silo_types::stats::Counter;
///
/// let mut hits = Counter::new();
/// hits.inc();
/// hits.add(2);
/// assert_eq!(hits.get(), 3);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets the counter to zero (used between the warmup and measurement
    /// phases of a sample).
    #[inline]
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Ratio helper that tolerates a zero denominator (returns 0.0).
#[inline]
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A fixed-bucket histogram of cycle latencies.
///
/// Two bucketings are supported: [`Histogram::new`] builds linear buckets
/// of a fixed width plus one overflow bucket, and [`Histogram::log2`]
/// builds logarithmic (power-of-two) buckets covering the whole `u64`
/// range — the telemetry subsystem's default, since latencies span from a
/// handful of SRAM cycles to memory round trips. Tracks count, sum, and
/// max so means remain exact even when samples land in the overflow
/// bucket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Linear bucket width; unused (1) when `log2` is set.
    bucket_width: u64,
    /// Log2 bucketing: bucket 0 holds value 0, bucket `b` holds
    /// `[2^(b-1), 2^b)`.
    log2: bool,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `n_buckets` linear buckets of `bucket_width`
    /// plus an overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `n_buckets` is zero.
    pub fn new(bucket_width: u64, n_buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        assert!(n_buckets > 0, "need at least one bucket");
        Histogram {
            bucket_width,
            log2: false,
            buckets: vec![0; n_buckets + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Creates a log-bucketed histogram: bucket 0 holds the value 0 and
    /// bucket `b` holds `[2^(b-1), 2^b)`, so 65 buckets cover the whole
    /// `u64` range with constant relative resolution — no overflow bucket
    /// and no tuning.
    pub fn log2() -> Self {
        Histogram {
            bucket_width: 1,
            log2: true,
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Bucket index of a value under the active bucketing (clamped to the
    /// last bucket for linear overflow).
    fn bucket_of(&self, value: u64) -> usize {
        let idx = if self.log2 {
            (u64::BITS - value.leading_zeros()) as usize
        } else {
            (value / self.bucket_width) as usize
        };
        idx.min(self.buckets.len() - 1)
    }

    /// Inclusive-lower / exclusive-upper value bounds of a bucket. The
    /// linear overflow bucket is bounded above by the observed maximum.
    fn bucket_bounds(&self, idx: usize) -> (u64, u64) {
        if self.log2 {
            if idx == 0 {
                (0, 1)
            } else {
                let lo = 1u64 << (idx - 1);
                let hi = if idx >= 64 { u64::MAX } else { 1u64 << idx };
                (lo, hi)
            }
        } else {
            let lo = idx as u64 * self.bucket_width;
            if idx == self.buckets.len() - 1 {
                (lo, self.max.max(lo).saturating_add(1))
            } else {
                (lo, lo + self.bucket_width)
            }
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = self.bucket_of(value);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all recorded samples.
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// Raw per-bucket sample counts, in bucket-index order. Combined
    /// with [`Histogram::bucket_upper_bound`] this is enough to render
    /// the histogram in external formats (e.g. Prometheus cumulative
    /// `le` buckets).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Largest value a sample in bucket `idx` can take (inclusive).
    /// For log2 bucketing this is exact for integer samples: bucket `b`
    /// holds `[2^(b-1), 2^b)`, so its inclusive upper bound is
    /// `2^b - 1`.
    pub fn bucket_upper_bound(&self, idx: usize) -> u64 {
        self.bucket_bounds(idx).1.saturating_sub(1)
    }

    /// Mean of recorded samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        ratio(self.sum, self.count)
    }

    /// Largest recorded sample.
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// Approximate percentile (0.0..=1.0), linearly interpolated within
    /// the bucket containing the target rank. Returning a point inside
    /// the bucket instead of its upper edge keeps tail estimates honest
    /// for wide high buckets (log2 buckets double in width), and the
    /// estimate never exceeds the observed maximum.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0,1]");
        if self.count == 0 {
            return 0.0;
        }
        let target = (p * self.count as f64).ceil().max(1.0);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            if (seen + b) as f64 >= target {
                let (lo, hi) = self.bucket_bounds(i);
                let within = (target - seen as f64) / b as f64;
                let est = lo as f64 + (hi - lo) as f64 * within;
                return est.min(self.max as f64);
            }
            seen += b;
        }
        self.max as f64
    }

    /// The pre-interpolation percentile: the upper edge of the bucket
    /// containing the target rank. Kept solely so the legacy
    /// `silo-bench/v1` `llc_latency` fields stay bit-identical across
    /// releases; new code should use [`Histogram::percentile`].
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile_upper_edge(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0,1]");
        if self.count == 0 {
            return 0;
        }
        let target = (p * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return if self.log2 {
                    self.bucket_bounds(i).1
                } else {
                    ((i as u64) + 1) * self.bucket_width
                };
            }
        }
        self.max
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.max = 0;
    }
}

/// Running mean/min/max accumulator for floating-point series
/// (e.g. per-sample UIPC values under SMARTS-style sampling).
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population standard deviation, or 0.0 for fewer than two samples.
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let var = (self.sum_sq - self.sum * self.sum / n) / n;
        var.max(0.0).sqrt()
    }

    /// Smallest observation (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(format!("{}", Counter::new()), "0");
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio(5, 0), 0.0);
        assert_eq!(ratio(5, 10), 0.5);
    }

    #[test]
    fn histogram_mean_and_max() {
        let mut h = Histogram::new(10, 10);
        for v in [5, 15, 25, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 261.25).abs() < 1e-9);
    }

    #[test]
    fn histogram_percentile_monotone() {
        let mut h = Histogram::new(1, 100);
        for v in 0..100 {
            h.record(v);
        }
        let p50 = h.percentile(0.5);
        let p90 = h.percentile(0.9);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        // Interpolated: the rank-50 sample is 49, and interpolation stays
        // within its unit bucket rather than jumping to the upper edge.
        assert!((45.0..=55.0).contains(&p50), "p50={p50}");
        assert!(p99 <= h.max() as f64);
    }

    #[test]
    fn histogram_percentile_interpolates_within_wide_buckets() {
        // 100 samples all equal to 1000 land in one wide bucket
        // ([960, 1024) at width 64). The old upper-edge percentile said
        // 1024 for every quantile; interpolation must not exceed the
        // observed maximum.
        let mut h = Histogram::new(64, 64);
        for _ in 0..100 {
            h.record(1000);
        }
        assert!(h.percentile(0.99) <= 1000.0);
        assert_eq!(h.percentile_upper_edge(0.99), 1024);
    }

    #[test]
    fn histogram_percentile_tracks_exact_sorted_within_a_bucket() {
        // Interpolated percentiles of a log2 histogram must stay within
        // one bucket of the exact sorted-order percentile.
        let mut h = Histogram::log2();
        let mut exact: Vec<u64> = (0..500u64).map(|i| (i * 37) % 700).collect();
        for &v in &exact {
            h.record(v);
        }
        exact.sort_unstable();
        for p in [0.25, 0.5, 0.9, 0.95, 0.99] {
            let rank = ((p * exact.len() as f64).ceil() as usize).max(1) - 1;
            let truth = exact[rank] as f64;
            let est = h.percentile(p);
            // A log2 bucket spans [2^(b-1), 2^b), so its width never
            // exceeds the values it holds: the estimate can be off by at
            // most the true value itself (and the old upper-edge rule
            // could not promise even that for the overflow bucket).
            let tolerance = truth.max(1.0);
            assert!(
                (est - truth).abs() <= tolerance,
                "p{p}: estimate {est} vs exact {truth}"
            );
            assert!(est <= h.max() as f64);
        }
    }

    #[test]
    fn log2_histogram_buckets_by_bit_width() {
        let mut h = Histogram::log2();
        for v in [0, 1, 2, 3, 4, 1_000_000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), u64::MAX);
        // Every quantile stays within the recorded range.
        assert!(h.percentile(0.01) <= h.percentile(0.99));
    }

    #[test]
    fn histogram_reset() {
        let mut h = Histogram::new(10, 4);
        h.record(3);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0.0);
        assert_eq!(h.percentile_upper_edge(0.5), 0);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn histogram_rejects_zero_width() {
        Histogram::new(0, 4);
    }

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.std_dev() - (1.25f64).sqrt()).abs() < 1e-9);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn summary_empty_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }
}
