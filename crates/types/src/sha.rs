//! A dependency-free SHA-256 for content addressing.
//!
//! The serve subsystem keys its on-disk result cache by a canonical
//! hash of everything that determines a sweep point's row — scenario
//! parameters, system set, seed, and (for replays) the trace file's
//! bytes. Those keys become file names shared between processes and
//! across daemon restarts, so the hash must be cryptographic-strength
//! collision-resistant and stable across platforms and compilers —
//! properties the in-repo [`crate::hash::FxHasher`] (a 64-bit hot-path
//! table hasher) deliberately does not provide. This is the standard
//! FIPS 180-4 construction in safe Rust, verified against the NIST
//! test vectors below.
//!
//! ```
//! use silo_types::sha::sha256_hex;
//!
//! assert_eq!(
//!     sha256_hex(b"abc"),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
//! );
//! ```

/// The eight initial hash values: fractional parts of the square roots
/// of the first eight primes.
const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// The 64 round constants: fractional parts of the cube roots of the
/// first 64 primes.
const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// A streaming SHA-256 hasher: feed bytes with [`Sha256::update`], then
/// take the digest with [`Sha256::finish`] or [`Sha256::finish_hex`].
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length in bytes (the padding encodes it in bits).
    length: u64,
    /// Partial block awaiting 64 bytes.
    block: [u8; 64],
    filled: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            length: 0,
            block: [0; 64],
            filled: 0,
        }
    }

    /// Absorbs `bytes`; calls may split the message anywhere.
    pub fn update(&mut self, mut bytes: &[u8]) {
        self.length = self.length.wrapping_add(bytes.len() as u64);
        if self.filled > 0 {
            let need = 64 - self.filled;
            let take = need.min(bytes.len());
            self.block[self.filled..self.filled + take].copy_from_slice(&bytes[..take]);
            self.filled += take;
            bytes = &bytes[take..];
            if self.filled < 64 {
                return;
            }
            let block = self.block;
            self.compress(&block);
            self.filled = 0;
        }
        while bytes.len() >= 64 {
            let (block, rest) = bytes.split_at(64);
            self.compress(block.try_into().expect("64-byte chunk"));
            bytes = rest;
        }
        self.block[..bytes.len()].copy_from_slice(bytes);
        self.filled = bytes.len();
    }

    /// Pads, finalizes, and returns the 32-byte digest.
    pub fn finish(mut self) -> [u8; 32] {
        let bit_length = self.length.wrapping_mul(8);
        self.update(&[0x80]);
        while self.filled != 56 {
            self.update(&[0]);
        }
        // Bypass update() for the length word: self.length no longer
        // matters and the block is exactly full after these 8 bytes.
        self.block[56..].copy_from_slice(&bit_length.to_be_bytes());
        let block = self.block;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// The digest as 64 lowercase hex characters — the cache-key form.
    pub fn finish_hex(self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.finish() {
            s.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble"));
            s.push(char::from_digit(u32::from(b & 0xf), 16).expect("nibble"));
        }
        s
    }

    /// One compression round over a 64-byte block.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte word"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot digest of `bytes` as 64 lowercase hex characters.
pub fn sha256_hex(bytes: &[u8]) -> String {
    let mut h = Sha256::new();
    h.update(bytes);
    h.finish_hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nist_test_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        // Two-block message (56 bytes forces padding into a second block).
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        assert_eq!(
            sha256_hex(b"The quick brown fox jumps over the lazy dog"),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"
        );
    }

    #[test]
    fn streaming_matches_one_shot_at_every_split() {
        let msg: Vec<u8> = (0u16..1000).map(|i| (i % 251) as u8).collect();
        let whole = sha256_hex(&msg);
        for split in [0, 1, 55, 56, 63, 64, 65, 128, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&msg[..split]);
            h.update(&msg[split..]);
            assert_eq!(h.finish_hex(), whole, "split at {split}");
        }
        // Byte-at-a-time.
        let mut h = Sha256::new();
        for b in &msg {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finish_hex(), whole);
    }

    #[test]
    fn million_a_vector() {
        // The classic long-message NIST vector.
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finish_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn hex_is_lowercase_and_64_chars() {
        let hex = sha256_hex(b"silo");
        assert_eq!(hex.len(), 64);
        assert!(hex
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }
}
