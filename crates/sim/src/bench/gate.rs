//! Noise-aware perf-regression gate over the hot-loop matrix.
//!
//! `silo-sim bench --gate BASE.json` runs the tracked throughput matrix
//! several times (repetitions interleaved at whole-matrix granularity,
//! so a load spike on the host hits every row the same way rather than
//! one row's entire sample), takes the **median** refs/sec per row, and
//! compares it against the matching row of a committed
//! `silo-hotloop/v1` snapshot. The pass/fail threshold is not a fixed
//! percentage: each row's tolerance is derived from the *observed*
//! spread of its own repetitions — a noisy host widens its own error
//! bars instead of producing flaky verdicts — floored at a minimum
//! tolerance so a near-zero-spread run still absorbs measurement
//! granularity.
//!
//! Everything downstream of the timed runs is a pure function of the
//! collected numbers ([`evaluate`]), so the classification logic is
//! unit-tested with synthetic repetitions: an injected slowdown must be
//! flagged `regress`, and a self-comparison (A/A) must come back
//! `pass`. The verdict renders as a table and as the machine-readable
//! `silo-gate/v1` document ([`gate_json`]).

use crate::bench::throughput::{ThroughputRow, ThroughputSpec};
use crate::json::Json;

/// Version tag of the gate-verdict schema (`bench --gate-json`).
pub const SCHEMA_GATE: &str = "silo-gate/v1";

/// Default number of interleaved repetitions (`--gate-reps`).
pub const DEFAULT_GATE_REPS: usize = 5;

/// Default tolerance floor: even a zero-spread run tolerates this much
/// slowdown before flagging a regression.
pub const DEFAULT_MIN_TOLERANCE: f64 = 0.05;

/// Classification of one row (or the geomean) against the baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// At or above the baseline.
    Pass,
    /// Below the baseline, but within the noise tolerance.
    Noise,
    /// Below the baseline by more than the tolerance.
    Regress,
}

impl Verdict {
    /// Classifies a now/base ratio against a tolerance.
    pub fn classify(ratio: f64, tolerance: f64) -> Verdict {
        if ratio >= 1.0 {
            Verdict::Pass
        } else if ratio >= 1.0 - tolerance {
            Verdict::Noise
        } else {
            Verdict::Regress
        }
    }

    /// The schema string (`"pass"`, `"noise"`, `"regress"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Noise => "noise",
            Verdict::Regress => "regress",
        }
    }
}

/// One matrix row's gate result.
#[derive(Clone, Debug)]
pub struct RowVerdict {
    /// Registry name of the system.
    pub system: String,
    /// Workload name.
    pub workload: String,
    /// The baseline snapshot's refs/sec for this row.
    pub base_rps: f64,
    /// Median refs/sec over the repetitions.
    pub median_rps: f64,
    /// Relative spread of the repetitions: `(max - min) / median`.
    pub spread: f64,
    /// The tolerance used: `max(spread, min_tolerance)`.
    pub tolerance: f64,
    /// `median_rps / base_rps`.
    pub ratio: f64,
    /// The row's classification.
    pub verdict: Verdict,
}

/// The full gate result: per-row verdicts plus the geomean verdict.
#[derive(Clone, Debug)]
pub struct GateReport {
    /// One verdict per matrix row with a baseline counterpart, in
    /// matrix order. Rows absent from the baseline are skipped.
    pub rows: Vec<RowVerdict>,
    /// Geometric mean of the row ratios.
    pub geomean_ratio: f64,
    /// Mean of the row tolerances (the geomean averages row noise, so
    /// its error bar is the average of the rows').
    pub geomean_tolerance: f64,
    /// Classification of the geomean — the gate's overall verdict.
    pub verdict: Verdict,
    /// Number of repetitions behind each median.
    pub reps: usize,
    /// The tolerance floor in effect.
    pub min_tolerance: f64,
    /// Label of the baseline snapshot compared against.
    pub base_label: String,
}

impl GateReport {
    /// True when the overall verdict is a regression (the CLI's exit
    /// code; CI consumes it informationally).
    pub fn regressed(&self) -> bool {
        self.verdict == Verdict::Regress
    }
}

/// Median of a sample (mean of the middle two for even sizes).
fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty sample");
    values.sort_by(|a, b| a.partial_cmp(b).expect("refs/sec is finite"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// The last snapshot in a `silo-hotloop/v1` snapshot list whose matrix
/// dimensions (cores, refs_per_core, seed) match `spec` — the most
/// recent comparable measurement in a trajectory file.
pub fn select_snapshot<'a>(snapshots: &'a [Json], spec: &ThroughputSpec) -> Option<&'a Json> {
    snapshots.iter().rev().find(|s| {
        s.get("cores").and_then(Json::as_u64) == Some(spec.cores as u64)
            && s.get("refs_per_core").and_then(Json::as_u64) == Some(spec.refs_per_core as u64)
            && s.get("seed").and_then(Json::as_u64) == Some(spec.seed)
    })
}

/// Classifies repeated matrix runs against a baseline snapshot. Pure:
/// all timing has already happened, so this is unit-testable with
/// synthetic repetitions.
///
/// Every repetition must contain the same rows in the same order (the
/// runner guarantees this — the matrix is fixed). Rows without a
/// counterpart in the baseline snapshot are skipped.
///
/// # Panics
///
/// Panics when `reps` is empty or the repetitions disagree on the
/// matrix rows.
pub fn evaluate(reps: &[Vec<ThroughputRow>], base: &Json, min_tolerance: f64) -> GateReport {
    assert!(!reps.is_empty(), "gate needs at least one repetition");
    let base_rows = base.get("rows").and_then(Json::as_arr).unwrap_or(&[]);
    let base_rps = |system: &str, workload: &str| -> Option<f64> {
        base_rows.iter().find_map(|r| {
            (r.get("system").and_then(Json::as_str) == Some(system)
                && r.get("workload").and_then(Json::as_str) == Some(workload))
            .then(|| r.get("refs_per_sec").and_then(Json::as_f64))
            .flatten()
        })
    };
    let mut rows = Vec::new();
    for (i, row) in reps[0].iter().enumerate() {
        let mut rps: Vec<f64> = reps
            .iter()
            .map(|rep| {
                let r = &rep[i];
                assert!(
                    r.system == row.system && r.workload == row.workload,
                    "repetitions disagree on matrix row {i}"
                );
                r.refs_per_sec()
            })
            .collect();
        let (lo, hi) = rps
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        let median_rps = median(&mut rps);
        let Some(base_rps) = base_rps(&row.system, &row.workload) else {
            continue;
        };
        if base_rps <= 0.0 || median_rps <= 0.0 {
            continue;
        }
        let spread = (hi - lo) / median_rps;
        let tolerance = spread.max(min_tolerance);
        let ratio = median_rps / base_rps;
        rows.push(RowVerdict {
            system: row.system.clone(),
            workload: row.workload.clone(),
            base_rps,
            median_rps,
            spread,
            tolerance,
            ratio,
            verdict: Verdict::classify(ratio, tolerance),
        });
    }
    let (geomean_ratio, geomean_tolerance) = if rows.is_empty() {
        (1.0, min_tolerance)
    } else {
        let ratios: Vec<f64> = rows.iter().map(|r| r.ratio).collect();
        let tol = rows.iter().map(|r| r.tolerance).sum::<f64>() / rows.len() as f64;
        (silo_types::geomean(&ratios), tol)
    };
    GateReport {
        verdict: Verdict::classify(geomean_ratio, geomean_tolerance),
        rows,
        geomean_ratio,
        geomean_tolerance,
        reps: reps.len(),
        min_tolerance,
        base_label: base
            .get("label")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string(),
    }
}

/// Renders a gate report as the `silo-gate/v1` document.
pub fn gate_json(report: &GateReport) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA_GATE.into())),
        ("base_label".into(), Json::Str(report.base_label.clone())),
        ("reps".into(), Json::Int(report.reps as i128)),
        ("min_tolerance".into(), Json::Num(report.min_tolerance)),
        ("geomean_ratio".into(), Json::Num(report.geomean_ratio)),
        (
            "geomean_tolerance".into(),
            Json::Num(report.geomean_tolerance),
        ),
        ("verdict".into(), Json::Str(report.verdict.as_str().into())),
        (
            "rows".into(),
            Json::Arr(
                report
                    .rows
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("system".into(), Json::Str(r.system.clone())),
                            ("workload".into(), Json::Str(r.workload.clone())),
                            ("base_refs_per_sec".into(), Json::Num(r.base_rps)),
                            ("median_refs_per_sec".into(), Json::Num(r.median_rps)),
                            ("spread".into(), Json::Num(r.spread)),
                            ("tolerance".into(), Json::Num(r.tolerance)),
                            ("ratio".into(), Json::Num(r.ratio)),
                            ("verdict".into(), Json::Str(r.verdict.as_str().into())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::throughput::snapshot_json;

    fn spec() -> ThroughputSpec {
        let mut s = ThroughputSpec::hotloop_matrix(100);
        s.cores = 2;
        s
    }

    fn rows(wall_ms: &[f64]) -> Vec<ThroughputRow> {
        wall_ms
            .iter()
            .enumerate()
            .map(|(i, &w)| ThroughputRow {
                system: format!("sys{i}"),
                workload: "w".into(),
                refs: 10_000,
                wall_ms: w,
            })
            .collect()
    }

    fn base_for(r: &[ThroughputRow]) -> Json {
        snapshot_json("base", &spec(), r)
    }

    #[test]
    fn self_comparison_passes() {
        // A/A: repetitions identical to the baseline, ratios exactly 1.
        let r = rows(&[10.0, 20.0]);
        let base = base_for(&r);
        let reps = vec![r.clone(), r.clone(), r];
        let report = evaluate(&reps, &base, DEFAULT_MIN_TOLERANCE);
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            assert!((row.ratio - 1.0).abs() < 1e-12);
            assert_eq!(row.verdict, Verdict::Pass);
        }
        assert_eq!(report.verdict, Verdict::Pass);
        assert!(!report.regressed());
    }

    #[test]
    fn injected_slowdown_is_flagged_as_regress() {
        // The binary got 1.5x slower: every repetition's wall clock is
        // up 50%, far outside a tight observed spread.
        let base = base_for(&rows(&[10.0, 20.0]));
        let slow = rows(&[15.0, 30.0]);
        let reps = vec![slow.clone(), slow.clone(), slow];
        let report = evaluate(&reps, &base, DEFAULT_MIN_TOLERANCE);
        for row in &report.rows {
            assert!((row.ratio - 1.0 / 1.5).abs() < 1e-9);
            assert_eq!(row.verdict, Verdict::Regress);
        }
        assert_eq!(report.verdict, Verdict::Regress);
        assert!(report.regressed());
    }

    #[test]
    fn noisy_host_widens_its_own_tolerance() {
        // Median is 8% below base, but the repetitions themselves
        // spread 25% — the dip is within the observed noise.
        let base = base_for(&rows(&[10.0]));
        let reps = vec![rows(&[10.0]), rows(&[10.87]), rows(&[12.2])];
        let report = evaluate(&reps, &base, DEFAULT_MIN_TOLERANCE);
        let row = &report.rows[0];
        assert!(row.ratio < 1.0 - DEFAULT_MIN_TOLERANCE);
        assert!(row.spread > DEFAULT_MIN_TOLERANCE);
        assert_eq!(row.verdict, Verdict::Noise);
    }

    #[test]
    fn tolerance_floor_absorbs_tiny_dips() {
        // Zero spread (identical reps) but only 2% below base: the
        // min-tolerance floor keeps this out of the regress bucket.
        let base = base_for(&rows(&[10.0]));
        let dip = rows(&[10.2]);
        let reps = vec![dip.clone(), dip];
        let report = evaluate(&reps, &base, DEFAULT_MIN_TOLERANCE);
        let row = &report.rows[0];
        assert_eq!(row.spread, 0.0);
        assert_eq!(row.tolerance, DEFAULT_MIN_TOLERANCE);
        assert_eq!(row.verdict, Verdict::Noise);
    }

    #[test]
    fn rows_missing_from_the_baseline_are_skipped() {
        let base = base_for(&rows(&[10.0]));
        let now = vec![rows(&[10.0, 5.0])];
        let report = evaluate(&now, &base, DEFAULT_MIN_TOLERANCE);
        assert_eq!(report.rows.len(), 1, "sys1 has no baseline counterpart");
    }

    #[test]
    fn select_snapshot_takes_the_last_matching_dimensions() {
        let s = spec();
        let mk = |label: &str, cores: usize| {
            let mut sp = spec();
            sp.cores = cores;
            snapshot_json(label, &sp, &rows(&[10.0]))
        };
        let snaps = vec![mk("old", 2), mk("other-dims", 8), mk("new", 2)];
        let found = select_snapshot(&snaps, &s).expect("match");
        assert_eq!(found.get("label").and_then(Json::as_str), Some("new"));
        let mut s8 = spec();
        s8.cores = 16;
        assert!(select_snapshot(&snaps, &s8).is_none());
    }

    #[test]
    fn gate_json_round_trips_the_verdict() {
        let base = base_for(&rows(&[10.0]));
        let reps = vec![rows(&[15.0])];
        let doc = gate_json(&evaluate(&reps, &base, DEFAULT_MIN_TOLERANCE));
        let parsed = Json::parse(&doc.to_string()).expect("round trip");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some(SCHEMA_GATE)
        );
        assert_eq!(
            parsed.get("verdict").and_then(Json::as_str),
            Some("regress")
        );
        let rows = parsed.get("rows").and_then(Json::as_arr).expect("rows");
        assert_eq!(
            rows[0].get("verdict").and_then(Json::as_str),
            Some("regress")
        );
        assert_eq!(
            parsed.get("base_label").and_then(Json::as_str),
            Some("base")
        );
    }
}
