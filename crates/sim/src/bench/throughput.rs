//! The hot-loop throughput benchmark: refs/sec per (system, workload).
//!
//! Simulator capacity is measured in *references per second of host
//! time*: every design-space sweep point costs `cores × refs` simulated
//! references, so refs/sec is the unit that converts "how fast is the
//! inner loop" into "how many sweep points per minute". This module
//! runs a fixed matrix — each selected system × each selected workload
//! at one core count, seed, and reference count — times every cell, and
//! renders the rows into the `silo-hotloop/v1` JSON schema so the
//! numbers can be committed as a trajectory (`BENCH_hotloop.json`) and
//! compared across PRs.
//!
//! The default matrix ([`ThroughputSpec::hotloop_matrix`]) is every
//! builtin system × {zipf-shared, uniform-private, pointer-chase} on
//! 8 cores at seed 42: a cache-friendly skewed workload, a
//! capacity-stressing uniform one, and a dependent-miss chain, so the
//! three qualitatively different hot-path regimes (SRAM-hit dominated,
//! vault/directory dominated, MSHR-serialised) are all represented.
//!
//! Wall-clock is host-dependent by nature; everything else about a cell
//! (the simulated stats) is deterministic, and row *order* is fixed by
//! the matrix regardless of the worker-thread count.

use crate::bench::SCHEMA_HOTLOOP;
use crate::config::SystemConfig;
use crate::error::ConfigError;
use crate::json::Json;
use crate::registry::{run_system_on_source_metered, SystemRegistry, SystemSpec};
use crate::workload::WorkloadSpec;
use silo_telemetry::MeterConfig;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The benchmark matrix: systems × workloads at one (cores, refs, seed)
/// point.
#[derive(Clone, Debug)]
pub struct ThroughputSpec {
    /// Template config; `cores` overrides its core count.
    pub base: SystemConfig,
    /// Systems to time, in row order.
    pub systems: Vec<SystemSpec>,
    /// Workloads to time, in column order.
    pub workloads: Vec<WorkloadSpec>,
    /// Core count of every cell.
    pub cores: usize,
    /// References per core of every cell.
    pub refs_per_core: usize,
    /// Workload RNG seed.
    pub seed: u64,
}

impl ThroughputSpec {
    /// The tracked hot-loop matrix: every builtin system ×
    /// {zipf-shared, uniform-private, pointer-chase}, 8 cores, seed 42,
    /// `refs_per_core` references per core. This is the matrix behind
    /// `silo-sim bench` and the committed `BENCH_hotloop.json`
    /// trajectory; changing it invalidates cross-PR comparisons.
    pub fn hotloop_matrix(refs_per_core: usize) -> Self {
        let workloads = ["zipf-shared", "uniform-private", "pointer-chase"]
            .iter()
            .map(|n| {
                let mut w = WorkloadSpec::by_name(n).expect("builtin preset");
                w.refs_per_core = refs_per_core;
                w
            })
            .collect();
        ThroughputSpec {
            base: SystemConfig::paper_16core(),
            systems: SystemRegistry::builtin().specs().to_vec(),
            workloads,
            cores: 8,
            refs_per_core,
            seed: 42,
        }
    }

    /// The (system, workload) cells in row order: system-major, so each
    /// system's three workload rows are adjacent in reports.
    fn cells(&self) -> Vec<(SystemSpec, WorkloadSpec)> {
        let mut cells = Vec::with_capacity(self.systems.len() * self.workloads.len());
        for sys in &self.systems {
            for w in &self.workloads {
                cells.push((sys.clone(), w.clone()));
            }
        }
        cells
    }
}

/// One timed cell of the matrix.
#[derive(Clone, Debug)]
pub struct ThroughputRow {
    /// Registry name of the system.
    pub system: String,
    /// Workload name.
    pub workload: String,
    /// References processed (deterministic: `cores × refs_per_core` for
    /// generated workloads).
    pub refs: u64,
    /// Host wall-clock of the run, in milliseconds.
    pub wall_ms: f64,
}

impl ThroughputRow {
    /// References simulated per second of host wall-clock.
    pub fn refs_per_sec(&self) -> f64 {
        self.refs as f64 / (self.wall_ms.max(1e-9) / 1e3)
    }
}

/// Runs every cell of the matrix and returns one row per cell, in
/// matrix order (system-major) regardless of `threads`. Cells fan out
/// across up to `threads` OS threads; the simulated side of every cell
/// is deterministic, only `wall_ms` depends on the host.
pub fn run_throughput(spec: &ThroughputSpec, threads: usize) -> Vec<ThroughputRow> {
    let cells = spec.cells();
    if cells.is_empty() {
        return Vec::new();
    }
    let cfg = spec.base.with_cores(spec.cores);
    cfg.validate().expect("throughput config is valid");
    let run_cell = |(sys, w): &(SystemSpec, WorkloadSpec)| {
        let mut source = w
            .source(cfg.cores, cfg.scale, spec.seed)
            .expect("builtin workloads always yield a source");
        let t = Instant::now();
        let (stats, _) =
            run_system_on_source_metered(sys, &cfg, &w.name, &mut *source, &MeterConfig::default());
        ThroughputRow {
            system: stats.system,
            workload: stats.workload,
            refs: stats.served.total(),
            wall_ms: t.elapsed().as_secs_f64() * 1e3,
        }
    };
    let workers = threads.clamp(1, cells.len());
    if workers == 1 {
        return cells.iter().map(run_cell).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ThroughputRow>>> =
        (0..cells.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                *slots[i].lock().expect("row slot poisoned") = Some(run_cell(cell));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("row slot poisoned")
                .expect("every cell filled its slot")
        })
        .collect()
}

/// Geometric mean of the rows' refs/sec (0.0 for an empty matrix).
pub fn geomean_refs_per_sec(rows: &[ThroughputRow]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let rps: Vec<f64> = rows.iter().map(ThroughputRow::refs_per_sec).collect();
    silo_types::geomean(&rps)
}

/// Renders one benchmark run as a `snapshots[]` entry of the
/// `silo-hotloop/v1` document.
pub fn snapshot_json(label: &str, spec: &ThroughputSpec, rows: &[ThroughputRow]) -> Json {
    Json::Obj(vec![
        ("label".into(), Json::Str(label.into())),
        ("cores".into(), Json::Int(spec.cores as i128)),
        (
            "refs_per_core".into(),
            Json::Int(spec.refs_per_core as i128),
        ),
        ("seed".into(), Json::Int(spec.seed as i128)),
        (
            "geomean_refs_per_sec".into(),
            Json::Num(geomean_refs_per_sec(rows)),
        ),
        (
            "rows".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("system".into(), Json::Str(r.system.clone())),
                            ("workload".into(), Json::Str(r.workload.clone())),
                            ("refs".into(), Json::Int(r.refs as i128)),
                            ("wall_ms".into(), Json::Num(r.wall_ms)),
                            ("refs_per_sec".into(), Json::Num(r.refs_per_sec())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Wraps snapshots into the top-level `silo-hotloop/v1` document.
pub fn hotloop_doc(snapshots: Vec<Json>) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA_HOTLOOP.into())),
        ("snapshots".into(), Json::Arr(snapshots)),
    ])
}

/// Loads the snapshots of an existing `silo-hotloop/v1` file.
///
/// # Errors
///
/// Returns [`ConfigError::Trace`] (reused as the generic "file problem"
/// variant) when the file cannot be read, parsed, or has the wrong
/// schema.
pub fn load_snapshots(path: &std::path::Path) -> Result<Vec<Json>, ConfigError> {
    let err = |message: String| ConfigError::Trace {
        path: path.display().to_string(),
        message,
    };
    let text = std::fs::read_to_string(path).map_err(|e| err(e.to_string()))?;
    let doc = Json::parse(&text).map_err(err)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(SCHEMA_HOTLOOP) => {}
        other => {
            return Err(err(format!(
                "expected schema {SCHEMA_HOTLOOP:?}, found {other:?}"
            )))
        }
    }
    let snapshots = doc
        .get("snapshots")
        .and_then(Json::as_arr)
        .ok_or_else(|| err("missing snapshots array".into()))?;
    Ok(snapshots.to_vec())
}

/// Appends a snapshot to a `silo-hotloop/v1` file (creating it when
/// absent), so repeated `silo-sim bench --json` runs grow a trajectory.
///
/// # Errors
///
/// Propagates parse/IO failures as [`ConfigError`].
pub fn append_snapshot(path: &std::path::Path, snapshot: Json) -> Result<usize, ConfigError> {
    let mut snapshots = if path.exists() {
        load_snapshots(path)?
    } else {
        Vec::new()
    };
    snapshots.push(snapshot);
    let n = snapshots.len();
    std::fs::write(path, format!("{}\n", hotloop_doc(snapshots))).map_err(|e| {
        ConfigError::Trace {
            path: path.display().to_string(),
            message: e.to_string(),
        }
    })?;
    Ok(n)
}

/// One matched row of a [`compare_rows`] comparison.
#[derive(Clone, Debug)]
pub struct RowDelta {
    /// Registry name of the system.
    pub system: String,
    /// Workload name.
    pub workload: String,
    /// This run's refs/sec.
    pub now: f64,
    /// The reference snapshot's refs/sec.
    pub then: f64,
    /// `now / then`.
    pub ratio: f64,
}

/// Per-row refs/sec ratio of `rows` against the matching rows of a
/// reference snapshot (matched by system + workload), plus the geomean
/// of the ratios. Rows with no counterpart are skipped.
pub fn compare_rows(rows: &[ThroughputRow], reference: &Json) -> (Vec<RowDelta>, Option<f64>) {
    let Some(ref_rows) = reference.get("rows").and_then(Json::as_arr) else {
        return (Vec::new(), None);
    };
    let lookup = |system: &str, workload: &str| -> Option<f64> {
        ref_rows.iter().find_map(|r| {
            (r.get("system").and_then(Json::as_str) == Some(system)
                && r.get("workload").and_then(Json::as_str) == Some(workload))
            .then(|| r.get("refs_per_sec").and_then(Json::as_f64))
            .flatten()
        })
    };
    let mut out = Vec::new();
    let mut ratios = Vec::new();
    for r in rows {
        let Some(then) = lookup(&r.system, &r.workload) else {
            continue;
        };
        let now = r.refs_per_sec();
        if then > 0.0 && now > 0.0 {
            let ratio = now / then;
            ratios.push(ratio);
            out.push(RowDelta {
                system: r.system.clone(),
                workload: r.workload.clone(),
                now,
                then,
                ratio,
            });
        }
    }
    let geo = (!ratios.is_empty()).then(|| silo_types::geomean(&ratios));
    (out, geo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ThroughputSpec {
        let mut spec = ThroughputSpec::hotloop_matrix(400);
        spec.cores = 2;
        spec.systems.truncate(2);
        spec.workloads.truncate(2);
        spec
    }

    #[test]
    fn matrix_covers_every_builtin_system_and_three_workloads() {
        let spec = ThroughputSpec::hotloop_matrix(100);
        assert_eq!(spec.cores, 8);
        assert_eq!(spec.seed, 42);
        assert!(spec.systems.len() >= 4);
        let names: Vec<&str> = spec.workloads.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names, ["zipf-shared", "uniform-private", "pointer-chase"]);
        assert!(spec.workloads.iter().all(|w| w.refs_per_core == 100));
    }

    #[test]
    fn rows_come_back_in_matrix_order_with_positive_throughput() {
        let spec = tiny_spec();
        let rows = run_throughput(&spec, 1);
        assert_eq!(rows.len(), 4);
        let mut i = 0;
        for sys in &spec.systems {
            for w in &spec.workloads {
                assert_eq!(rows[i].system, sys.name());
                assert_eq!(rows[i].workload, w.name);
                assert_eq!(rows[i].refs, 2 * 400);
                assert!(rows[i].refs_per_sec() > 0.0);
                i += 1;
            }
        }
        assert!(geomean_refs_per_sec(&rows) > 0.0);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let spec = tiny_spec();
        let rows = run_throughput(&spec, 2);
        let doc = hotloop_doc(vec![snapshot_json("test", &spec, &rows)]);
        let parsed = Json::parse(&doc.to_string()).expect("round trip");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some(SCHEMA_HOTLOOP)
        );
        let snaps = parsed.get("snapshots").and_then(Json::as_arr).unwrap();
        assert_eq!(snaps.len(), 1);
        let r = snaps[0].get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(r.len(), rows.len());
        let (deltas, geo) = compare_rows(&rows, &snaps[0]);
        assert_eq!(deltas.len(), rows.len());
        let g = geo.expect("all rows matched");
        assert!((g - 1.0).abs() < 1e-9, "self-comparison must be 1.0x: {g}");
    }
}
