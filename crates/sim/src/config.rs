//! System configuration: core count, mesh geometry, and the latency /
//! capacity parameters of every simulated structure (Table II).

use crate::error::ConfigError;
use silo_coherence::NodeSpec;
use silo_dram::DesignPoint;
use silo_types::{ByteSize, Cycles};

/// Named vault-design selection, shared by the CLI and the sweep
/// harness: either the Table II constants or a point derived from the
/// `silo-dram` design-space sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VaultDesign {
    /// The Table II constants baked into [`SystemConfig::paper_16core`].
    Table2,
    /// The latency-optimized sweep point (256 MiB-class, Table I).
    Latency,
    /// The capacity-optimized sweep point (512 MiB-class).
    Capacity,
}

impl VaultDesign {
    /// Parses a CLI / sweep-list name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "table2" => Some(VaultDesign::Table2),
            "latency" => Some(VaultDesign::Latency),
            "capacity" => Some(VaultDesign::Capacity),
            _ => None,
        }
    }

    /// The canonical name (inverse of [`VaultDesign::parse`]).
    pub const fn name(self) -> &'static str {
        match self {
            VaultDesign::Table2 => "table2",
            VaultDesign::Latency => "latency",
            VaultDesign::Capacity => "capacity",
        }
    }

    /// The `silo-dram` design point backing this selection; `None` for
    /// [`VaultDesign::Table2`] (constants, no sweep) or when the sweep
    /// yields no feasible design.
    pub fn design_point(self) -> Option<DesignPoint> {
        let tech = silo_dram::TechnologyParams::default();
        let sweep = silo_dram::VaultSweep::default();
        match self {
            VaultDesign::Table2 => None,
            VaultDesign::Latency => sweep.latency_optimized(&tech, 0.25),
            VaultDesign::Capacity => sweep.capacity_optimized(&tech),
        }
    }

    /// Applies this design to a config (identity for Table II).
    ///
    /// # Panics
    ///
    /// Panics if the sweep yields no feasible design; CLI paths validate
    /// with [`VaultDesign::design_point`] first.
    pub fn apply(self, cfg: SystemConfig) -> SystemConfig {
        if self == VaultDesign::Table2 {
            return cfg;
        }
        let p = self
            .design_point()
            .expect("vault sweep produced no feasible design");
        cfg.with_design_point(&p)
    }
}

/// Every knob of one simulated machine. The same config drives both the
/// SILO system and the shared-LLC baseline so comparisons are apples to
/// apples.
#[derive(Clone, Copy, Debug)]
pub struct SystemConfig {
    /// Number of cores; must equal `mesh_width * mesh_height`.
    pub cores: usize,
    /// Mesh width.
    pub mesh_width: usize,
    /// Mesh height.
    pub mesh_height: usize,
    /// Per-hop mesh latency (3 cycles, Table II).
    pub hop_cycles: Cycles,
    /// Per-core SRAM geometry.
    pub node_spec: NodeSpec,
    /// Capacity-scaling knob: caches *and* working sets are divided by
    /// this factor so full runs stay fast while hit ratios stay honest.
    pub scale: u64,
    /// Private vault capacity (256 MiB latency-optimized, Table I).
    pub vault_capacity: ByteSize,
    /// Vault array access occupancy (~5.5 ns at 2 GHz -> 11 cycles).
    pub vault_access: Cycles,
    /// Banks per vault (Table I latency-optimized design).
    pub vault_banks: usize,
    /// Aggregate shared-LLC capacity of the baseline (16 MiB, Table II).
    pub llc_capacity: ByteSize,
    /// LLC associativity.
    pub llc_ways: usize,
    /// LLC bank access latency (5 cycles SRAM bank, Table II).
    pub llc_bank_access: Cycles,
    /// Sub-banks per LLC bank (allows some intra-bank overlap).
    pub llc_sub_banks: usize,
    /// Remote-L1 probe latency.
    pub l1_probe: Cycles,
    /// Main-memory access latency (~50 ns -> 100 cycles).
    pub memory_access: Cycles,
    /// Interleaved main-memory banks across all channels.
    pub memory_banks: usize,
    /// Outstanding misses a core can overlap (MSHRs).
    pub mlp: usize,
    /// Core frequency in GHz (2.0, Table II).
    pub ghz: f64,
    /// SILO models the ideal vault miss predictor of Sec. V-C.
    pub ideal_miss_predict: bool,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper_16core()
    }
}

impl SystemConfig {
    /// The paper's 16-core, 4x4-mesh scale-out server (Table II), with
    /// capacities scaled down 64x for fast simulation.
    pub fn paper_16core() -> Self {
        SystemConfig {
            cores: 16,
            mesh_width: 4,
            mesh_height: 4,
            hop_cycles: Cycles(3),
            node_spec: NodeSpec::two_level(),
            scale: 64,
            vault_capacity: ByteSize::from_mib(256),
            vault_access: Cycles(11),
            vault_banks: 64,
            llc_capacity: ByteSize::from_mib(16),
            llc_ways: 16,
            llc_bank_access: Cycles(5),
            llc_sub_banks: 4,
            l1_probe: Cycles(3),
            memory_access: Cycles(100),
            memory_banks: 32,
            mlp: 8,
            ghz: 2.0,
            ideal_miss_predict: true,
        }
    }

    /// Derives the vault capacity and access latency from an evaluated
    /// `silo-dram` design point (Fig. 8 / Table I), adding a small
    /// controller overhead on top of the array latency.
    pub fn with_design_point(mut self, p: &DesignPoint) -> Self {
        const CONTROLLER_NS: f64 = 1.0;
        self.vault_capacity = ByteSize::from_mib(p.capacity_bucket_mib());
        self.vault_access = Cycles::from_ns(p.latency_ns + CONTROLLER_NS, self.ghz);
        self.vault_banks = p.config.banks_per_vault() as usize;
        self
    }

    /// Reshapes the machine to `cores` cores on the squarest mesh whose
    /// dimensions multiply to `cores`.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or exceeds 64 (directory masks are u64).
    pub fn with_cores(mut self, cores: usize) -> Self {
        assert!(
            (1..=64).contains(&cores),
            "core count {cores} outside [1, 64]"
        );
        let mut w = (cores as f64).sqrt() as usize;
        while w > 1 && cores % w != 0 {
            w -= 1;
        }
        self.cores = cores;
        self.mesh_width = w.max(1);
        self.mesh_height = cores / self.mesh_width;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the mesh does not cover exactly
    /// `cores` nodes or the MSHR count is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores != self.mesh_width * self.mesh_height {
            return Err(ConfigError::MeshMismatch {
                cores: self.cores,
                width: self.mesh_width,
                height: self.mesh_height,
            });
        }
        if self.mlp == 0 {
            return Err(ConfigError::BadValue {
                what: "mlp".into(),
                value: "0".into(),
                reason: "need at least one MSHR".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_consistent() {
        let c = SystemConfig::paper_16core();
        c.validate().expect("paper config is valid");
        assert_eq!(c.cores, 16);
        assert_eq!(c.mesh_width * c.mesh_height, 16);
    }

    #[test]
    fn validate_returns_typed_errors() {
        let mut c = SystemConfig::paper_16core();
        c.mesh_width = 3;
        assert_eq!(
            c.validate(),
            Err(crate::error::ConfigError::MeshMismatch {
                cores: 16,
                width: 3,
                height: 4
            })
        );
        let mut c = SystemConfig::paper_16core();
        c.mlp = 0;
        assert!(matches!(
            c.validate(),
            Err(crate::error::ConfigError::BadValue { .. })
        ));
    }

    #[test]
    fn with_cores_picks_squarest_mesh() {
        let c = SystemConfig::paper_16core().with_cores(8);
        c.validate().expect("reshaped config is valid");
        assert_eq!((c.mesh_width, c.mesh_height), (2, 4));
        let c = SystemConfig::paper_16core().with_cores(9);
        assert_eq!((c.mesh_width, c.mesh_height), (3, 3));
        let c = SystemConfig::paper_16core().with_cores(7);
        assert_eq!((c.mesh_width, c.mesh_height), (1, 7));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn with_cores_rejects_zero() {
        let _ = SystemConfig::paper_16core().with_cores(0);
    }

    #[test]
    fn vault_design_names_round_trip() {
        for d in [
            VaultDesign::Table2,
            VaultDesign::Latency,
            VaultDesign::Capacity,
        ] {
            assert_eq!(VaultDesign::parse(d.name()), Some(d));
        }
        assert_eq!(VaultDesign::parse("bogus"), None);
    }

    #[test]
    fn vault_design_apply_matches_design_point() {
        let base = SystemConfig::paper_16core();
        let same = VaultDesign::Table2.apply(base);
        assert_eq!(
            same.vault_capacity.as_bytes(),
            base.vault_capacity.as_bytes()
        );
        assert_eq!(same.vault_access, base.vault_access);

        let cap = VaultDesign::Capacity;
        let p = cap.design_point().expect("capacity point");
        let applied = cap.apply(base);
        assert_eq!(
            applied.vault_capacity.as_bytes(),
            ByteSize::from_mib(p.capacity_bucket_mib()).as_bytes()
        );
        assert_eq!(applied.vault_banks, p.config.banks_per_vault() as usize);
    }

    #[test]
    fn design_point_wiring_converts_ns_to_cycles() {
        let tech = silo_dram::TechnologyParams::default();
        let sweep = silo_dram::VaultSweep::default();
        let p = sweep.latency_optimized(&tech, 0.25).expect("design point");
        let c = SystemConfig::paper_16core().with_design_point(&p);
        // ~5.5 ns array + 1 ns controller at 2 GHz: low teens of cycles.
        assert!(
            (8..=20).contains(&c.vault_access.as_u64()),
            "vault access {}",
            c.vault_access
        );
        assert!(c.vault_capacity.as_bytes() >= ByteSize::from_mib(128).as_bytes());
        assert!(c.vault_banks > 0);
    }
}
