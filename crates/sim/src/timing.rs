//! Cycle assignment for protocol steps.
//!
//! One [`TimingModel`] owns the contended resources of one simulated
//! machine: the mesh (`silo-noc`), the DRAM structures (`silo-dram`
//! next-free-time bank reservations for vaults and main memory), and the
//! baseline's SRAM LLC banks. [`TimingModel::charge`] walks an access's
//! critical-path steps in order — each step starts when the previous one
//! finished and may queue behind earlier traffic to the same bank — and
//! reserves the background work at the completion time without extending
//! the load-to-use latency.

use crate::config::SystemConfig;
use silo_coherence::{AccessResult, Background, Step};
use silo_dram::BankArray;
use silo_noc::{Mesh, NodeId};
use silo_obs::{Lap, LapProbe};
use silo_types::{Cycles, LineAddr};

/// Labels of the timing sub-phases [`TimingModel::charge_probed`] and
/// the run loop's MSHR accounting attribute into, in bucket order.
pub const TIMING_SUBPHASES: [&str; 3] = ["mesh", "bank", "mshr"];

/// [`TIMING_SUBPHASES`] bucket: mesh sends and invalidation rounds.
pub const TP_MESH: usize = 0;
/// [`TIMING_SUBPHASES`] bucket: bank reservations (vault, LLC, memory,
/// probes) and background reservations.
pub const TP_BANK: usize = 1;
/// [`TIMING_SUBPHASES`] bucket: the run loop's MSHR acquire/retire and
/// completion bookkeeping around the charge.
pub const TP_MSHR: usize = 2;

/// The lap probe `charge_probed` attributes into — one bucket per
/// [`TIMING_SUBPHASES`] entry.
pub type TimingProbe = LapProbe<3>;

/// The priced resources of one system (SILO or baseline).
#[derive(Clone, Debug)]
pub struct TimingModel {
    mesh: Mesh,
    /// Per-node vault banks (SILO; also holds the distributed directory).
    vaults: Vec<BankArray>,
    /// Per-node LLC banks (baseline).
    llc: Vec<BankArray>,
    memory: BankArray,
    l1_probe: Cycles,
    vault_access: Cycles,
}

impl TimingModel {
    /// Resources for the SILO system: a mesh, one vault bank-array per
    /// node, and main memory. LLC steps are absent by construction.
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent config; the builder API validates
    /// upstream and returns [`crate::ConfigError`] instead.
    pub fn silo(cfg: &SystemConfig) -> Self {
        cfg.validate().expect("invalid SystemConfig");
        TimingModel {
            mesh: Mesh::new(cfg.mesh_width, cfg.mesh_height, cfg.hop_cycles),
            vaults: (0..cfg.cores)
                .map(|_| BankArray::new(cfg.vault_banks, cfg.vault_access))
                .collect(),
            llc: Vec::new(),
            memory: BankArray::new(cfg.memory_banks, cfg.memory_access),
            l1_probe: cfg.l1_probe,
            vault_access: cfg.vault_access,
        }
    }

    /// Resources for the shared-LLC baseline: a mesh, one LLC bank per
    /// node, and main memory. Vault steps are absent by construction.
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent config; the builder API validates
    /// upstream and returns [`crate::ConfigError`] instead.
    pub fn baseline(cfg: &SystemConfig) -> Self {
        cfg.validate().expect("invalid SystemConfig");
        TimingModel {
            mesh: Mesh::new(cfg.mesh_width, cfg.mesh_height, cfg.hop_cycles),
            vaults: Vec::new(),
            llc: (0..cfg.cores)
                .map(|_| BankArray::new(cfg.llc_sub_banks, cfg.llc_bank_access))
                .collect(),
            memory: BankArray::new(cfg.memory_banks, cfg.memory_access),
            l1_probe: cfg.l1_probe,
            vault_access: cfg.vault_access,
        }
    }

    /// The mesh (for traffic statistics).
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Total busy cycles across all vault banks.
    pub fn vault_busy_cycles(&self) -> u64 {
        self.vaults.iter().map(BankArray::total_busy_cycles).sum()
    }

    /// Total vault banks across all nodes (zero for the baseline), the
    /// denominator of the telemetry occupancy metric.
    pub fn vault_banks_total(&self) -> u64 {
        self.vaults.iter().map(|v| v.len() as u64).sum()
    }

    /// Total accesses to main memory banks.
    pub fn memory_accesses(&self) -> u64 {
        self.memory.total_accesses()
    }

    /// Prices one access issued at `now`: charges every critical-path
    /// step in order and reserves background work at the completion time.
    /// Returns the completion cycle.
    ///
    /// # Panics
    ///
    /// Panics if a step names a resource this system does not have (an
    /// engine/model mismatch).
    pub fn charge(&mut self, now: Cycles, r: &AccessResult) -> Cycles {
        let line = r.line;
        let mut t = now;
        for step in &r.steps {
            t = self.charge_step(t, line, step);
        }
        for bg in &r.background {
            self.reserve_background(t, line, bg);
        }
        t
    }

    /// [`TimingModel::charge`] with sub-phase wall-clock attribution:
    /// every step's pricing is lapped into the mesh or bank bucket of
    /// `probe` as it completes, tiling the walk exactly. The caller owns
    /// [`begin`](Lap::begin) and the MSHR bucket around the call.
    /// Simulated results are bit-identical to [`TimingModel::charge`].
    ///
    /// # Panics
    ///
    /// Panics if a step names a resource this system does not have (an
    /// engine/model mismatch).
    pub fn charge_probed(
        &mut self,
        now: Cycles,
        r: &AccessResult,
        probe: &mut TimingProbe,
    ) -> Cycles {
        let line = r.line;
        let mut t = now;
        for step in &r.steps {
            t = self.charge_step(t, line, step);
            let bucket = match step {
                Step::Net { .. } | Step::Invalidations { .. } => TP_MESH,
                _ => TP_BANK,
            };
            probe.lap(bucket);
        }
        for bg in &r.background {
            self.reserve_background(t, line, bg);
            probe.lap(TP_BANK);
        }
        t
    }

    fn charge_step(&mut self, t: Cycles, line: LineAddr, step: &Step) -> Cycles {
        match *step {
            Step::Net { from, to } => t + self.mesh.send(NodeId(from), NodeId(to)),
            Step::VaultAccess { node } => self
                .vaults
                .get_mut(node)
                .expect("vault step in a system without vaults")
                .access(t, line),
            Step::LlcBank { bank } => self
                .llc
                .get_mut(bank)
                .expect("LLC step in a system without an LLC")
                .access(t, line),
            Step::L1Probe { .. } => t + self.l1_probe,
            Step::Invalidations { home, mask } => {
                // Parallel round: the farthest round trip plus one probe.
                let mut worst = Cycles::ZERO;
                for node in 0..self.mesh.nodes() {
                    if mask & (1u64 << node) != 0 {
                        self.mesh.send(NodeId(home), NodeId(node));
                        self.mesh.send(NodeId(node), NodeId(home));
                        worst = worst.max(self.mesh.round_trip(NodeId(home), NodeId(node)));
                    }
                }
                t + worst + self.l1_probe
            }
            Step::DirCacheHit => t + self.l1_probe,
            Step::Memory => self.memory.access(t, line),
        }
    }

    fn reserve_background(&mut self, t: Cycles, line: LineAddr, bg: &Background) {
        match *bg {
            Background::VaultFill {
                node,
                dirty_writeback,
            } => {
                if let Some(v) = self.vaults.get_mut(node) {
                    v.access(t, line);
                }
                if dirty_writeback {
                    self.memory.access(t, line);
                }
            }
            Background::LlcFill {
                bank,
                dirty_writeback,
            } => {
                if let Some(b) = self.llc.get_mut(bank) {
                    b.access(t, line);
                }
                if dirty_writeback {
                    self.memory.access(t, line);
                }
            }
            Background::DirUpdate { home, ways } => {
                // SILO keeps directory metadata in the home vault's DRAM;
                // the baseline embeds it in the LLC bank. A full-set
                // transition touches `ways` entries back to back.
                if let Some(v) = self.vaults.get_mut(home) {
                    let service = self.vault_access * ways as u64;
                    v.access_with_service(t, line, service);
                } else if let Some(b) = self.llc.get_mut(home) {
                    let service = b.service() * ways as u64;
                    b.access_with_service(t, line, service);
                }
            }
            Background::L1Writeback { .. } => {
                // Absorbed by the node's write port; no shared resource.
            }
            Background::MemoryWrite => {
                self.memory.access(t, line);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silo_coherence::ServedBy;

    fn silo_model() -> TimingModel {
        TimingModel::silo(&SystemConfig::paper_16core())
    }

    fn result(steps: Vec<Step>) -> AccessResult {
        AccessResult {
            served: Some(ServedBy::Memory),
            steps,
            background: Vec::new(),
            llc_access: true,
            line: LineAddr::new(9),
            is_write: false,
        }
    }

    #[test]
    fn net_steps_accumulate_mesh_latency() {
        let mut m = silo_model();
        // Node 0 -> 15 is 6 hops at 3 cycles.
        let done = m.charge(Cycles(100), &result(vec![Step::Net { from: 0, to: 15 }]));
        assert_eq!(done, Cycles(118));
        assert_eq!(m.mesh().messages(), 1);
    }

    #[test]
    fn vault_steps_queue_behind_earlier_traffic() {
        let mut m = silo_model();
        let r = result(vec![Step::VaultAccess { node: 3 }]);
        let first = m.charge(Cycles(0), &r);
        let second = m.charge(Cycles(0), &r);
        assert_eq!(first, Cycles(11));
        assert_eq!(second, Cycles(22), "same line -> same bank serializes");
    }

    #[test]
    fn invalidations_charge_farthest_round_trip() {
        let mut m = silo_model();
        // Home 0, victims 1 (1 hop) and 15 (6 hops): worst RT = 36.
        let done = m.charge(
            Cycles(0),
            &result(vec![Step::Invalidations {
                home: 0,
                mask: (1 << 1) | (1 << 15),
            }]),
        );
        assert_eq!(done, Cycles(36 + 3));
    }

    #[test]
    fn memory_step_uses_bank_reservation() {
        let mut m = silo_model();
        let done = m.charge(Cycles(0), &result(vec![Step::Memory]));
        assert_eq!(done, Cycles(100));
        assert_eq!(m.memory_accesses(), 1);
    }

    #[test]
    fn background_does_not_extend_latency() {
        let mut m = silo_model();
        let mut r = result(vec![Step::Memory]);
        r.background.push(Background::VaultFill {
            node: 0,
            dirty_writeback: true,
        });
        let done = m.charge(Cycles(0), &r);
        assert_eq!(done, Cycles(100));
        // But the fill and writeback did occupy resources.
        assert!(m.vault_busy_cycles() > 0);
        assert_eq!(m.memory_accesses(), 2);
    }

    #[test]
    #[should_panic(expected = "without an LLC")]
    fn silo_model_rejects_llc_steps() {
        silo_model().charge(Cycles(0), &result(vec![Step::LlcBank { bank: 0 }]));
    }

    #[test]
    fn baseline_model_prices_llc_banks() {
        let mut m = TimingModel::baseline(&SystemConfig::paper_16core());
        let done = m.charge(Cycles(0), &result(vec![Step::LlcBank { bank: 2 }]));
        assert_eq!(done, Cycles(5));
    }
}
