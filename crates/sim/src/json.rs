//! Minimal hand-rolled JSON tree: a writer for the bench harness's
//! machine-readable output and a parser so tests (and downstream
//! tooling) can round-trip it — no external dependencies.
//!
//! Only what the bench schema needs is supported: objects preserve
//! insertion order, integers and floats are distinct variants (so `u64`
//! counters survive exactly), and non-finite floats serialize as `null`.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (counters, cycle counts); `i128` so the full `u64`
    /// range (e.g. RNG seeds) survives without wrapping.
    Int(i128),
    /// A float (rates, fractions, milliseconds).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer if this is an integer that fits `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => (*i).try_into().ok(),
            _ => None,
        }
    }

    /// The integer if this is a non-negative integer that fits `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => (*i).try_into().ok(),
            _ => None,
        }
    }

    /// Numeric view: integers widen to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            // Integral floats keep a decimal point so the parser reads
            // them back as `Num`, not `Int` — exact round-tripping.
            Json::Num(x) if x.is_finite() && x.trunc() == *x => write!(f, "{x:.1}"),
            Json::Num(x) if x.is_finite() => write!(f, "{x}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out: Vec<u8> = Vec::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match c {
                b'"' => {
                    return String::from_utf8(out)
                        .map_err(|_| "invalid UTF-8 in string".to_string());
                }
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            let ch = char::from_u32(code)
                                .ok_or_else(|| "surrogate \\u escape unsupported".to_string())?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII slice of a valid str");
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number '{text}'"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| format!("bad integer '{text}'"))
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_back() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("sweep \"q\"\n".into())),
            ("count".into(), Json::Int(42)),
            ("neg".into(), Json::Int(-7)),
            ("rate".into(), Json::Num(2.5)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "items".into(),
                Json::Arr(vec![Json::Int(1), Json::Num(0.125), Json::Str("x".into())]),
            ),
        ]);
        let text = v.to_string();
        let back = Json::parse(&text).expect("round trip");
        assert_eq!(back, v);
    }

    #[test]
    fn accessors_navigate_the_tree() {
        let v = Json::parse(r#"{"a": {"b": [1, 2.5, "s"]}, "n": 3}"#).expect("parse");
        let arr = v.get("a").and_then(|a| a.get("b")).and_then(Json::as_arr);
        let arr = arr.expect("array");
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("s"));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(3.0));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn integral_floats_round_trip_as_floats() {
        // 1.0 must serialize as "1.0", not "1", or it comes back as Int.
        for x in [0.0, 1.0, -3.0, 42.0] {
            let text = Json::Num(x).to_string();
            assert!(text.contains('.'), "'{text}' lost its decimal point");
            assert_eq!(Json::parse(&text), Ok(Json::Num(x)));
        }
    }

    #[test]
    fn u64_range_integers_survive() {
        let v = Json::Int(u64::MAX as i128);
        let back = Json::parse(&v.to_string()).expect("parse");
        assert_eq!(back, v);
        assert_eq!(back.as_u64(), Some(u64::MAX));
        assert_eq!(back.as_i64(), None, "u64::MAX does not fit i64");
        assert_eq!(back.as_f64(), Some(u64::MAX as f64));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, ]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn parses_whitespace_and_unicode_escapes() {
        let v = Json::parse(" { \"k\" : \"\\u0041\\t\" } ").expect("parse");
        assert_eq!(v.get("k").and_then(Json::as_str), Some("A\t"));
    }
}
