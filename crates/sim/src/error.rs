//! Typed configuration errors for the library API.
//!
//! Everything that can go wrong while assembling a [`crate::Simulation`]
//! — unknown registry names, malformed workload specs, bad axis values,
//! scenario-file syntax errors — surfaces as a [`ConfigError`] instead of
//! a panic, so embedders can report and recover. The CLI maps any
//! `ConfigError` to exit code 2 with the `Display` message.

use std::fmt;

/// A configuration problem detected while building a simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A system name did not resolve against the registry.
    UnknownSystem(String),
    /// A workload name did not match any preset or custom-spec base.
    UnknownWorkload(String),
    /// A vault-design name did not parse.
    UnknownVaultDesign(String),
    /// A custom workload spec parsed its base but a parameter was bad.
    BadWorkloadSpec {
        /// The full spec string as given.
        spec: String,
        /// What was wrong with it.
        reason: String,
    },
    /// A scalar or axis value was out of range or unparseable.
    BadValue {
        /// The field or flag the value was given for.
        what: String,
        /// The offending value as given.
        value: String,
        /// Why it was rejected.
        reason: String,
    },
    /// The same name was selected twice where duplicates are rejected.
    Duplicate {
        /// What kind of selection (system, workload, axis).
        what: &'static str,
        /// The duplicated name or value.
        name: String,
    },
    /// A selection or sweep axis ended up empty.
    Empty(&'static str),
    /// The mesh dimensions do not cover the core count.
    MeshMismatch {
        /// Configured core count.
        cores: usize,
        /// Mesh width.
        width: usize,
        /// Mesh height.
        height: usize,
    },
    /// The `silo-dram` design-space sweep has no feasible point for this
    /// vault design.
    InfeasibleVaultDesign(String),
    /// A scenario file line failed to parse.
    Scenario {
        /// 1-based line number in the scenario file.
        line: usize,
        /// What went wrong on that line.
        message: String,
    },
    /// A scenario file could not be read.
    Io(String),
    /// A `.silotrace` replay file could not be opened or validated.
    Trace {
        /// Path of the trace file as given.
        path: String,
        /// The underlying `silo_trace::TraceError` message.
        message: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::UnknownSystem(name) => {
                write!(f, "unknown system '{name}' (try --list-systems)")
            }
            ConfigError::UnknownWorkload(name) => {
                write!(f, "unknown workload '{name}' (try --list-workloads)")
            }
            ConfigError::UnknownVaultDesign(name) => {
                write!(
                    f,
                    "unknown vault design '{name}' (expected table2, latency, or capacity)"
                )
            }
            ConfigError::BadWorkloadSpec { spec, reason } => {
                write!(f, "bad workload spec '{spec}': {reason}")
            }
            ConfigError::BadValue {
                what,
                value,
                reason,
            } => write!(f, "bad value '{value}' for {what}: {reason}"),
            ConfigError::Duplicate { what, name } => {
                write!(f, "duplicate {what} '{name}'")
            }
            ConfigError::Empty(what) => write!(f, "{what} must not be empty"),
            ConfigError::MeshMismatch {
                cores,
                width,
                height,
            } => write!(f, "mesh {width}x{height} does not cover {cores} cores"),
            ConfigError::InfeasibleVaultDesign(name) => {
                write!(f, "vault sweep has no feasible '{name}' design")
            }
            ConfigError::Scenario { line, message } => {
                write!(f, "scenario line {line}: {message}")
            }
            ConfigError::Io(message) => write!(f, "{message}"),
            ConfigError::Trace { path, message } => {
                write!(f, "trace file {path}: {message}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_problem() {
        let e = ConfigError::UnknownSystem("ghost".into());
        assert!(e.to_string().contains("ghost"));
        let e = ConfigError::BadValue {
            what: "--cores".into(),
            value: "0".into(),
            reason: "must be in [1, 64]".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("--cores") && msg.contains("[1, 64]"));
        let e = ConfigError::Scenario {
            line: 7,
            message: "unknown key 'wat'".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn is_a_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&ConfigError::Empty("systems"));
    }
}
