//! Deterministic synthetic scale-out workload generators.
//!
//! The paper evaluates CloudSuite-style scale-out services: large
//! instruction footprints, per-request private data that dwarfs any SRAM
//! LLC, and a modest read-mostly shared region (Sec. II-B, Fig. 2-4).
//! These generators reproduce those properties synthetically and
//! deterministically — same seed, same trace — so runs are reproducible
//! and the two systems see byte-identical reference streams.
//!
//! Address-space carving (line addresses): each core's private heap lives
//! at `(core + 1) << 32`, its code region at `(core + 1) << 24 | 1 << 44`,
//! and the shared region at `1 << 52`. Regions never overlap.

use crate::error::ConfigError;
use silo_trace::{TraceReader, TraceSource};
use silo_types::{AccessKind, LineAddr, MemRef};
use std::path::PathBuf;

/// SplitMix64: a tiny, high-quality deterministic generator.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`, via Lemire's widening-multiply method
    /// with rejection: unbiased for every `n`, unlike the naive
    /// `next_u64() % n` fold, whose bias grows with `n` and skews
    /// sampling over large private regions. Still fully deterministic:
    /// the same seed consumes the same raw sequence.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        let mut m = self.next_u64() as u128 * n as u128;
        if (m as u64) < n {
            // 2^64 mod n: raw values whose low product half falls below
            // this threshold land in the over-represented remainder zone.
            let threshold = n.wrapping_neg() % n;
            while (m as u64) < threshold {
                m = self.next_u64() as u128 * n as u128;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

/// Zipf sampler over `[0, n)` with skew `theta` via inverse-CDF lookup.
#[derive(Clone, Debug)]
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: u64, theta: f64) -> Self {
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.f64();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// A synthetic workload: region sizes, mix ratios, and memory-level
/// parallelism character.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Display name: the preset name, or the full spec string for custom
    /// parameterizations (e.g. `zipf:theta=0.9,footprint=4x`).
    pub name: String,
    /// References generated per core.
    pub refs_per_core: usize,
    /// Private heap working set per core, in lines (after scaling).
    pub private_lines: u64,
    /// Shared-region size in lines (after scaling).
    pub shared_lines: u64,
    /// Instruction footprint per core, in lines (after scaling).
    pub code_lines: u64,
    /// Fraction of data references into the shared region.
    pub shared_fraction: f64,
    /// Fraction of references that are instruction fetches.
    pub ifetch_fraction: f64,
    /// Fraction of data references that are writes.
    pub write_fraction: f64,
    /// Fraction of references that depend on the previous miss
    /// (pointer-chasing behaviour; serialises misses).
    pub dependent_fraction: f64,
    /// Mean instructions between references (geometric-ish gap).
    pub mean_gap: u32,
    /// Zipf skew over the shared region (0.0 = uniform).
    pub zipf_theta: f64,
    /// Replay source: when set (the `trace:file=PATH` spec form),
    /// references stream from this `.silotrace` capture instead of the
    /// synthetic generator, and the generator fields above are unused.
    pub trace_file: Option<PathBuf>,
}

impl WorkloadSpec {
    /// Uniform accesses over a large private heap: the data-serving /
    /// key-value store profile. Working sets dwarf any SRAM LLC but fit a
    /// 256 MiB vault.
    pub fn uniform_private() -> Self {
        WorkloadSpec {
            name: "uniform-private".into(),
            refs_per_core: 20_000,
            private_lines: ByteLines::MIB64,
            shared_lines: ByteLines::MIB4,
            code_lines: 512,
            shared_fraction: 0.05,
            ifetch_fraction: 0.30,
            write_fraction: 0.15,
            dependent_fraction: 0.35,
            mean_gap: 6,
            zipf_theta: 0.0,
            trace_file: None,
        }
    }

    /// Zipf-skewed shared reads: the web-serving / front-end profile with
    /// a hot, read-mostly shared document cache.
    pub fn zipf_shared() -> Self {
        WorkloadSpec {
            name: "zipf-shared".into(),
            refs_per_core: 20_000,
            private_lines: ByteLines::MIB32,
            shared_lines: ByteLines::MIB16,
            code_lines: 768,
            shared_fraction: 0.30,
            ifetch_fraction: 0.30,
            write_fraction: 0.05,
            dependent_fraction: 0.25,
            mean_gap: 6,
            zipf_theta: 0.9,
            trace_file: None,
        }
    }

    /// Private/shared mix with a meaningful write share: the streaming /
    /// MapReduce-style profile where cores exchange partitions.
    pub fn shared_mix() -> Self {
        WorkloadSpec {
            name: "shared-mix".into(),
            refs_per_core: 20_000,
            private_lines: ByteLines::MIB48,
            shared_lines: ByteLines::MIB8,
            code_lines: 384,
            shared_fraction: 0.15,
            ifetch_fraction: 0.25,
            write_fraction: 0.25,
            dependent_fraction: 0.30,
            mean_gap: 5,
            zipf_theta: 0.6,
            trace_file: None,
        }
    }

    /// Pointer-chasing over a mid-size private heap: the graph / media
    /// profile where dependent misses serialise.
    pub fn pointer_chase() -> Self {
        WorkloadSpec {
            name: "pointer-chase".into(),
            refs_per_core: 20_000,
            private_lines: ByteLines::MIB32,
            shared_lines: ByteLines::MIB4,
            code_lines: 256,
            shared_fraction: 0.08,
            ifetch_fraction: 0.15,
            write_fraction: 0.10,
            dependent_fraction: 0.70,
            mean_gap: 3,
            zipf_theta: 0.0,
            trace_file: None,
        }
    }

    /// Write-heavy partition exchange through the shared region: the
    /// producer/consumer pipeline profile where cores hand buffers to
    /// each other, stressing invalidations and dirty forwarding.
    pub fn producer_consumer() -> Self {
        WorkloadSpec {
            name: "producer-consumer".into(),
            refs_per_core: 20_000,
            private_lines: ByteLines::MIB16,
            shared_lines: ByteLines::MIB8,
            code_lines: 384,
            shared_fraction: 0.40,
            ifetch_fraction: 0.20,
            write_fraction: 0.45,
            dependent_fraction: 0.20,
            mean_gap: 5,
            zipf_theta: 0.4,
            trace_file: None,
        }
    }

    /// Instruction-footprint stress: the multi-megabyte code working set
    /// of scale-out services (Sec. II-B) that thrashes the L1-I and
    /// leans on the vault's instruction capture.
    pub fn code_heavy() -> Self {
        WorkloadSpec {
            name: "code-heavy".into(),
            refs_per_core: 20_000,
            private_lines: ByteLines::MIB16,
            shared_lines: ByteLines::MIB4,
            code_lines: 16 * 1024, // 1 MiB of code
            shared_fraction: 0.10,
            ifetch_fraction: 0.55,
            write_fraction: 0.10,
            dependent_fraction: 0.15,
            mean_gap: 4,
            zipf_theta: 0.0,
            trace_file: None,
        }
    }

    /// All built-in workloads, in report order.
    pub fn all() -> Vec<WorkloadSpec> {
        vec![
            Self::uniform_private(),
            Self::zipf_shared(),
            Self::shared_mix(),
            Self::pointer_chase(),
            Self::producer_consumer(),
            Self::code_heavy(),
        ]
    }

    /// Looks a preset up by name.
    pub fn by_name(name: &str) -> Option<WorkloadSpec> {
        Self::all().into_iter().find(|w| w.name == name)
    }

    /// Resolves a custom-spec base: any preset name, plus the family
    /// aliases `zipf` (zipf-shared) and `uniform` (uniform-private).
    fn base_by_name(name: &str) -> Option<WorkloadSpec> {
        match name {
            "zipf" => Some(Self::zipf_shared()),
            "uniform" => Some(Self::uniform_private()),
            _ => Self::by_name(name),
        }
    }

    /// Parses a workload spec string: a preset name (`pointer-chase`),
    /// a custom parameterization of the form
    /// `base:key=value[,key=value...]` (e.g.
    /// `zipf:theta=0.9,footprint=4x`), or the replay form
    /// `trace:file=PATH` streaming a recorded `.silotrace` capture. The
    /// same grammar is accepted by `--workloads` on the CLI and by
    /// scenario files.
    ///
    /// Recognized keys: `theta` (Zipf skew ≥ 0), `footprint` (private
    /// working set — `4x` multiplies the base, `64MiB` sets it
    /// absolutely), `shared` / `writes` / `dependent` / `ifetch`
    /// (fractions in `[0, 1]`), `refs` (references per core ≥ 1), and
    /// `gap` (mean instructions between references).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::UnknownWorkload`] for an unknown base and
    /// [`ConfigError::BadWorkloadSpec`] for malformed parameters.
    pub fn parse(spec: &str) -> Result<WorkloadSpec, ConfigError> {
        Self::parse_with_default_refs(spec, None)
    }

    /// Like [`WorkloadSpec::parse`], but with a default per-core
    /// reference count applied to the base *before* the spec's
    /// parameters, so an explicit `refs=` parameter in the spec wins
    /// over the default. This is how the builder's global refs override
    /// composes with custom specs.
    ///
    /// # Errors
    ///
    /// Same as [`WorkloadSpec::parse`].
    pub fn parse_with_default_refs(
        spec: &str,
        default_refs: Option<usize>,
    ) -> Result<WorkloadSpec, ConfigError> {
        let spec = spec.trim();
        let (base, params) = match spec.split_once(':') {
            Some((b, p)) => (b.trim(), Some(p)),
            None => (spec, None),
        };
        if base == "trace" {
            // Replay specs ignore the refs default: the file's own
            // length is the trace length.
            return Self::parse_trace_spec(spec, params);
        }
        let mut w = Self::base_by_name(base)
            .ok_or_else(|| ConfigError::UnknownWorkload(base.to_string()))?;
        if let Some(refs) = default_refs {
            w.refs_per_core = refs;
        }
        let Some(params) = params else {
            return Ok(w);
        };
        let bad = |reason: String| ConfigError::BadWorkloadSpec {
            spec: spec.to_string(),
            reason,
        };
        for kv in params.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, value) = kv
                .split_once('=')
                .ok_or_else(|| bad(format!("parameter '{kv}' is not key=value")))?;
            let (key, value) = (key.trim(), value.trim());
            let fraction = |w: &str| -> Result<f64, ConfigError> {
                let f: f64 = value
                    .parse()
                    .map_err(|_| bad(format!("{w} '{value}' is not a number")))?;
                if !(0.0..=1.0).contains(&f) {
                    return Err(bad(format!("{w} '{value}' outside [0, 1]")));
                }
                Ok(f)
            };
            match key {
                "theta" => {
                    let t: f64 = value
                        .parse()
                        .map_err(|_| bad(format!("theta '{value}' is not a number")))?;
                    if !t.is_finite() || t < 0.0 {
                        return Err(bad(format!("theta '{value}' must be finite and >= 0")));
                    }
                    w.zipf_theta = t;
                }
                "footprint" => {
                    if let Some(mult) = value.strip_suffix(['x', 'X']) {
                        let m: u64 = mult.parse().map_err(|_| {
                            bad(format!("footprint multiplier '{value}' is not an integer"))
                        })?;
                        if m == 0 {
                            return Err(bad("footprint multiplier must be >= 1".into()));
                        }
                        w.private_lines = w.private_lines.saturating_mul(m);
                    } else if let Some(mib) = value
                        .strip_suffix("MiB")
                        .or_else(|| value.strip_suffix("mib"))
                    {
                        let m: u64 = mib.parse().map_err(|_| {
                            bad(format!("footprint size '{value}' is not an integer MiB"))
                        })?;
                        if m == 0 {
                            return Err(bad("footprint must be >= 1 MiB".into()));
                        }
                        w.private_lines = m
                            .checked_mul(1024 * 1024 / 64)
                            .ok_or_else(|| bad(format!("footprint '{value}' overflows")))?;
                    } else {
                        return Err(bad(format!(
                            "footprint '{value}' needs an 'x' multiplier or 'MiB' suffix"
                        )));
                    }
                }
                "shared" => w.shared_fraction = fraction("shared fraction")?,
                "writes" => w.write_fraction = fraction("write fraction")?,
                "dependent" => w.dependent_fraction = fraction("dependent fraction")?,
                "ifetch" => w.ifetch_fraction = fraction("ifetch fraction")?,
                "refs" => {
                    let n: usize = value
                        .parse()
                        .map_err(|_| bad(format!("refs '{value}' is not an integer")))?;
                    if n == 0 {
                        return Err(bad("refs must be >= 1".into()));
                    }
                    w.refs_per_core = n;
                }
                "gap" => {
                    w.mean_gap = value
                        .parse()
                        .map_err(|_| bad(format!("gap '{value}' is not an integer")))?;
                }
                other => return Err(bad(format!("unknown parameter '{other}'"))),
            }
        }
        w.name = spec.to_string();
        Ok(w)
    }

    /// Parses the replay form `trace:file=PATH`: a workload whose
    /// references stream from a `.silotrace` capture. The builder
    /// resolves the file at build time (validating the checksum and
    /// filling in name and length from the header), so parsing does no
    /// I/O.
    fn parse_trace_spec(spec: &str, params: Option<&str>) -> Result<WorkloadSpec, ConfigError> {
        let bad = |reason: String| ConfigError::BadWorkloadSpec {
            spec: spec.to_string(),
            reason,
        };
        let mut file: Option<PathBuf> = None;
        for kv in params
            .unwrap_or("")
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
        {
            let (key, value) = kv
                .split_once('=')
                .ok_or_else(|| bad(format!("parameter '{kv}' is not key=value")))?;
            match key.trim() {
                "file" => {
                    let value = value.trim();
                    if value.is_empty() {
                        return Err(bad("file= needs a path".into()));
                    }
                    file = Some(PathBuf::from(value));
                }
                other => {
                    return Err(bad(format!(
                        "unknown parameter '{other}' (trace specs take only file=PATH)"
                    )))
                }
            }
        }
        let Some(file) = file else {
            return Err(bad(
                "trace replay needs file=PATH (e.g. trace:file=out.silotrace)".into(),
            ));
        };
        Ok(WorkloadSpec {
            name: spec.to_string(),
            refs_per_core: 0, // resolved from the file header at build time
            private_lines: 0,
            shared_lines: 0,
            code_lines: 0,
            shared_fraction: 0.0,
            ifetch_fraction: 0.0,
            write_fraction: 0.0,
            dependent_fraction: 0.0,
            mean_gap: 0,
            zipf_theta: 0.0,
            trace_file: Some(file),
        })
    }

    /// Splits a comma-separated list of workload specs into individual
    /// spec strings, keeping custom-spec parameters attached to their
    /// base: a segment of the form `key=value` (no `:` before the `=`)
    /// continues the previous spec — which must itself be a custom spec
    /// (contain a `:`) — and anything else starts a new one. So
    /// `a,zipf:theta=0.9,footprint=4x,b` yields
    /// `["a", "zipf:theta=0.9,footprint=4x", "b"]`, while
    /// `a,footprint=4x` is rejected (the parameter has no custom spec to
    /// attach to).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadWorkloadSpec`] for a parameter segment
    /// that does not follow a `base:key=value` spec.
    pub fn split_list(raw: &str) -> Result<Vec<String>, ConfigError> {
        let mut items: Vec<String> = Vec::new();
        for seg in raw.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let continuation = match (seg.find('='), seg.find(':')) {
                (Some(eq), Some(colon)) => colon > eq,
                (Some(_), None) => true,
                _ => false,
            };
            if continuation {
                match items.last_mut() {
                    Some(last) if last.contains(':') => {
                        last.push(',');
                        last.push_str(seg);
                    }
                    _ => {
                        return Err(ConfigError::BadWorkloadSpec {
                            spec: seg.to_string(),
                            reason: "parameter segment must follow a 'base:key=value' \
                                     custom spec (missing ':' after the base name?)"
                                .into(),
                        })
                    }
                }
            } else {
                items.push(seg.to_string());
            }
        }
        Ok(items)
    }

    /// Parses a comma-separated list of workload specs (presets and
    /// custom parameterizations), rejecting duplicates by name.
    ///
    /// # Errors
    ///
    /// Propagates [`WorkloadSpec::parse`] errors and returns
    /// [`ConfigError::Duplicate`] for repeated names.
    pub fn parse_list(raw: &str) -> Result<Vec<WorkloadSpec>, ConfigError> {
        let mut out: Vec<WorkloadSpec> = Vec::new();
        for item in Self::split_list(raw)? {
            let w = Self::parse(&item)?;
            if out.iter().any(|o| o.name == w.name) {
                return Err(ConfigError::Duplicate {
                    what: "workload",
                    name: w.name,
                });
            }
            out.push(w);
        }
        Ok(out)
    }

    /// Generates the per-core reference streams, deterministically from
    /// `seed`, fully materialized. Region sizes are divided by `scale`
    /// (matching the cache scaling of the systems), flooring at one
    /// line. [`WorkloadSpec::source`] produces the identical stream
    /// lazily, one reference at a time, for runs that should not hold
    /// the whole trace in memory.
    ///
    /// # Panics
    ///
    /// Panics for `trace:file=` replay specs, which have no synthetic
    /// generator — stream them through [`WorkloadSpec::source`].
    pub fn generate(&self, cores: usize, scale: u64, seed: u64) -> Vec<Vec<MemRef>> {
        assert!(
            self.trace_file.is_none(),
            "trace-backed workload '{}' streams from file; use WorkloadSpec::source",
            self.name
        );
        let regions = Regions::of(self, scale);
        (0..cores)
            .map(|core| {
                let mut cursor = CoreCursor::new(core, seed);
                (0..self.refs_per_core)
                    .map(|_| cursor.gen_ref(self, &regions))
                    .collect()
            })
            .collect()
    }

    /// Opens this workload as a streaming [`TraceSource`]: the lazy
    /// synthetic generator (bit-identical to
    /// [`WorkloadSpec::generate`]) for generator-backed specs, or a
    /// `.silotrace` file reader for `trace:file=` replay specs. Either
    /// way, peak memory is O(cores), independent of trace length.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Trace`] when a replay file cannot be
    /// opened, has a malformed header, or was recorded with a core
    /// count other than `cores`.
    pub fn source(
        &self,
        cores: usize,
        scale: u64,
        seed: u64,
    ) -> Result<Box<dyn TraceSource>, ConfigError> {
        let Some(path) = &self.trace_file else {
            return Ok(Box::new(SyntheticTrace::new(self, cores, scale, seed)));
        };
        let trace_err = |message: String| ConfigError::Trace {
            path: path.display().to_string(),
            message,
        };
        // One streaming validation pass before replay: `TraceReader`
        // itself trusts the stream (its per-record path cannot report
        // errors), so verifying here keeps corrupt files from silently
        // truncating runs that bypass the builder (run_silo,
        // run_system, direct source() callers). The builder verifies
        // too, for typed errors at build time.
        silo_trace::verify(path).map_err(|e| trace_err(e.to_string()))?;
        let reader = TraceReader::open(path).map_err(|e| trace_err(e.to_string()))?;
        let recorded = reader.header().cores;
        if recorded != cores {
            return Err(trace_err(format!(
                "recorded with {recorded} cores; replay it with --cores {recorded}, not {cores}"
            )));
        }
        Ok(Box::new(reader))
    }
}

/// Region geometry of one generation run, resolved from a spec and a
/// capacity scale (shared by the materializing and streaming paths so
/// they stay bit-identical).
#[derive(Clone, Debug)]
struct Regions {
    private: u64,
    shared: u64,
    code: u64,
    zipf: Option<Zipf>,
}

impl Regions {
    fn of(spec: &WorkloadSpec, scale: u64) -> Self {
        let shared = (spec.shared_lines / scale).max(1);
        Regions {
            private: (spec.private_lines / scale).max(1),
            shared,
            code: (spec.code_lines / scale.min(8)).max(16),
            zipf: (spec.zipf_theta > 0.0).then(|| Zipf::new(shared, spec.zipf_theta)),
        }
    }
}

/// One core's generator state: its RNG stream and region base
/// addresses.
#[derive(Clone, Debug)]
struct CoreCursor {
    rng: Rng,
    priv_base: u64,
    code_base: u64,
}

/// Line-address base of the shared region (see the module docs).
const SHARED_BASE: u64 = 1 << 52;

impl CoreCursor {
    fn new(core: usize, seed: u64) -> Self {
        CoreCursor {
            rng: Rng::new(seed ^ (core as u64).wrapping_mul(0xa076_1d64_78bd_642f)),
            priv_base: (core as u64 + 1) << 32,
            code_base: (1u64 << 44) | ((core as u64 + 1) << 24),
        }
    }

    /// Draws the next reference of this core's stream. The draw order
    /// is the generator's wire format: changing it changes every seed's
    /// trace.
    fn gen_ref(&mut self, spec: &WorkloadSpec, regions: &Regions) -> MemRef {
        let rng = &mut self.rng;
        let gap = rng.below(2 * spec.mean_gap as u64 + 1) as u32;
        if rng.chance(spec.ifetch_fraction) {
            return MemRef {
                line: LineAddr::new(self.code_base + rng.below(regions.code)),
                kind: AccessKind::IFetch,
                gap_instructions: gap,
                dependent: false,
            };
        }
        let (line, shared_ref) = if rng.chance(spec.shared_fraction) {
            let off = match &regions.zipf {
                Some(z) => z.sample(rng),
                None => rng.below(regions.shared),
            };
            (LineAddr::new(SHARED_BASE + off), true)
        } else {
            (
                LineAddr::new(self.priv_base + rng.below(regions.private)),
                false,
            )
        };
        // Writes to the shared region are rarer than the overall write
        // mix (read-mostly sharing, Fig. 4).
        let wf = if shared_ref {
            spec.write_fraction * 0.4
        } else {
            spec.write_fraction
        };
        MemRef {
            line,
            kind: if rng.chance(wf) {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            gap_instructions: gap,
            dependent: rng.chance(spec.dependent_fraction),
        }
    }
}

/// The lazy synthetic generator: a [`TraceSource`] producing the same
/// per-core streams as [`WorkloadSpec::generate`] one reference at a
/// time, so a sweep point never materializes its trace. Each core owns
/// an independent RNG cursor; the Zipf lookup table is shared.
#[derive(Clone, Debug)]
pub struct SyntheticTrace {
    spec: WorkloadSpec,
    regions: Regions,
    cursors: Vec<CoreCursor>,
    remaining: Vec<usize>,
}

impl SyntheticTrace {
    /// Positions a fresh generator at the start of every core's stream.
    ///
    /// # Panics
    ///
    /// Panics for `trace:file=` replay specs (no synthetic generator).
    pub fn new(spec: &WorkloadSpec, cores: usize, scale: u64, seed: u64) -> Self {
        assert!(
            spec.trace_file.is_none(),
            "trace-backed workload '{}' streams from file; use WorkloadSpec::source",
            spec.name
        );
        SyntheticTrace {
            regions: Regions::of(spec, scale),
            cursors: (0..cores).map(|c| CoreCursor::new(c, seed)).collect(),
            remaining: vec![spec.refs_per_core; cores],
            spec: spec.clone(),
        }
    }
}

impl TraceSource for SyntheticTrace {
    fn next(&mut self, core: usize) -> Option<MemRef> {
        let remaining = self.remaining.get_mut(core)?;
        if *remaining == 0 {
            return None;
        }
        *remaining -= 1;
        Some(self.cursors[core].gen_ref(&self.spec, &self.regions))
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.spec.refs_per_core as u64 * self.cursors.len() as u64)
    }
}

/// Common region sizes expressed in 64-byte lines.
struct ByteLines;

impl ByteLines {
    const MIB4: u64 = 4 * 1024 * 1024 / 64;
    const MIB8: u64 = 8 * 1024 * 1024 / 64;
    const MIB16: u64 = 16 * 1024 * 1024 / 64;
    const MIB32: u64 = 32 * 1024 * 1024 / 64;
    const MIB48: u64 = 48 * 1024 * 1024 / 64;
    const MIB64: u64 = 64 * 1024 * 1024 / 64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(Rng::new(1).next_u64(), Rng::new(2).next_u64());
    }

    #[test]
    fn rng_below_is_in_range_and_deterministic() {
        let mut a = Rng::new(99);
        let mut b = Rng::new(99);
        for n in [1, 2, 3, 7, 1 << 20, u64::MAX - 1] {
            for _ in 0..200 {
                let v = a.below(n);
                assert!(v < n, "below({n}) returned {v}");
                assert_eq!(v, b.below(n), "same seed must give the same draws");
            }
        }
    }

    #[test]
    fn rng_below_is_roughly_uniform() {
        // A bucket count that is NOT a power of two, where the old
        // modulo fold would be detectably biased for adversarial n.
        let mut rng = Rng::new(17);
        const N: u64 = 12;
        const DRAWS: usize = 60_000;
        let mut counts = [0u32; N as usize];
        for _ in 0..DRAWS {
            counts[rng.below(N) as usize] += 1;
        }
        let expect = DRAWS as f64 / N as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(
                dev < 0.10,
                "bucket {i}: {c} deviates {dev:.3} from {expect}"
            );
        }
    }

    #[test]
    fn rng_f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = Rng::new(11);
        let mut head = 0;
        const N: usize = 10_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Top-1% of ranks should draw far more than 1% of samples.
        assert!(head > N / 20, "only {head}/{N} samples in the head");
    }

    #[test]
    fn generate_is_deterministic_and_sized() {
        let spec = WorkloadSpec::uniform_private();
        let a = spec.generate(4, 64, 42);
        let b = spec.generate(4, 64, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|t| t.len() == spec.refs_per_core));
        let c = spec.generate(4, 64, 43);
        assert_ne!(a, c, "different seed, different trace");
    }

    #[test]
    fn regions_do_not_overlap_across_cores() {
        let spec = WorkloadSpec::shared_mix();
        let traces = spec.generate(4, 64, 1);
        let shared_base = 1u64 << 52;
        for (core, trace) in traces.iter().enumerate() {
            for r in trace {
                let a = r.line.as_u64();
                if a >= shared_base {
                    continue; // shared region
                }
                if r.kind.is_ifetch() {
                    assert_eq!((a >> 24) & 0xff, core as u64 + 1, "code region of {core}");
                } else {
                    assert_eq!(a >> 32, core as u64 + 1, "private region of {core}");
                }
            }
        }
    }

    #[test]
    fn shared_fraction_roughly_respected() {
        let spec = WorkloadSpec::zipf_shared();
        let traces = spec.generate(2, 64, 5);
        let shared_base = 1u64 << 52;
        let total: usize = traces.iter().map(Vec::len).sum();
        let shared: usize = traces
            .iter()
            .flatten()
            .filter(|r| r.line.as_u64() >= shared_base)
            .count();
        let frac = shared as f64 / total as f64;
        // 30% of the 70% non-ifetch refs = 21% of all refs.
        assert!((0.15..0.28).contains(&frac), "shared fraction {frac}");
    }

    #[test]
    fn presets_resolve_by_name() {
        assert!(WorkloadSpec::by_name("zipf-shared").is_some());
        assert!(WorkloadSpec::by_name("producer-consumer").is_some());
        assert!(WorkloadSpec::by_name("code-heavy").is_some());
        assert!(WorkloadSpec::by_name("nope").is_none());
        assert!(WorkloadSpec::all().len() >= 6);
    }

    #[test]
    fn parse_accepts_presets_and_custom_specs() {
        let w = WorkloadSpec::parse("pointer-chase").expect("preset");
        assert_eq!(w.name, "pointer-chase");

        let w = WorkloadSpec::parse("zipf:theta=0.9,footprint=4x").expect("custom");
        assert_eq!(w.name, "zipf:theta=0.9,footprint=4x");
        assert_eq!(w.zipf_theta, 0.9);
        assert_eq!(
            w.private_lines,
            WorkloadSpec::zipf_shared().private_lines * 4
        );

        let w = WorkloadSpec::parse("uniform:footprint=64MiB,refs=1234").expect("absolute");
        assert_eq!(w.private_lines, 64 * 1024 * 1024 / 64);
        assert_eq!(w.refs_per_core, 1234);

        let w = WorkloadSpec::parse("pointer-chase:dependent=0.9,gap=2").expect("chase");
        assert_eq!(w.dependent_fraction, 0.9);
        assert_eq!(w.mean_gap, 2);
    }

    #[test]
    fn parse_rejects_malformed_specs_with_typed_errors() {
        assert!(matches!(
            WorkloadSpec::parse("nope"),
            Err(ConfigError::UnknownWorkload(_))
        ));
        for bad in [
            "zipf:theta=skewed",
            "zipf:theta=-1",
            "zipf:shared=1.5",
            "zipf:footprint=4",
            "zipf:footprint=0x",
            "zipf:footprint=99999999999999999MiB",
            "zipf:refs=0",
            "zipf:bogus=1",
            "zipf:theta",
        ] {
            assert!(
                matches!(
                    WorkloadSpec::parse(bad),
                    Err(ConfigError::BadWorkloadSpec { .. })
                ),
                "'{bad}' must be rejected as a bad spec"
            );
        }
    }

    #[test]
    fn default_refs_yield_to_an_explicit_refs_parameter() {
        let w = WorkloadSpec::parse_with_default_refs("zipf:refs=100", Some(4_000)).expect("ok");
        assert_eq!(w.refs_per_core, 100, "explicit refs= must win");
        let w = WorkloadSpec::parse_with_default_refs("zipf-shared", Some(4_000)).expect("ok");
        assert_eq!(w.refs_per_core, 4_000, "default applies without refs=");
    }

    #[test]
    fn split_list_keeps_parameters_with_their_base() {
        let items =
            WorkloadSpec::split_list("uniform-private,zipf:theta=0.9,footprint=4x,code-heavy")
                .expect("split");
        assert_eq!(
            items,
            vec![
                "uniform-private".to_string(),
                "zipf:theta=0.9,footprint=4x".to_string(),
                "code-heavy".to_string(),
            ]
        );
        assert!(WorkloadSpec::split_list("footprint=4x,zipf").is_err());
        // A parameter after a plain preset (no ':') is a user mistake,
        // not a continuation: reject it instead of gluing a garbage name.
        assert!(matches!(
            WorkloadSpec::split_list("uniform-private,refs=500"),
            Err(ConfigError::BadWorkloadSpec { .. })
        ));
    }

    #[test]
    fn trace_replay_specs_split_and_parse_alongside_customs() {
        let items = WorkloadSpec::split_list(
            "zipf:theta=0.9,footprint=4x,trace:file=caps/a.silotrace,code-heavy",
        )
        .expect("split");
        assert_eq!(
            items,
            vec![
                "zipf:theta=0.9,footprint=4x".to_string(),
                "trace:file=caps/a.silotrace".into(),
                "code-heavy".into(),
            ]
        );
        let w = WorkloadSpec::parse("trace:file=caps/a.silotrace").expect("parses");
        assert!(w.trace_file.is_some());
        // Replay length comes from the file, so the refs default does
        // not apply at parse time.
        let w = WorkloadSpec::parse_with_default_refs("trace:file=caps/a.silotrace", Some(9_000))
            .expect("parses");
        assert_eq!(w.refs_per_core, 0, "resolved from the file at build time");
    }

    #[test]
    fn parse_list_rejects_duplicates() {
        assert!(WorkloadSpec::parse_list("zipf-shared,code-heavy").is_ok());
        assert!(matches!(
            WorkloadSpec::parse_list("zipf-shared,zipf-shared"),
            Err(ConfigError::Duplicate { .. })
        ));
    }

    #[test]
    fn custom_specs_generate_deterministically() {
        let w = WorkloadSpec::parse("zipf:theta=0.5,footprint=2x").expect("custom");
        assert_eq!(w.generate(2, 64, 9), w.generate(2, 64, 9));
    }

    #[test]
    fn preset_names_are_unique() {
        let all = WorkloadSpec::all();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate preset name");
            }
        }
    }
}
