//! The system registry: named factories producing protocol engines.
//!
//! A [`SystemSpec`] pairs a name and one-line description with a factory
//! that instantiates a [`Protocol`](crate::Protocol) engine and its
//! [`TimingModel`] from a
//! [`SystemConfig`]. The [`SystemRegistry`] holds the built-in systems —
//! the paper's SILO/baseline pair plus sensitivity variants — and accepts
//! user-defined entries, so comparisons are N-way runtime data instead of
//! a hardcoded pair.
//!
//! Built-in systems:
//!
//! * `SILO` — private die-stacked DRAM vaults, MOESI with O-state
//!   forwarding (the paper's system).
//! * `baseline` — shared, banked, non-inclusive NUCA LLC with MESI.
//! * `silo-no-forward` — SILO with O-state forwarding disabled: a dirty
//!   owner supplying a reader writes back to memory and degrades to S.
//! * `baseline-2x` — the baseline with doubled aggregate LLC capacity.

use crate::config::SystemConfig;
use crate::run::{
    baseline_engine, run_metered_source, run_metered_source_checked, run_metered_source_profiled,
    silo_engine, AnyEngine, RunStats,
};
use crate::timing::TimingModel;
use crate::workload::WorkloadSpec;
use silo_obs::PhaseProfile;
use silo_telemetry::{MeterConfig, Telemetry};
use silo_trace::{SliceTrace, TraceSource};
use silo_types::ByteSize;
use std::fmt;
use std::sync::Arc;

/// A freshly instantiated system: the protocol engine plus the timing
/// model pricing its steps. Built-in factories produce concrete
/// [`AnyEngine`] variants (`.into()` from the engine type), so the run
/// loop dispatches accesses through a match instead of a vtable;
/// user-defined factories can keep boxing (`Box<dyn Protocol>` also
/// converts via `.into()`).
pub struct SystemInstance {
    /// The protocol engine.
    pub engine: AnyEngine,
    /// The priced resources (mesh, banks, memory) of this system.
    pub timing: TimingModel,
}

/// A named, registered system: a factory producing fresh
/// [`SystemInstance`]s from a [`SystemConfig`].
#[derive(Clone)]
pub struct SystemSpec {
    name: String,
    description: String,
    factory: Arc<dyn Fn(&SystemConfig) -> SystemInstance + Send + Sync>,
}

impl SystemSpec {
    /// Registers a new system under `name` with a one-line `description`
    /// and an instantiation factory.
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        factory: impl Fn(&SystemConfig) -> SystemInstance + Send + Sync + 'static,
    ) -> Self {
        SystemSpec {
            name: name.into(),
            description: description.into(),
            factory: Arc::new(factory),
        }
    }

    /// The registry name (also the `system` field of result rows).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-line description for `--list-systems`.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Builds a fresh engine + timing model for `cfg`.
    pub fn instantiate(&self, cfg: &SystemConfig) -> SystemInstance {
        (self.factory)(cfg)
    }
}

impl fmt::Debug for SystemSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemSpec")
            .field("name", &self.name)
            .field("description", &self.description)
            .finish_non_exhaustive()
    }
}

/// The set of runnable systems, looked up by name (case-insensitive).
#[derive(Clone, Debug)]
pub struct SystemRegistry {
    specs: Vec<SystemSpec>,
}

impl SystemRegistry {
    /// The registry of built-in systems (see the module docs).
    pub fn builtin() -> Self {
        let mut r = SystemRegistry { specs: Vec::new() };
        r.register(SystemSpec::new(
            "SILO",
            "private die-stacked DRAM vaults, MOESI with O-state forwarding (the paper's system)",
            |cfg| SystemInstance {
                engine: silo_engine(cfg, true).into(),
                timing: TimingModel::silo(cfg),
            },
        ));
        r.register(SystemSpec::new(
            "baseline",
            "shared, banked, non-inclusive NUCA LLC with an embedded MESI directory",
            |cfg| SystemInstance {
                engine: baseline_engine(cfg).into(),
                timing: TimingModel::baseline(cfg),
            },
        ));
        r.register(SystemSpec::new(
            "silo-no-forward",
            "SILO without O-state forwarding: dirty reads write back to memory (MESI-over-vaults)",
            |cfg| SystemInstance {
                engine: silo_engine(cfg, false).into(),
                timing: TimingModel::silo(cfg),
            },
        ));
        r.register(SystemSpec::new(
            "baseline-2x",
            "the shared-LLC baseline with doubled aggregate LLC capacity",
            |cfg| {
                let mut big = *cfg;
                big.llc_capacity = ByteSize::from_bytes(cfg.llc_capacity.as_bytes() * 2);
                SystemInstance {
                    engine: baseline_engine(&big).into(),
                    timing: TimingModel::baseline(&big),
                }
            },
        ));
        r
    }

    /// Adds (or replaces, by case-insensitive name) a system.
    pub fn register(&mut self, spec: SystemSpec) {
        if let Some(existing) = self
            .specs
            .iter_mut()
            .find(|s| s.name.eq_ignore_ascii_case(&spec.name))
        {
            *existing = spec;
        } else {
            self.specs.push(spec);
        }
    }

    /// Looks a system up by name, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&SystemSpec> {
        self.specs
            .iter()
            .find(|s| s.name.eq_ignore_ascii_case(name))
    }

    /// All registered systems, in registration order.
    pub fn specs(&self) -> &[SystemSpec] {
        &self.specs
    }

    /// The classic SILO-vs-baseline pair (the default selection).
    ///
    /// # Panics
    ///
    /// Panics if either name has been removed from the registry.
    pub fn classic_pair(&self) -> Vec<SystemSpec> {
        ["SILO", "baseline"]
            .iter()
            .map(|n| self.get(n).expect("built-in system present").clone())
            .collect()
    }
}

impl Default for SystemRegistry {
    fn default() -> Self {
        SystemRegistry::builtin()
    }
}

/// Instantiates `sys` for `cfg` and runs it over `workload`: the dyn
/// counterpart of [`crate::run_silo`] / [`crate::run_baseline`],
/// bit-identical to them for the built-in `SILO` / `baseline` entries.
/// The result's `system` field is the registry name, regardless of what
/// the underlying engine calls itself — so variants like
/// `silo-no-forward` and user-registered systems label their rows
/// correctly.
/// References stream from [`WorkloadSpec::source`] (lazy generation or
/// file replay), so nothing is materialized.
///
/// # Panics
///
/// Panics when a `trace:file=` workload's file cannot be opened; use
/// the builder API for fallible resolution.
pub fn run_system(
    sys: &SystemSpec,
    cfg: &SystemConfig,
    workload: &WorkloadSpec,
    seed: u64,
) -> RunStats {
    let mut source = workload
        .source(cfg.cores, cfg.scale, seed)
        .expect("workload source");
    run_system_on_source_metered(
        sys,
        cfg,
        &workload.name,
        &mut *source,
        &MeterConfig::default(),
    )
    .0
}

/// Like [`run_system`], but over pre-generated traces. Traces must come
/// from `WorkloadSpec::generate` with the same `cfg.cores` /
/// `cfg.scale` for results to be comparable.
pub fn run_system_on_traces(
    sys: &SystemSpec,
    cfg: &SystemConfig,
    workload_name: &str,
    traces: &[Vec<silo_types::MemRef>],
) -> RunStats {
    run_system_on_traces_metered(sys, cfg, workload_name, traces, &MeterConfig::default()).0
}

/// [`run_system_on_traces`] with the telemetry meter attached. With the
/// default meter the stats are bit-identical to the unmetered path.
pub fn run_system_on_traces_metered(
    sys: &SystemSpec,
    cfg: &SystemConfig,
    workload_name: &str,
    traces: &[Vec<silo_types::MemRef>],
    meter: &MeterConfig,
) -> (RunStats, Telemetry) {
    run_system_on_source_metered(sys, cfg, workload_name, &mut SliceTrace::new(traces), meter)
}

/// The streaming sweep-harness entry point behind `--warmup` /
/// `--epoch`: instantiates `sys` and drives it over `source`.
/// Bit-identical to the slice-based paths for the same reference
/// stream.
pub fn run_system_on_source_metered(
    sys: &SystemSpec,
    cfg: &SystemConfig,
    workload_name: &str,
    source: &mut dyn TraceSource,
    meter: &MeterConfig,
) -> (RunStats, Telemetry) {
    let mut inst = sys.instantiate(cfg);
    let (mut stats, telemetry) = run_metered_source(
        &mut inst.engine,
        &mut inst.timing,
        cfg,
        workload_name,
        source,
        meter,
    );
    stats.system = sys.name().to_string();
    (stats, telemetry)
}

/// [`run_system_on_source_metered`] with the run-time invariant oracle
/// enabled: every `check_every` references the engine's structural
/// invariants and the loop's cross-layer assertions are replayed (see
/// [`crate::run_metered_source_checked`]). Clean runs return results
/// bit-identical to the unchecked path.
///
/// # Errors
///
/// Returns the first invariant violation, naming the system and the
/// reference count at detection. A violation indicates a simulator bug.
pub fn run_system_on_source_checked(
    sys: &SystemSpec,
    cfg: &SystemConfig,
    workload_name: &str,
    source: &mut dyn TraceSource,
    meter: &MeterConfig,
    check_every: u64,
) -> Result<(RunStats, Telemetry), String> {
    let mut inst = sys.instantiate(cfg);
    let (mut stats, telemetry) = run_metered_source_checked(
        &mut inst.engine,
        &mut inst.timing,
        cfg,
        workload_name,
        source,
        meter,
        check_every,
    )
    .map_err(|e| format!("{}: invariant violation {e}", sys.name()))?;
    stats.system = sys.name().to_string();
    Ok((stats, telemetry))
}

/// [`run_system_on_source_metered`] with the hot-loop self-profiler
/// enabled (see [`crate::run_metered_source_profiled`]): the returned
/// statistics and telemetry are bit-identical to the unprofiled path,
/// plus a [`PhaseProfile`] of per-phase wall-clock samples.
pub fn run_system_on_source_profiled(
    sys: &SystemSpec,
    cfg: &SystemConfig,
    workload_name: &str,
    source: &mut dyn TraceSource,
    meter: &MeterConfig,
) -> (RunStats, Telemetry, PhaseProfile) {
    let mut inst = sys.instantiate(cfg);
    let (mut stats, telemetry, profile) = run_metered_source_profiled(
        &mut inst.engine,
        &mut inst.timing,
        cfg,
        workload_name,
        source,
        meter,
    );
    stats.system = sys.name().to_string();
    (stats, telemetry, profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_at_least_four_described_systems() {
        let r = SystemRegistry::builtin();
        assert!(r.specs().len() >= 4);
        for s in r.specs() {
            assert!(!s.name().is_empty());
            assert!(!s.description().is_empty(), "{} lacks a blurb", s.name());
        }
        for name in ["SILO", "baseline", "silo-no-forward", "baseline-2x"] {
            assert!(r.get(name).is_some(), "missing builtin '{name}'");
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let r = SystemRegistry::builtin();
        assert_eq!(r.get("silo").map(SystemSpec::name), Some("SILO"));
        assert_eq!(
            r.get("BASELINE-2X").map(SystemSpec::name),
            Some("baseline-2x")
        );
        assert!(r.get("ghost").is_none());
    }

    #[test]
    fn register_replaces_by_name() {
        let mut r = SystemRegistry::builtin();
        let n = r.specs().len();
        r.register(SystemSpec::new("SILO", "replaced", |cfg| SystemInstance {
            engine: silo_engine(cfg, true).into(),
            timing: TimingModel::silo(cfg),
        }));
        assert_eq!(r.specs().len(), n);
        assert_eq!(r.get("SILO").map(SystemSpec::description), Some("replaced"));
    }

    #[test]
    fn run_system_labels_rows_with_the_registry_name() {
        let cfg = SystemConfig::paper_16core().with_cores(2);
        let w = WorkloadSpec {
            refs_per_core: 300,
            ..WorkloadSpec::uniform_private()
        };
        let r = SystemRegistry::builtin();
        for name in ["SILO", "baseline", "silo-no-forward", "baseline-2x"] {
            let stats = run_system(r.get(name).expect("builtin"), &cfg, &w, 1);
            assert_eq!(stats.system, name);
            assert!(stats.instructions > 0);
        }
    }

    #[test]
    fn classic_pair_is_silo_then_baseline() {
        let pair = SystemRegistry::builtin().classic_pair();
        let names: Vec<&str> = pair.iter().map(SystemSpec::name).collect();
        assert_eq!(names, ["SILO", "baseline"]);
    }
}
