//! The simulator behind `silo-sim serve`: wires the generic
//! `silo-serve` daemon to this crate's scenario parser, validation
//! path, sweep decomposition, and row renderer.
//!
//! A submission body is a scenario file — the same `key = value`
//! format `--scenario` loads — validated through the exact
//! [`Simulation::builder`] path the CLI uses, so the daemon rejects
//! precisely what the CLI rejects, with the same messages. Planning
//! resolves the scenario to a [`SweepSpec`], expands its points, and
//! content-addresses each one via [`crate::canon`]; running a point is
//! [`crate::bench::run_point`] plus the [`crate::bench::record_json`]
//! renderer, so a served row is byte-identical to the corresponding
//! row of a direct `silo-sim` run — and the assembled document
//! ([`crate::canon::document_from_rows`]) byte-identical to `--json`
//! output, `wall_ms` values aside.

use crate::bench::{record_json, run_point, SweepPoint, SweepSpec};
use crate::builder::Simulation;
use crate::canon;
use crate::scenario::Scenario;
use crate::timeline::epoch_ndjson;
use silo_serve::{JobEngine, JobPlan, PointOutput};

/// One planned serve job: the resolved sweep, its expanded points, and
/// their precomputed content keys (trace files are hashed exactly once,
/// at plan time).
pub struct SimJob {
    spec: SweepSpec,
    points: Vec<SweepPoint>,
    keys: Vec<String>,
}

impl SimJob {
    /// The resolved sweep this job runs.
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }
}

/// The [`JobEngine`] implementation backing `silo-sim serve`.
pub struct SimJobEngine;

impl JobEngine for SimJobEngine {
    type Job = SimJob;

    fn plan(&self, body: &str) -> Result<JobPlan<SimJob>, String> {
        let scenario = Scenario::parse(body).map_err(|e| e.to_string())?;
        let sim = Simulation::builder()
            .scenario(&scenario)
            .build()
            .map_err(|e| e.to_string())?;
        let spec = sim.spec().clone();
        let points = spec.points();
        let keys = canon::point_keys(&spec)?;
        let sweep_hash = canon::sweep_hash_of_keys(&keys);
        Ok(JobPlan {
            points: points.len(),
            job: SimJob { spec, points, keys },
            sweep_hash,
        })
    }

    fn point_key(&self, job: &SimJob, index: usize) -> String {
        job.keys[index].clone()
    }

    fn run_point(&self, job: &SimJob, index: usize) -> Result<PointOutput, String> {
        let record = run_point(&job.spec, &job.points[index]);
        Ok(PointOutput {
            row: record_json(&record).to_string(),
            events: epoch_ndjson(&record),
        })
    }

    fn document(&self, job: &SimJob, rows: &[String]) -> String {
        canon::document_from_rows(rows, job.spec.seed)
            .expect("cached rows are rows this engine rendered")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCENARIO: &str = "\
systems = SILO, baseline
workloads = uniform-private
cores = 2
scale = 64, 128
refs = 400
seed = 9
";

    #[test]
    fn plan_resolves_points_and_keys() {
        let plan = SimJobEngine.plan(SCENARIO).expect("valid scenario");
        assert_eq!(plan.points, 2);
        assert_eq!(plan.sweep_hash.len(), 64);
        let k0 = SimJobEngine.point_key(&plan.job, 0);
        let k1 = SimJobEngine.point_key(&plan.job, 1);
        assert_ne!(k0, k1);
    }

    #[test]
    fn plan_rejects_what_the_builder_rejects() {
        let Err(err) = SimJobEngine.plan("systems = no-such-system\n") else {
            panic!("unknown system must fail to plan");
        };
        assert!(err.contains("no-such-system"), "{err}");
        assert!(SimJobEngine.plan("cores = zero\n").is_err());
    }

    /// Drops every `wall_ms` field — the one host-dependent value in a
    /// bench document — so two independent runs can be compared.
    fn strip_wall_ms(j: &mut crate::json::Json) {
        use crate::json::Json;
        match j {
            Json::Obj(fields) => {
                fields.retain(|(k, _)| k != "wall_ms");
                for (_, v) in fields {
                    strip_wall_ms(v);
                }
            }
            Json::Arr(items) => {
                for item in items {
                    strip_wall_ms(item);
                }
            }
            _ => {}
        }
    }

    #[test]
    fn epoch_metered_points_emit_typed_epoch_events() {
        let scenario = "\
systems = SILO, baseline
workloads = uniform-private
cores = 2
refs = 600
epoch = 400
seed = 9
";
        let plan = SimJobEngine.plan(scenario).expect("valid scenario");
        let out = SimJobEngine.run_point(&plan.job, 0).expect("point runs");
        // ceil(2 cores x 600 refs / 400 per epoch) = 3 epochs x 2 systems.
        assert_eq!(out.events.len(), 6);
        for line in &out.events {
            assert!(line.starts_with("{\"type\":\"epoch\","), "{line}");
            assert!(!line.contains("\"point\""), "no job-local index: {line}");
            crate::json::Json::parse(line).expect("event line parses");
        }
        // The events are exactly the record's timeline rendering.
        let record = run_point(plan.job.spec(), &plan.job.spec().points()[0]);
        assert_eq!(out.events, epoch_ndjson(&record));
    }

    #[test]
    fn run_point_rows_assemble_into_the_direct_document() {
        let plan = SimJobEngine.plan(SCENARIO).expect("valid scenario");
        let rows: Vec<String> = (0..plan.points)
            .map(|i| {
                let out = SimJobEngine.run_point(&plan.job, i).expect("point runs");
                assert!(out.events.is_empty(), "no epoch meter, no events");
                out.row
            })
            .collect();
        let doc = SimJobEngine.document(&plan.job, &rows);
        let direct = format!(
            "{}\n",
            crate::bench::sweep_json(
                &crate::bench::run_sweep_sequential(plan.job.spec()),
                plan.job.spec().seed
            )
        );
        let mut served = crate::json::Json::parse(&doc).expect("served doc parses");
        let mut want = crate::json::Json::parse(&direct).expect("direct doc parses");
        strip_wall_ms(&mut served);
        strip_wall_ms(&mut want);
        assert_eq!(
            served.to_string(),
            want.to_string(),
            "served document is bit-identical, wall_ms aside"
        );
    }
}
