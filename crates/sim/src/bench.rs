//! Parallel sweep/bench harness.
//!
//! A [`SweepSpec`] spans the cartesian product of (workload × cores ×
//! scale × mlp × vault design); every point runs each selected system
//! (from the [`crate::registry`]) and yields a [`BenchRecord`]. Runs are
//! deterministic and fully independent (each builds its own engines,
//! timing model, and traces — see `silo_types::stats`), so [`run_sweep`]
//! fans them out across OS threads with `std::thread::scope` and still
//! returns results in point order, bit-identical to
//! [`run_sweep_sequential`].
//!
//! [`sweep_json`] renders the records into the machine-readable
//! `silo-bench/v1` schema via the dependency-free [`crate::json`]
//! writer, capturing IPC, speedup, served-level fractions, LLC latency
//! percentiles, and per-run wall-clock. When the classic SILO/baseline
//! pair is among the selected systems, the legacy `silo`/`baseline`
//! point fields are emitted unchanged alongside the N-way `systems`
//! array.

use crate::config::{SystemConfig, VaultDesign};
use crate::error::ConfigError;
use crate::json::Json;
use crate::registry::{
    run_system_on_source_checked, run_system_on_source_metered, run_system_on_source_profiled,
    SystemSpec,
};
use crate::run::{RunStats, PROFILE_PHASES};
use crate::workload::{SyntheticTrace, WorkloadSpec};
use silo_coherence::ServedBy;
use silo_obs::PhaseProfile;
use silo_telemetry::{MeterConfig, Telemetry};
use silo_trace::TraceSource;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Version tag of the emitted JSON schema.
pub const SCHEMA: &str = "silo-bench/v1";

/// Version tag of the hot-loop throughput trajectory schema
/// (`BENCH_hotloop.json`, written by [`throughput`]).
pub const SCHEMA_HOTLOOP: &str = "silo-hotloop/v1";

/// Version tag of the hot-loop self-profiler schema
/// (`--profile-json`, rendered by [`profile_json`]).
pub const SCHEMA_PROFILE: &str = "silo-profile/v1";

pub mod gate;
pub mod throughput;

/// The swept dimensions. Single-element vectors degenerate to a classic
/// per-workload comparison run.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Template config; per-point dimensions override it.
    pub base: SystemConfig,
    /// Systems to run at every point, in report order.
    pub systems: Vec<SystemSpec>,
    /// Core counts to sweep.
    pub cores: Vec<usize>,
    /// Capacity-scaling factors to sweep.
    pub scales: Vec<u64>,
    /// MSHR counts to sweep.
    pub mlps: Vec<usize>,
    /// Vault designs to sweep.
    pub vaults: Vec<VaultDesign>,
    /// Workloads to run at every point.
    pub workloads: Vec<WorkloadSpec>,
    /// Workload RNG seed (shared by all points).
    pub seed: u64,
    /// Telemetry meter applied to every run: warmup window and epoch
    /// sampling (disabled by default).
    pub meter: MeterConfig,
    /// Run-time invariant oracle period: `Some(n)` replays the engine
    /// and cross-layer invariants every `n` processed references of
    /// every run (`--check`). `None` (the default) compiles the checks
    /// out of the hot loop entirely. Deliberately *not* part of
    /// [`MeterConfig`]: the meter is echoed into the `silo-bench/v1`
    /// document, and checked runs must stay byte-identical to unchecked
    /// ones.
    pub check_every: Option<u64>,
    /// Hot-loop self-profiler (`--profile`): samples per-phase
    /// wall-clock for every run and attaches a
    /// [`PhaseProfile`] to each [`SystemRun`]. Like `check_every`,
    /// deliberately *not* part of [`MeterConfig`] — profiled runs must
    /// keep the `silo-bench/v1` document byte-identical to unprofiled
    /// ones. Mutually exclusive with `check_every` (the builder rejects
    /// the combination).
    pub profile: bool,
}

impl SweepSpec {
    /// Expands the cartesian product, workload-major so a degenerate
    /// sweep preserves the classic report order.
    pub fn points(&self) -> Vec<SweepPoint> {
        let mut points = Vec::new();
        for w in &self.workloads {
            for &cores in &self.cores {
                for &scale in &self.scales {
                    for &mlp in &self.mlps {
                        for &vault in &self.vaults {
                            points.push(SweepPoint {
                                cores,
                                scale,
                                mlp,
                                vault,
                                workload: w.clone(),
                            });
                        }
                    }
                }
            }
        }
        points
    }
}

/// One point of the sweep: a workload plus the config overrides.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Core count.
    pub cores: usize,
    /// Capacity-scaling factor.
    pub scale: u64,
    /// MSHRs per core.
    pub mlp: usize,
    /// Vault design.
    pub vault: VaultDesign,
    /// Workload run at this point.
    pub workload: WorkloadSpec,
}

impl SweepPoint {
    /// The fully resolved config for this point.
    pub fn config(&self, base: &SystemConfig) -> SystemConfig {
        let mut cfg = self.vault.apply(base.with_cores(self.cores));
        cfg.scale = self.scale;
        cfg.mlp = self.mlp;
        cfg
    }
}

/// One system's result at one sweep point.
#[derive(Clone, Debug)]
pub struct SystemRun {
    /// The simulated statistics.
    pub stats: RunStats,
    /// Host wall-clock of the run, in milliseconds.
    pub wall_ms: f64,
    /// The run's telemetry: named counters, latency histograms, and the
    /// epoch timeline (empty under a disabled meter).
    pub telemetry: Telemetry,
    /// Per-phase wall-clock of the hot loop, present only under
    /// [`SweepSpec::profile`]. Host-dependent, so never rendered into
    /// the `silo-bench/v1` document.
    pub profile: Option<PhaseProfile>,
}

/// The outcome of one sweep point: every selected system's stats plus
/// per-run wall-clock, in system order.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// The point that produced this record.
    pub point: SweepPoint,
    /// One entry per system, in [`SweepSpec::systems`] order.
    pub runs: Vec<SystemRun>,
}

impl BenchRecord {
    /// The run of the system named `name` (case-insensitive), if it was
    /// part of the comparison.
    pub fn run(&self, name: &str) -> Option<&SystemRun> {
        self.runs
            .iter()
            .find(|r| r.stats.system.eq_ignore_ascii_case(name))
    }

    /// IPC ratio of `system` over `reference`, when both ran and the
    /// ratio is meaningful (`None` for degenerate zero-IPC runs, e.g. a
    /// warmup window that swallowed every reference).
    pub fn speedup_of(&self, system: &str, reference: &str) -> Option<f64> {
        let s = self.run(system)?;
        let r = self.run(reference)?;
        let ratio = s.stats.ipc() / r.stats.ipc();
        (ratio.is_finite() && ratio > 0.0).then_some(ratio)
    }

    /// The paper's headline ratio: SILO IPC over baseline IPC, when both
    /// systems were part of the comparison.
    pub fn speedup(&self) -> Option<f64> {
        self.speedup_of("SILO", "baseline")
    }

    /// Total host wall-clock across all systems, in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.runs.iter().map(|r| r.wall_ms).sum()
    }
}

/// Runs one sweep point (every selected system) and times each run.
/// Each system pulls its references from a fresh streaming
/// [`silo_trace::TraceSource`] ([`WorkloadSpec::source`]) — the lazy
/// synthetic generator or a `.silotrace` replay — so a point never
/// materializes its trace; identical seeds make the per-system streams
/// identical.
///
/// # Panics
///
/// Panics if the point resolves to an invalid config or a replay file
/// vanished since validation (the builder API checks both up front), or
/// — under [`SweepSpec::check_every`] — when the invariant oracle
/// detects a violation. An oracle panic is a simulator bug, never a
/// workload problem; the message names the system, workload, and
/// reference count at detection.
pub fn run_point(spec: &SweepSpec, point: &SweepPoint) -> BenchRecord {
    let cfg = point.config(&spec.base);
    cfg.validate().expect("sweep axes validated at build time");
    let runs = spec
        .systems
        .iter()
        .map(|sys| {
            let mut source = point
                .workload
                .source(cfg.cores, cfg.scale, spec.seed)
                .expect("workload sources validated at build time");
            let t = Instant::now();
            let (stats, telemetry, profile) = if spec.profile {
                let (stats, telemetry, profile) = run_system_on_source_profiled(
                    sys,
                    &cfg,
                    &point.workload.name,
                    &mut *source,
                    &spec.meter,
                );
                (stats, telemetry, Some(profile))
            } else {
                let (stats, telemetry) = match spec.check_every {
                    None => run_system_on_source_metered(
                        sys,
                        &cfg,
                        &point.workload.name,
                        &mut *source,
                        &spec.meter,
                    ),
                    Some(every) => run_system_on_source_checked(
                        sys,
                        &cfg,
                        &point.workload.name,
                        &mut *source,
                        &spec.meter,
                        every,
                    )
                    .unwrap_or_else(|e| {
                        panic!(
                            "--check detected a simulator bug on workload '{}': {e}",
                            point.workload.name
                        )
                    }),
                };
                (stats, telemetry, None)
            };
            SystemRun {
                stats,
                wall_ms: t.elapsed().as_secs_f64() * 1e3,
                telemetry,
                profile,
            }
        })
        .collect();
    BenchRecord {
        point: point.clone(),
        runs,
    }
}

/// Captures every generator-backed (workload × cores × scale)
/// combination of `spec` into `dir` as `.silotrace` files, streaming —
/// references flow straight from the lazy generator into the buffered
/// writer, so captures of any length use O(cores) memory. Replay
/// workloads are skipped (they already live on disk), and the mlp /
/// vault axes do not affect traces, so they fan out nothing. Returns
/// the written paths.
///
/// File names are `<name>-c<cores>-s<scale>.silotrace` with
/// non-filename characters of the workload name mapped to `-`; the
/// original name, seed, and spec string travel in the header, and a
/// replay run labels its result rows with that original name — which is
/// what makes record/replay rows byte-identical.
///
/// # Errors
///
/// Returns [`ConfigError::Trace`] when the directory cannot be created
/// or a file cannot be written.
pub fn record_traces(
    spec: &SweepSpec,
    dir: &std::path::Path,
) -> Result<Vec<std::path::PathBuf>, ConfigError> {
    let trace_err = |path: &std::path::Path, message: String| ConfigError::Trace {
        path: path.display().to_string(),
        message,
    };
    std::fs::create_dir_all(dir).map_err(|e| trace_err(dir, e.to_string()))?;
    let mut written = Vec::new();
    for w in &spec.workloads {
        if w.trace_file.is_some() {
            continue;
        }
        for &cores in &spec.cores {
            for &scale in &spec.scales {
                let sanitized: String = w
                    .name
                    .chars()
                    .map(|c| {
                        if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                            c
                        } else {
                            '-'
                        }
                    })
                    .collect();
                let path = dir.join(format!(
                    "{sanitized}-c{cores}-s{scale}.{}",
                    silo_trace::EXTENSION
                ));
                let header = silo_trace::TraceHeader {
                    cores,
                    refs_per_core: w.refs_per_core as u64,
                    seed: spec.seed,
                    name: w.name.clone(),
                    provenance: format!(
                        "silo-sim capture: spec '{}', cores {cores}, scale {scale}, seed {}",
                        w.name, spec.seed
                    ),
                };
                let mut writer = silo_trace::TraceWriter::create(&path, &header)
                    .map_err(|e| trace_err(&path, e.to_string()))?;
                let mut source = SyntheticTrace::new(w, cores, scale, spec.seed);
                // Round-robin interleaving: the order the run loop
                // consumes, so replay buffers at most one record per
                // core.
                let mut live = cores;
                let mut done = vec![false; cores];
                while live > 0 {
                    for (core, done) in done.iter_mut().enumerate() {
                        if *done {
                            continue;
                        }
                        match source.next(core) {
                            Some(mr) => writer
                                .write(core, mr)
                                .map_err(|e| trace_err(&path, e.to_string()))?,
                            None => {
                                *done = true;
                                live -= 1;
                            }
                        }
                    }
                }
                writer
                    .finish()
                    .map_err(|e| trace_err(&path, e.to_string()))?;
                written.push(path);
            }
        }
    }
    Ok(written)
}

/// Runs every point on the calling thread, in point order.
pub fn run_sweep_sequential(spec: &SweepSpec) -> Vec<BenchRecord> {
    spec.points().iter().map(|p| run_point(spec, p)).collect()
}

/// Fans the points out across up to `threads` OS threads (work-stealing
/// off a shared index) and returns the records in point order. Simulated
/// results are bit-identical to [`run_sweep_sequential`]; only the
/// wall-clock fields depend on the host.
pub fn run_sweep(spec: &SweepSpec, threads: usize) -> Vec<BenchRecord> {
    let points = spec.points();
    if points.is_empty() {
        return Vec::new();
    }
    let workers = threads.clamp(1, points.len());
    if workers == 1 {
        return run_sweep_sequential(spec);
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<BenchRecord>>> =
        (0..points.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(point) = points.get(i) else { break };
                let record = run_point(spec, point);
                *slots[i].lock().expect("result slot poisoned") = Some(record);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every point filled its slot")
        })
        .collect()
}

fn served_json(s: &RunStats) -> Json {
    let frac = |level| Json::Num(s.served.fraction(level));
    Json::Obj(vec![
        ("l1".into(), frac(ServedBy::L1)),
        ("l2".into(), frac(ServedBy::L2)),
        ("local_vault".into(), frac(ServedBy::LocalVault)),
        ("remote_vault".into(), frac(ServedBy::RemoteVault)),
        ("shared_llc".into(), frac(ServedBy::SharedLlc)),
        ("memory".into(), frac(ServedBy::Memory)),
    ])
}

fn latency_json(s: &RunStats) -> Json {
    // The legacy schema's percentiles are bucket upper edges; the
    // interpolated estimates live in the telemetry object.
    let p = |q| Json::Int(s.llc_latency.percentile_upper_edge(q) as i128);
    Json::Obj(vec![
        ("mean".into(), Json::Num(s.mean_llc_latency())),
        ("p50".into(), p(0.50)),
        ("p95".into(), p(0.95)),
        ("p99".into(), p(0.99)),
        ("max".into(), Json::Int(s.llc_latency.max() as i128)),
    ])
}

/// One system's telemetry as a JSON object: the recorder counters
/// verbatim, interpolated LLC latency percentiles, the timeline size,
/// and derived interconnect-pressure figures. Additive to the schema —
/// the legacy `silo` / `baseline` objects stay bit-identical.
fn telemetry_json(run: &SystemRun) -> Json {
    let t = &run.telemetry;
    let counters = Json::Obj(
        t.recorder
            .counters()
            .iter()
            .map(|(k, v)| (k.clone(), Json::Int(*v as i128)))
            .collect(),
    );
    let latency = t
        .recorder
        .get_histogram("llc_latency")
        .map_or(Json::Null, |h| {
            Json::Obj(vec![
                ("p50".into(), Json::Num(h.percentile(0.50))),
                ("p95".into(), Json::Num(h.percentile(0.95))),
                ("p99".into(), Json::Num(h.percentile(0.99))),
                ("max".into(), Json::Int(h.max() as i128)),
            ])
        });
    Json::Obj(vec![
        ("system".into(), Json::Str(run.stats.system.clone())),
        ("warmup_refs".into(), Json::Int(t.meter.warmup_refs as i128)),
        (
            "epoch_refs".into(),
            t.meter
                .epoch_refs
                .map_or(Json::Null, |e| Json::Int(e as i128)),
        ),
        ("epochs".into(), Json::Int(t.timeline.rows().len() as i128)),
        ("avg_hops".into(), Json::Num(run.stats.avg_hops())),
        ("counters".into(), counters),
        ("llc_latency".into(), latency),
    ])
}

fn system_json(run: &SystemRun) -> Json {
    let s = &run.stats;
    Json::Obj(vec![
        ("system".into(), Json::Str(s.system.clone())),
        ("ipc".into(), Json::Num(s.ipc())),
        ("instructions".into(), Json::Int(s.instructions as i128)),
        ("cycles".into(), Json::Int(s.cycles.as_u64() as i128)),
        ("llc_accesses".into(), Json::Int(s.llc_accesses as i128)),
        ("mesh_messages".into(), Json::Int(s.mesh_messages as i128)),
        ("served".into(), served_json(s)),
        ("llc_latency".into(), latency_json(s)),
        ("wall_ms".into(), Json::Num(run.wall_ms)),
    ])
}

/// Renders one record as a JSON point object. The legacy `silo` /
/// `baseline` fields appear whenever those systems ran (bit-identical to
/// the pairwise-era schema); the `systems` array always lists every
/// system's row.
pub fn record_json(r: &BenchRecord) -> Json {
    let mut fields = vec![
        ("workload".into(), Json::Str(r.point.workload.name.clone())),
        ("cores".into(), Json::Int(r.point.cores as i128)),
        ("scale".into(), Json::Int(r.point.scale as i128)),
        ("mlp".into(), Json::Int(r.point.mlp as i128)),
        (
            "vault_design".into(),
            Json::Str(r.point.vault.name().into()),
        ),
        ("speedup".into(), r.speedup().map_or(Json::Null, Json::Num)),
    ];
    if let Some(run) = r.run("SILO") {
        fields.push(("silo".into(), system_json(run)));
    }
    if let Some(run) = r.run("baseline") {
        fields.push(("baseline".into(), system_json(run)));
    }
    fields.push((
        "systems".into(),
        Json::Arr(r.runs.iter().map(system_json).collect()),
    ));
    fields.push((
        "telemetry".into(),
        Json::Arr(r.runs.iter().map(telemetry_json).collect()),
    ));
    Json::Obj(fields)
}

/// Renders a full sweep into the `silo-bench/v1` document.
pub fn sweep_json(records: &[BenchRecord], seed: u64) -> Json {
    let speedups: Vec<f64> = records.iter().filter_map(BenchRecord::speedup).collect();
    let geomean = if speedups.is_empty() {
        Json::Null
    } else {
        Json::Num(silo_types::geomean(&speedups))
    };
    let system_names: Vec<Json> = records
        .first()
        .map(|r| {
            r.runs
                .iter()
                .map(|run| Json::Str(run.stats.system.clone()))
                .collect()
        })
        .unwrap_or_default();
    // The meter is uniform across the sweep; report it once at the top
    // (derived from the records so the schema function stays pure).
    let meter = records
        .first()
        .and_then(|r| r.runs.first())
        .map(|run| run.telemetry.meter)
        .unwrap_or_default();
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("seed".into(), Json::Int(seed as i128)),
        (
            "telemetry".into(),
            Json::Obj(vec![
                ("warmup_refs".into(), Json::Int(meter.warmup_refs as i128)),
                (
                    "epoch_refs".into(),
                    meter
                        .epoch_refs
                        .map_or(Json::Null, |e| Json::Int(e as i128)),
                ),
            ]),
        ),
        ("systems".into(), Json::Arr(system_names)),
        ("geomean_speedup".into(), geomean),
        (
            "points".into(),
            Json::Arr(records.iter().map(record_json).collect()),
        ),
    ])
}

/// One phase's entry in the `silo-profile/v1` run object; root phases
/// additionally carry an additive `children` array with the same shape.
fn profile_phase_obj(p: &PhaseProfile, i: usize) -> Vec<(String, Json)> {
    vec![
        ("name".into(), Json::Str(p.labels()[i].clone())),
        ("ns".into(), Json::Int(p.nanos()[i] as i128)),
        ("samples".into(), Json::Int(p.samples()[i] as i128)),
        ("share".into(), Json::Num(p.share(i))),
    ]
}

/// Renders the hot-loop phase profiles of a profiled sweep into the
/// `silo-profile/v1` document: the root phase list once at the top,
/// then one entry per profiled run keyed by the point dimensions, with
/// per-phase accumulated nanoseconds, sample counts, and time shares.
/// A root phase with lap-probe sub-attribution carries an additive
/// `children` array of the same shape (children tile the parent, so
/// their `ns` sum to the parent's). Unprofiled runs contribute nothing.
pub fn profile_json(records: &[BenchRecord]) -> Json {
    let mut runs = Vec::new();
    for r in records {
        for run in &r.runs {
            let Some(p) = &run.profile else { continue };
            let phases = p
                .roots()
                .into_iter()
                .map(|i| {
                    let mut obj = profile_phase_obj(p, i);
                    let kids = p.children(i);
                    if !kids.is_empty() {
                        obj.push((
                            "children".into(),
                            Json::Arr(
                                kids.into_iter()
                                    .map(|c| Json::Obj(profile_phase_obj(p, c)))
                                    .collect(),
                            ),
                        ));
                    }
                    Json::Obj(obj)
                })
                .collect();
            runs.push(Json::Obj(vec![
                ("workload".into(), Json::Str(r.point.workload.name.clone())),
                ("system".into(), Json::Str(run.stats.system.clone())),
                ("cores".into(), Json::Int(r.point.cores as i128)),
                ("scale".into(), Json::Int(r.point.scale as i128)),
                ("mlp".into(), Json::Int(r.point.mlp as i128)),
                ("vault".into(), Json::Str(r.point.vault.name().into())),
                ("total_ns".into(), Json::Int(p.total_nanos() as i128)),
                ("phases".into(), Json::Arr(phases)),
            ]));
        }
    }
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA_PROFILE.into())),
        (
            "phases".into(),
            Json::Arr(
                PROFILE_PHASES
                    .iter()
                    .map(|s| Json::Str((*s).to_string()))
                    .collect(),
            ),
        ),
        ("runs".into(), Json::Arr(runs)),
    ])
}

/// Merges every run's phase profile into one aggregate, or `None` when
/// no run was profiled. Feeds `--profile-trace` (one Chrome trace with
/// the whole sweep's phase totals laid end-to-end).
pub fn merged_profile(records: &[BenchRecord]) -> Option<PhaseProfile> {
    let mut merged: Option<PhaseProfile> = None;
    for r in records {
        for run in &r.runs {
            let Some(p) = &run.profile else { continue };
            match &mut merged {
                Some(m) => m.merge(p),
                None => merged = Some(p.clone()),
            }
        }
    }
    merged
}

/// Writes the `silo-bench/v1` document to `path`.
///
/// # Errors
///
/// Propagates filesystem errors from the write.
pub fn write_json_file(
    path: &std::path::Path,
    records: &[BenchRecord],
    seed: u64,
) -> std::io::Result<()> {
    std::fs::write(path, format!("{}\n", sweep_json(records, seed)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SystemRegistry;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            base: SystemConfig::paper_16core(),
            systems: SystemRegistry::builtin().classic_pair(),
            cores: vec![2],
            scales: vec![64, 128],
            mlps: vec![4],
            vaults: vec![VaultDesign::Table2],
            workloads: vec![WorkloadSpec {
                refs_per_core: 500,
                ..WorkloadSpec::uniform_private()
            }],
            seed: 5,
            meter: MeterConfig::default(),
            check_every: None,
            profile: false,
        }
    }

    #[test]
    fn profiled_sweep_matches_unprofiled_and_renders_profile_json() {
        let spec = tiny_spec();
        let profiled = SweepSpec {
            profile: true,
            ..spec.clone()
        };
        let plain = run_sweep_sequential(&spec);
        let prof = run_sweep_sequential(&profiled);
        // Simulated results are bit-identical; only the profile rides
        // along — so the silo-bench/v1 documents match byte-for-byte,
        // wall_ms aside (compare the host-independent stats directly).
        for (a, b) in plain.iter().zip(&prof) {
            for (ra, rb) in a.runs.iter().zip(&b.runs) {
                assert_eq!(ra.stats, rb.stats);
                assert_eq!(ra.telemetry.recorder, rb.telemetry.recorder);
                assert!(ra.profile.is_none());
                let p = rb.profile.as_ref().expect("profiled run has a profile");
                // Roots first, then the engine and timing sub-phases.
                assert_eq!(p.labels()[..PROFILE_PHASES.len()], PROFILE_PHASES);
                assert_eq!(p.labels().len(), crate::run::profile_phase_tree().len());
                // 2 cores x 500 refs: one engine-step sample per ref.
                assert_eq!(p.samples()[1], 1_000);
                // Disabled meter: the telemetry phase never fires.
                assert_eq!(p.samples()[3], 0);
                // Lap-probe children tile their parents exactly.
                for parent in [1, 2] {
                    let kids: u64 = p.children(parent).iter().map(|&i| p.nanos()[i]).sum();
                    assert_eq!(kids, p.nanos()[parent]);
                }
            }
        }
        let doc = profile_json(&prof);
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(SCHEMA_PROFILE)
        );
        let runs = doc.get("runs").and_then(Json::as_arr).expect("runs");
        assert_eq!(runs.len(), 4, "2 points x 2 systems");
        let phases = runs[0]
            .get("phases")
            .and_then(Json::as_arr)
            .expect("phases");
        assert_eq!(phases.len(), PROFILE_PHASES.len(), "top level lists roots");
        let shares: f64 = phases
            .iter()
            .map(|p| p.get("share").and_then(Json::as_f64).expect("share"))
            .sum();
        assert!((shares - 1.0).abs() < 1e-9, "shares sum to 1, got {shares}");
        // engine_step carries a children array whose ns tile the parent.
        let engine = &phases[1];
        let parent_ns = engine.get("ns").and_then(Json::as_i64).expect("ns");
        let child_ns: i64 = engine
            .get("children")
            .and_then(Json::as_arr)
            .expect("children")
            .iter()
            .map(|c| c.get("ns").and_then(Json::as_i64).expect("child ns"))
            .sum();
        assert_eq!(child_ns, parent_ns);
        // Unprofiled records render an empty runs array.
        let empty = profile_json(&plain);
        assert_eq!(
            empty.get("runs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(0)
        );
        // And the merged profile aggregates all four runs.
        let merged = merged_profile(&prof).expect("profiles present");
        assert_eq!(merged.samples()[1], 4_000);
        assert!(merged_profile(&plain).is_none());
        assert!(merged.chrome_json().contains("\"name\":\"engine_step\""));
    }

    #[test]
    fn points_expand_the_cartesian_product() {
        let mut spec = tiny_spec();
        spec.cores = vec![2, 4];
        spec.vaults = vec![VaultDesign::Table2, VaultDesign::Capacity];
        let points = spec.points();
        assert_eq!(points.len(), 2 * 2 * 2);
        // Workload-major, then cores, scale, mlp, vault.
        assert_eq!(points[0].cores, 2);
        assert_eq!(points[0].vault, VaultDesign::Table2);
        assert_eq!(points[1].vault, VaultDesign::Capacity);
    }

    #[test]
    fn point_config_applies_overrides() {
        let spec = tiny_spec();
        let p = &spec.points()[1];
        let cfg = p.config(&spec.base);
        assert_eq!(cfg.cores, 2);
        assert_eq!(cfg.scale, 128);
        assert_eq!(cfg.mlp, 4);
        cfg.validate().expect("point config is valid");
    }

    #[test]
    fn sweep_records_carry_every_system() {
        let spec = tiny_spec();
        let records = run_sweep_sequential(&spec);
        assert_eq!(records.len(), 2);
        for r in &records {
            assert_eq!(r.runs.len(), 2);
            assert_eq!(r.runs[0].stats.system, "SILO");
            assert_eq!(r.runs[1].stats.system, "baseline");
            assert!(r.run("silo").is_some(), "lookup is case-insensitive");
            assert!(r.runs[0].stats.instructions > 0);
            assert!(r.speedup().expect("both systems present") > 0.0);
            assert!(r.wall_ms() >= 0.0);
        }
    }

    #[test]
    fn three_way_records_have_null_free_speedups_only_for_the_pair() {
        let mut spec = tiny_spec();
        spec.scales = vec![64];
        let reg = SystemRegistry::builtin();
        spec.systems = vec![
            reg.get("baseline").expect("builtin").clone(),
            reg.get("baseline-2x").expect("builtin").clone(),
        ];
        let records = run_sweep_sequential(&spec);
        assert_eq!(records[0].runs.len(), 2);
        assert!(records[0].speedup().is_none(), "no SILO in this selection");
        assert!(records[0]
            .speedup_of("baseline-2x", "baseline")
            .expect("pairing present")
            .is_finite());
        let doc = sweep_json(&records, spec.seed);
        assert_eq!(doc.get("geomean_speedup"), Some(&Json::Null));
    }

    #[test]
    fn sweep_json_has_schema_and_points() {
        let spec = tiny_spec();
        let records = run_sweep_sequential(&spec);
        let doc = sweep_json(&records, spec.seed);
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(doc.get("seed").and_then(Json::as_i64), Some(5));
        let systems = doc.get("systems").and_then(Json::as_arr).expect("systems");
        assert_eq!(systems.len(), 2);
        let points = doc.get("points").and_then(Json::as_arr).expect("points");
        assert_eq!(points.len(), records.len());
        let ipc = points[0]
            .get("silo")
            .and_then(|s| s.get("ipc"))
            .and_then(Json::as_f64)
            .expect("ipc");
        assert!((ipc - records[0].runs[0].stats.ipc()).abs() < 1e-12);
        let listed = points[0]
            .get("systems")
            .and_then(Json::as_arr)
            .expect("per-point systems array");
        assert_eq!(listed.len(), 2);
    }

    #[test]
    fn telemetry_json_is_additive_to_the_legacy_point_schema() {
        let mut spec = tiny_spec();
        spec.scales = vec![64];
        spec.meter = MeterConfig {
            warmup_refs: 100,
            epoch_refs: Some(200),
        };
        let records = run_sweep_sequential(&spec);
        let doc = sweep_json(&records, spec.seed);
        // Top-level meter echo.
        let top = doc.get("telemetry").expect("top-level telemetry");
        assert_eq!(top.get("warmup_refs").and_then(Json::as_u64), Some(100));
        assert_eq!(top.get("epoch_refs").and_then(Json::as_u64), Some(200));
        // Per-point telemetry rows, one per system, with counters.
        let point = &doc.get("points").and_then(Json::as_arr).expect("points")[0];
        let tel = point
            .get("telemetry")
            .and_then(Json::as_arr)
            .expect("telemetry array");
        assert_eq!(tel.len(), 2);
        assert_eq!(tel[0].get("system").and_then(Json::as_str), Some("SILO"));
        let counters = tel[0].get("counters").expect("counters object");
        assert!(counters
            .get("invalidations")
            .and_then(Json::as_u64)
            .is_some());
        assert!(counters
            .get("mesh_total_hops")
            .and_then(Json::as_u64)
            .is_some());
        // Epoch count matches ceil(total refs / epoch_refs): 2 cores x
        // 500 refs at 200/epoch = 5 epochs.
        assert_eq!(tel[0].get("epochs").and_then(Json::as_u64), Some(5));
        // The legacy per-system object is untouched by telemetry keys.
        let silo = point.get("silo").expect("legacy silo object");
        assert!(silo.get("telemetry").is_none());
        assert!(silo.get("ipc").is_some());
    }
}
