//! Declarative scenario files: a dependency-free `key = value` format
//! describing a complete comparison — systems, workloads (presets and
//! custom parameterizations), and sweep axes — loaded via `--scenario`
//! on the CLI or [`Scenario::load`] from library code.
//!
//! Format, one directive per line (`#` starts a comment, blank lines are
//! skipped; list values are comma-separated):
//!
//! ```text
//! # Fig. 11-style three-way comparison.
//! systems   = SILO, baseline, baseline-2x
//! workloads = uniform-private, zipf:theta=0.9,footprint=4x
//! workload  = pointer-chase:dependent=0.8      # appends one more
//! cores     = 16          # multiple values create a sweep axis
//! scale     = 64
//! mlp       = 8
//! vault     = table2
//! seed      = 42
//! refs      = 4000        # per-core reference-count override
//! threads   = 4
//! warmup    = 6400        # telemetry: refs of cache warmup (0 = off)
//! epoch     = 16000       # telemetry: refs per timeline epoch
//! check     = 50000       # invariant-oracle sweep period (refs)
//! profile   = on          # hot-loop self-profiler (1/0/true/false/on/off)
//! ```
//!
//! Workload lists use the same grammar as `--workloads`
//! ([`WorkloadSpec::split_list`]): preset names, `base:key=value`
//! custom parameterizations keeping their comma-separated parameters,
//! and `trace:file=PATH` replays of `.silotrace` captures. Every parse
//! failure is a typed [`ConfigError::Scenario`] naming the 1-based
//! line, and workload-spec failures restate the accepted grammar.

use crate::error::ConfigError;
use crate::workload::WorkloadSpec;
use std::path::Path;

/// A parsed scenario file: every field optional, merged onto a
/// [`crate::SimulationBuilder`] (explicit builder/CLI settings applied
/// afterwards win).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Scenario {
    /// Registry names of the systems to compare.
    pub systems: Option<Vec<String>>,
    /// Workload spec strings (preset names or custom parameterizations).
    pub workloads: Option<Vec<String>>,
    /// Core-count axis.
    pub cores: Option<Vec<usize>>,
    /// Capacity-scale axis.
    pub scales: Option<Vec<u64>>,
    /// MSHR-count axis.
    pub mlps: Option<Vec<usize>>,
    /// Vault-design names.
    pub vaults: Option<Vec<String>>,
    /// Workload RNG seed.
    pub seed: Option<u64>,
    /// Per-core reference-count override.
    pub refs: Option<usize>,
    /// Worker threads.
    pub threads: Option<usize>,
    /// Telemetry warmup window in references (0 disables it).
    pub warmup: Option<u64>,
    /// Telemetry epoch length in references.
    pub epoch: Option<u64>,
    /// Run-time invariant oracle period in references (`--check`).
    pub check: Option<u64>,
    /// Hot-loop self-profiler toggle (`--profile`).
    pub profile: Option<bool>,
}

/// Parses a scenario boolean: `1`/`0`, `true`/`false`, `on`/`off`
/// (case-insensitive).
fn parse_bool(line: usize, key: &str, value: &str) -> Result<bool, ConfigError> {
    match value.to_ascii_lowercase().as_str() {
        "1" | "true" | "on" => Ok(true),
        "0" | "false" | "off" => Ok(false),
        _ => Err(err(
            line,
            format!("bad {key} value '{value}' (use 1/0, true/false, or on/off)"),
        )),
    }
}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError::Scenario {
        line,
        message: message.into(),
    }
}

/// Grammar reminder appended to workload-spec failures, so a scenario
/// author sees the accepted forms without leaving the error message.
const SPEC_HINT: &str = " (workload specs are preset names, base:key=value custom \
     forms like zipf:theta=0.9,footprint=4x, or trace:file=PATH replays \
     of .silotrace captures — see --list-workloads)";

fn spec_err(line: usize, e: &ConfigError) -> ConfigError {
    err(line, format!("{e}{SPEC_HINT}"))
}

fn parse_num_list<T: std::str::FromStr>(
    line: usize,
    key: &str,
    value: &str,
) -> Result<Vec<T>, ConfigError> {
    let mut out = Vec::new();
    for part in value.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        out.push(
            part.parse()
                .map_err(|_| err(line, format!("bad {key} value '{part}'")))?,
        );
    }
    if out.is_empty() {
        return Err(err(line, format!("{key} needs at least one value")));
    }
    Ok(out)
}

fn parse_scalar<T: std::str::FromStr>(
    line: usize,
    key: &str,
    value: &str,
) -> Result<T, ConfigError> {
    value
        .parse()
        .map_err(|_| err(line, format!("bad {key} value '{value}'")))
}

fn parse_name_list(line: usize, key: &str, value: &str) -> Result<Vec<String>, ConfigError> {
    let out: Vec<String> = value
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(str::to_string)
        .collect();
    if out.is_empty() {
        return Err(err(line, format!("{key} needs at least one value")));
    }
    Ok(out)
}

impl Scenario {
    /// Parses a scenario document.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Scenario`] with the offending 1-based line
    /// number for any syntax problem: missing `=`, unknown or duplicate
    /// keys, unparseable values, or empty lists.
    pub fn parse(text: &str) -> Result<Scenario, ConfigError> {
        let mut s = Scenario::default();
        let mut pending_workloads: Vec<String> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let n = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(n, format!("expected 'key = value', got '{line}'")))?;
            let (key, value) = (key.trim().to_ascii_lowercase(), value.trim());
            if value.is_empty() {
                return Err(err(n, format!("key '{key}' has no value")));
            }
            let dup = |set: bool| -> Result<(), ConfigError> {
                if set {
                    Err(err(n, format!("duplicate key '{key}'")))
                } else {
                    Ok(())
                }
            };
            match key.as_str() {
                "systems" => {
                    dup(s.systems.is_some())?;
                    s.systems = Some(parse_name_list(n, "systems", value)?);
                }
                "workloads" => {
                    dup(s.workloads.is_some())?;
                    let items = WorkloadSpec::split_list(value).map_err(|e| spec_err(n, &e))?;
                    if items.is_empty() {
                        return Err(err(n, "workloads needs at least one value"));
                    }
                    // Validate each spec here so malformed parameters are
                    // reported with this line number, not later from the
                    // builder without one.
                    for item in &items {
                        WorkloadSpec::parse(item).map_err(|e| spec_err(n, &e))?;
                    }
                    s.workloads = Some(items);
                }
                // `workload` appends a single spec and may repeat.
                "workload" => {
                    WorkloadSpec::parse(value).map_err(|e| spec_err(n, &e))?;
                    pending_workloads.push(value.to_string());
                }
                "cores" => {
                    dup(s.cores.is_some())?;
                    s.cores = Some(parse_num_list(n, "cores", value)?);
                }
                "scale" => {
                    dup(s.scales.is_some())?;
                    s.scales = Some(parse_num_list(n, "scale", value)?);
                }
                "mlp" => {
                    dup(s.mlps.is_some())?;
                    s.mlps = Some(parse_num_list(n, "mlp", value)?);
                }
                "vault" => {
                    dup(s.vaults.is_some())?;
                    s.vaults = Some(parse_name_list(n, "vault", value)?);
                }
                "seed" => {
                    dup(s.seed.is_some())?;
                    s.seed = Some(parse_scalar(n, "seed", value)?);
                }
                "refs" => {
                    dup(s.refs.is_some())?;
                    s.refs = Some(parse_scalar(n, "refs", value)?);
                }
                "threads" => {
                    dup(s.threads.is_some())?;
                    s.threads = Some(parse_scalar(n, "threads", value)?);
                }
                "warmup" => {
                    dup(s.warmup.is_some())?;
                    s.warmup = Some(parse_scalar(n, "warmup", value)?);
                }
                "epoch" => {
                    dup(s.epoch.is_some())?;
                    s.epoch = Some(parse_scalar(n, "epoch", value)?);
                }
                "check" => {
                    dup(s.check.is_some())?;
                    s.check = Some(parse_scalar(n, "check", value)?);
                }
                "profile" => {
                    dup(s.profile.is_some())?;
                    s.profile = Some(parse_bool(n, "profile", value)?);
                }
                other => return Err(err(n, format!("unknown key '{other}'"))),
            }
        }
        if !pending_workloads.is_empty() {
            s.workloads
                .get_or_insert_with(Vec::new)
                .extend(pending_workloads);
        }
        Ok(s)
    }

    /// Reads and parses a scenario file.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Io`] when the file cannot be read and
    /// [`ConfigError::Scenario`] for parse failures.
    pub fn load(path: &Path) -> Result<Scenario, ConfigError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError::Io(format!("cannot read {}: {e}", path.display())))?;
        Scenario::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_scenario() {
        let s = Scenario::parse(
            "# three-way comparison\n\
             systems = SILO, baseline, baseline-2x\n\
             workloads = uniform-private, zipf:theta=0.9,footprint=4x\n\
             workload = pointer-chase:dependent=0.8  # appended\n\
             cores = 4, 8\n\
             scale = 64\n\
             mlp = 8\n\
             vault = table2\n\
             seed = 42\n\
             refs = 4000\n\
             threads = 2\n\
             warmup = 800\n\
             epoch = 1000\n\
             check = 5000\n\
             profile = off\n",
        )
        .expect("valid scenario");
        assert_eq!(
            s.systems.as_deref(),
            Some(&["SILO".to_string(), "baseline".into(), "baseline-2x".into()][..])
        );
        assert_eq!(
            s.workloads.as_deref(),
            Some(
                &[
                    "uniform-private".to_string(),
                    "zipf:theta=0.9,footprint=4x".into(),
                    "pointer-chase:dependent=0.8".into(),
                ][..]
            )
        );
        assert_eq!(s.cores.as_deref(), Some(&[4usize, 8][..]));
        assert_eq!(s.scales.as_deref(), Some(&[64u64][..]));
        assert_eq!(s.seed, Some(42));
        assert_eq!(s.refs, Some(4000));
        assert_eq!(s.threads, Some(2));
        assert_eq!(s.warmup, Some(800));
        assert_eq!(s.epoch, Some(1000));
        assert_eq!(s.check, Some(5000));
        assert_eq!(s.profile, Some(false));
    }

    #[test]
    fn profile_accepts_every_boolean_spelling() {
        for (value, want) in [
            ("1", true),
            ("true", true),
            ("ON", true),
            ("0", false),
            ("False", false),
            ("off", false),
        ] {
            let s = Scenario::parse(&format!("profile = {value}\n")).expect(value);
            assert_eq!(s.profile, Some(want), "profile = {value}");
        }
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let s = Scenario::parse("\n# all comments\n\n  # indented\n").expect("empty is fine");
        assert_eq!(s, Scenario::default());
    }

    #[test]
    fn malformed_lines_report_their_line_number() {
        for (text, needle) in [
            ("cores 16", "expected 'key = value'"),
            ("warp = 9", "unknown key"),
            ("cores = twelve", "bad cores value"),
            ("cores =", "no value"),
            ("seed = 1\nseed = 2", "duplicate key"),
            ("workloads = footprint=4x", "must follow"),
            ("workloads = zipf:theta=skewed", "not a number"),
            ("workload = zipf:bogus=1", "unknown parameter"),
            ("warmup = soon", "bad warmup value"),
            ("epoch = -5", "bad epoch value"),
            ("check = never", "bad check value"),
            ("profile = maybe", "bad profile value"),
            ("profile = 1\nprofile = 0", "duplicate key"),
            ("cores = ,", "at least one value"),
            ("systems = ,", "at least one value"),
            ("vault = ,", "at least one value"),
        ] {
            let e = Scenario::parse(text).expect_err(text);
            match e {
                ConfigError::Scenario { line, message } => {
                    assert!(line >= 1, "{text}: line {line}");
                    assert!(
                        message.contains(needle),
                        "'{text}' produced '{message}', wanted '{needle}'"
                    );
                }
                other => panic!("'{text}' produced non-scenario error {other:?}"),
            }
        }
    }

    #[test]
    fn workload_spec_errors_restate_the_grammar() {
        for text in [
            "workloads = zipf:bogus=1",
            "workload = trace:file=",
            "workloads = footprint=4x",
        ] {
            let e = Scenario::parse(text).expect_err(text);
            let msg = e.to_string();
            assert!(
                msg.contains("base:key=value") && msg.contains("trace:file=PATH"),
                "'{text}' error must document the spec grammar, got: {msg}"
            );
        }
    }

    #[test]
    fn load_reports_missing_files_as_io_errors() {
        let e = Scenario::load(Path::new("/nonexistent/x.scenario")).expect_err("missing");
        assert!(matches!(e, ConfigError::Io(_)));
    }
}
