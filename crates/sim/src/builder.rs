//! The builder-pattern library entry point.
//!
//! [`Simulation::builder`] composes a [`SystemConfig`], system
//! selections from the [`SystemRegistry`], workload specs (presets or
//! custom parameterizations), and sweep axes into a validated
//! [`Simulation`]. All validation happens in
//! [`SimulationBuilder::build`], which returns typed [`ConfigError`]s
//! instead of panicking, so `silo-sim` is usable as a library; the CLI
//! is a thin shim over this module.

use crate::bench::{self, BenchRecord, SweepSpec};
use crate::config::{SystemConfig, VaultDesign};
use crate::error::ConfigError;
use crate::registry::{SystemRegistry, SystemSpec};
use crate::scenario::Scenario;
use crate::workload::WorkloadSpec;
use silo_telemetry::MeterConfig;

/// A fully validated, runnable comparison: N systems × workloads ×
/// sweep axes. Construct through [`Simulation::builder`].
#[derive(Clone, Debug)]
pub struct Simulation {
    spec: SweepSpec,
    threads: Option<usize>,
}

impl Simulation {
    /// Starts a builder with the paper's defaults: the 16-core Table II
    /// config, the SILO/baseline pair, and all workload presets.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::default()
    }

    /// The validated sweep specification.
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// Worker threads the run will use: the explicit setting, else the
    /// host's available parallelism (minimum 4). Results never depend on
    /// this — parallel sweeps are bit-identical to sequential ones.
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map_or(4, std::num::NonZeroUsize::get)
                .max(4)
        })
    }

    /// Runs every sweep point over every system, fanning out across
    /// [`Simulation::threads`] workers; records come back in point
    /// order.
    pub fn run(&self) -> Vec<BenchRecord> {
        bench::run_sweep(&self.spec, self.threads())
    }

    /// Runs everything on the calling thread (bit-identical to
    /// [`Simulation::run`]).
    pub fn run_sequential(&self) -> Vec<BenchRecord> {
        bench::run_sweep_sequential(&self.spec)
    }
}

/// Composable configuration for a [`Simulation`]; every setter is
/// chainable and nothing is validated until [`SimulationBuilder::build`].
#[derive(Clone, Debug)]
pub struct SimulationBuilder {
    config: SystemConfig,
    registry: SystemRegistry,
    systems: Option<Vec<String>>,
    workloads: Option<Vec<String>>,
    workload_specs: Vec<WorkloadSpec>,
    cores: Option<Vec<usize>>,
    scales: Option<Vec<u64>>,
    mlps: Option<Vec<usize>>,
    vaults: Option<Vec<String>>,
    seed: u64,
    refs: Option<usize>,
    threads: Option<usize>,
    warmup: Option<u64>,
    epoch: Option<u64>,
    check: Option<u64>,
    profile: bool,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        SimulationBuilder {
            config: SystemConfig::paper_16core(),
            registry: SystemRegistry::builtin(),
            systems: None,
            workloads: None,
            workload_specs: Vec::new(),
            cores: None,
            scales: None,
            mlps: None,
            vaults: None,
            seed: 42,
            refs: None,
            threads: None,
            warmup: None,
            epoch: None,
            check: None,
            profile: false,
        }
    }
}

impl SimulationBuilder {
    /// Sets the template [`SystemConfig`] (per-point axes override it).
    pub fn config(mut self, config: SystemConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the system registry.
    pub fn registry(mut self, registry: SystemRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Registers (or replaces) a custom system in this builder's
    /// registry; select it by name with [`SimulationBuilder::systems`].
    pub fn register_system(mut self, spec: SystemSpec) -> Self {
        self.registry.register(spec);
        self
    }

    /// Selects the systems to compare, by registry name, in report
    /// order. Defaults to the SILO/baseline pair.
    pub fn systems<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.systems = Some(names.into_iter().map(Into::into).collect());
        self
    }

    /// Selects the workloads by spec string: preset names or custom
    /// parameterizations (see [`WorkloadSpec::parse`]). Defaults to all
    /// presets.
    pub fn workloads<I, S>(mut self, specs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.workloads = Some(specs.into_iter().map(Into::into).collect());
        self
    }

    /// Appends one fully built workload spec (for programmatic
    /// workloads that the string grammar cannot express).
    pub fn workload_spec(mut self, spec: WorkloadSpec) -> Self {
        self.workload_specs.push(spec);
        self
    }

    /// Sets the core-count axis (a single value for a flat run).
    pub fn cores(mut self, cores: impl IntoIterator<Item = usize>) -> Self {
        self.cores = Some(cores.into_iter().collect());
        self
    }

    /// Sets the capacity-scale axis.
    pub fn scales(mut self, scales: impl IntoIterator<Item = u64>) -> Self {
        self.scales = Some(scales.into_iter().collect());
        self
    }

    /// Sets the MSHR-count axis.
    pub fn mlps(mut self, mlps: impl IntoIterator<Item = usize>) -> Self {
        self.mlps = Some(mlps.into_iter().collect());
        self
    }

    /// Sets the vault-design axis by name (`table2`, `latency`,
    /// `capacity`).
    pub fn vault_designs<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.vaults = Some(names.into_iter().map(Into::into).collect());
        self
    }

    /// Sets the workload RNG seed (default 42).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the default per-core reference count: it replaces the
    /// preset counts of name-selected workloads, but an explicit
    /// `refs=` parameter in a custom spec wins, and specs added with
    /// [`SimulationBuilder::workload_spec`] keep their own count.
    pub fn refs_per_core(mut self, refs: usize) -> Self {
        self.refs = Some(refs);
        self
    }

    /// Sets the worker-thread count (default: host parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the warmup window: references (summed across cores) after
    /// which every run resets its measurement counters while preserving
    /// cache, directory, and bank-timing state. Zero (the default)
    /// disables warmup.
    pub fn warmup_refs(mut self, refs: u64) -> Self {
        self.warmup = Some(refs);
        self
    }

    /// Enables epoch sampling: every `refs` references each run records
    /// a timeline epoch (IPC, served-by-level counts, LLC latency
    /// percentiles, mesh link utilization, vault occupancy).
    pub fn epoch_refs(mut self, refs: u64) -> Self {
        self.epoch = Some(refs);
        self
    }

    /// Enables the run-time invariant oracle (`--check`): every `refs`
    /// processed references each run replays the engine's structural
    /// invariants plus the loop's cross-layer assertions, panicking on
    /// the first violation (a simulator bug). Off by default; when off,
    /// the checks are compiled out of the hot loop and the results of a
    /// later checked run are bit-identical.
    pub fn check_every(mut self, refs: u64) -> Self {
        self.check = Some(refs);
        self
    }

    /// Enables the hot-loop self-profiler (`--profile`): every run
    /// samples per-phase wall-clock (trace pull, engine step, timing,
    /// telemetry) and attaches a `PhaseProfile` to its
    /// [`crate::bench::SystemRun`]. Off by default; when off, the
    /// profiler's clock reads are compiled out of the hot loop and
    /// results are bit-identical either way. Mutually exclusive with
    /// [`SimulationBuilder::check_every`].
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Merges a parsed [`Scenario`] into the builder: every field the
    /// scenario sets replaces the builder's current value, so apply the
    /// scenario first and explicit overrides after.
    pub fn scenario(mut self, s: &Scenario) -> Self {
        if let Some(v) = &s.systems {
            self.systems = Some(v.clone());
        }
        if let Some(v) = &s.workloads {
            self.workloads = Some(v.clone());
        }
        if let Some(v) = &s.cores {
            self.cores = Some(v.clone());
        }
        if let Some(v) = &s.scales {
            self.scales = Some(v.clone());
        }
        if let Some(v) = &s.mlps {
            self.mlps = Some(v.clone());
        }
        if let Some(v) = &s.vaults {
            self.vaults = Some(v.clone());
        }
        if let Some(v) = s.seed {
            self.seed = v;
        }
        if let Some(v) = s.refs {
            self.refs = Some(v);
        }
        if let Some(v) = s.threads {
            self.threads = Some(v);
        }
        if let Some(v) = s.warmup {
            self.warmup = Some(v);
        }
        if let Some(v) = s.epoch {
            self.epoch = Some(v);
        }
        if let Some(v) = s.check {
            self.check = Some(v);
        }
        if let Some(v) = s.profile {
            self.profile = v;
        }
        self
    }

    /// Validates everything and produces a runnable [`Simulation`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for unknown system / workload / vault
    /// names, duplicate selections, out-of-range axis values, empty
    /// selections, or an inconsistent base config.
    pub fn build(self) -> Result<Simulation, ConfigError> {
        let systems = self.resolve_systems()?;
        let cores = self.validated_axis(
            self.cores.clone(),
            self.config.cores,
            "cores",
            |&c| (1..=64).contains(&c),
            "must be in [1, 64] (directory masks are u64)",
        )?;
        let workloads = self.resolve_workloads(&cores)?;
        let scales = self.validated_axis(
            self.scales.clone(),
            self.config.scale,
            "scale",
            |&s| s >= 1,
            "must be at least 1",
        )?;
        let mlps = self.validated_axis(
            self.mlps.clone(),
            self.config.mlp,
            "mlp",
            |&m| m >= 1,
            "must be at least 1",
        )?;
        let vaults = self.resolve_vaults()?;
        if let Some(refs) = self.refs {
            if refs == 0 {
                return Err(ConfigError::BadValue {
                    what: "refs".into(),
                    value: "0".into(),
                    reason: "must be at least 1".into(),
                });
            }
        }
        if let Some(threads) = self.threads {
            if threads == 0 {
                return Err(ConfigError::BadValue {
                    what: "threads".into(),
                    value: "0".into(),
                    reason: "must be at least 1".into(),
                });
            }
        }
        if self.epoch == Some(0) {
            return Err(ConfigError::BadValue {
                what: "epoch".into(),
                value: "0".into(),
                reason: "must be at least 1 reference per epoch".into(),
            });
        }
        if self.check == Some(0) {
            return Err(ConfigError::BadValue {
                what: "check".into(),
                value: "0".into(),
                reason: "must be at least 1 reference between oracle sweeps".into(),
            });
        }
        if self.profile && self.check.is_some() {
            return Err(ConfigError::BadValue {
                what: "profile".into(),
                value: "on".into(),
                reason: "cannot combine with check: the oracle sweeps would dominate \
                         the phase timings"
                    .into(),
            });
        }
        // Reject runs whose measurement window is provably empty — a
        // warmup window that swallows every reference — instead of
        // reporting undefined IPC and speedups. Trace workloads were
        // already checked against their exact record counts during
        // resolution.
        let warmup = self.warmup.unwrap_or(0);
        for w in workloads.iter().filter(|w| w.trace_file.is_none()) {
            for &c in &cores {
                let total = (w.refs_per_core as u64).saturating_mul(c as u64);
                if total <= warmup {
                    return Err(ConfigError::BadValue {
                        what: "warmup".into(),
                        value: warmup.to_string(),
                        reason: format!(
                            "swallows all {total} references of workload '{}' at {c} cores; \
                             nothing remains to measure",
                            w.name
                        ),
                    });
                }
            }
        }
        self.config.validate()?;
        Ok(Simulation {
            spec: SweepSpec {
                base: self.config,
                systems,
                cores,
                scales,
                mlps,
                vaults,
                workloads,
                seed: self.seed,
                meter: MeterConfig {
                    warmup_refs: self.warmup.unwrap_or(0),
                    epoch_refs: self.epoch,
                },
                check_every: self.check,
                profile: self.profile,
            },
            threads: self.threads,
        })
    }

    fn resolve_systems(&self) -> Result<Vec<SystemSpec>, ConfigError> {
        let Some(names) = &self.systems else {
            return Ok(self.registry.classic_pair());
        };
        if names.is_empty() {
            return Err(ConfigError::Empty("systems"));
        }
        let mut out: Vec<SystemSpec> = Vec::with_capacity(names.len());
        for name in names {
            let spec = self
                .registry
                .get(name)
                .ok_or_else(|| ConfigError::UnknownSystem(name.clone()))?;
            if out.iter().any(|s| s.name().eq_ignore_ascii_case(name)) {
                return Err(ConfigError::Duplicate {
                    what: "system",
                    name: name.clone(),
                });
            }
            out.push(spec.clone());
        }
        Ok(out)
    }

    fn resolve_workloads(&self, cores: &[usize]) -> Result<Vec<WorkloadSpec>, ConfigError> {
        // The global refs setting is a *default*: it replaces the preset
        // reference counts but yields to an explicit `refs=` parameter
        // in a custom spec, and never touches specs added directly with
        // `workload_spec` (their struct already states a count) or
        // `trace:file=` replays (their length is the file's).
        let mut out: Vec<WorkloadSpec> = match &self.workloads {
            Some(raw) => {
                let mut parsed = Vec::with_capacity(raw.len());
                for spec in raw {
                    parsed.push(WorkloadSpec::parse_with_default_refs(spec, self.refs)?);
                }
                parsed
            }
            None if self.workload_specs.is_empty() => {
                let mut all = WorkloadSpec::all();
                if let Some(refs) = self.refs {
                    for w in &mut all {
                        w.refs_per_core = refs;
                    }
                }
                all
            }
            None => Vec::new(),
        };
        out.extend(self.workload_specs.iter().cloned());
        // Uniqueness is judged on the names as selected (the spec
        // strings), *before* trace resolution substitutes header
        // names: replaying a capture alongside its same-named source
        // workload is the natural way to validate a round trip in one
        // run, and must not be rejected as a duplicate.
        for (i, w) in out.iter().enumerate() {
            if out[..i].iter().any(|o| o.name == w.name) {
                return Err(ConfigError::Duplicate {
                    what: "workload",
                    name: w.name.clone(),
                });
            }
        }
        for w in &mut out {
            resolve_trace_workload(w, cores, self.warmup.unwrap_or(0))?;
        }
        if out.is_empty() {
            return Err(ConfigError::Empty("workloads"));
        }
        Ok(out)
    }

    fn validated_axis<T: Copy + PartialEq + std::fmt::Display>(
        &self,
        values: Option<Vec<T>>,
        default: T,
        what: &str,
        ok: impl Fn(&T) -> bool,
        reason: &str,
    ) -> Result<Vec<T>, ConfigError> {
        let values = values.unwrap_or_else(|| vec![default]);
        if values.is_empty() {
            return Err(ConfigError::Empty("sweep axis"));
        }
        for (i, v) in values.iter().enumerate() {
            if !ok(v) {
                return Err(ConfigError::BadValue {
                    what: what.into(),
                    value: v.to_string(),
                    reason: reason.into(),
                });
            }
            if values[..i].contains(v) {
                return Err(ConfigError::Duplicate {
                    what: "axis value",
                    name: format!("{what} {v}"),
                });
            }
        }
        Ok(values)
    }

    fn resolve_vaults(&self) -> Result<Vec<VaultDesign>, ConfigError> {
        let Some(names) = &self.vaults else {
            return Ok(vec![VaultDesign::Table2]);
        };
        if names.is_empty() {
            return Err(ConfigError::Empty("vault designs"));
        }
        let mut out = Vec::with_capacity(names.len());
        for name in names {
            let v = VaultDesign::parse(name)
                .ok_or_else(|| ConfigError::UnknownVaultDesign(name.clone()))?;
            if v != VaultDesign::Table2 && v.design_point().is_none() {
                return Err(ConfigError::InfeasibleVaultDesign(name.clone()));
            }
            if out.contains(&v) {
                return Err(ConfigError::Duplicate {
                    what: "vault design",
                    name: name.clone(),
                });
            }
            out.push(v);
        }
        Ok(out)
    }
}

/// Resolves a `trace:file=` workload against its file: one streaming
/// [`silo_trace::verify`] pass checks the checksum and counts, the
/// header's workload name replaces the spec string (so replayed result
/// rows match the original run's rows byte for byte — two replays of
/// same-named captures will share a row label), the longest per-core
/// stream becomes `refs_per_core`, every value of the cores axis must
/// equal the recorded core count, and the *exact* record count must
/// leave a non-empty measurement window after `warmup` (per-core
/// streams may be uneven, so `refs_per_core × cores` would overcount).
/// Generator-backed workloads pass through untouched.
fn resolve_trace_workload(
    w: &mut WorkloadSpec,
    cores: &[usize],
    warmup: u64,
) -> Result<(), ConfigError> {
    let Some(path) = &w.trace_file else {
        return Ok(());
    };
    let trace_err = |message: String| ConfigError::Trace {
        path: path.display().to_string(),
        message,
    };
    let summary = silo_trace::verify(path).map_err(|e| trace_err(e.to_string()))?;
    let recorded = summary.header.cores;
    for &c in cores {
        if c != recorded {
            return Err(trace_err(format!(
                "recorded with {recorded} cores; replay it with cores = {recorded}, not {c}"
            )));
        }
    }
    w.refs_per_core = summary.per_core.iter().copied().max().unwrap_or(0) as usize;
    if !summary.header.name.is_empty() {
        w.name = summary.header.name.clone();
    }
    if summary.records == 0 {
        return Err(ConfigError::BadValue {
            what: format!("workload '{}'", w.name),
            value: "0 refs".into(),
            reason: "resolves to zero references (empty trace?); \
                     IPC and speedups would be undefined"
                .into(),
        });
    }
    if summary.records <= warmup {
        return Err(ConfigError::BadValue {
            what: "warmup".into(),
            value: warmup.to_string(),
            reason: format!(
                "swallows all {} references of trace workload '{}'; \
                 nothing remains to measure",
                summary.records, w.name
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_the_classic_comparison() {
        let sim = Simulation::builder().build().expect("defaults are valid");
        let spec = sim.spec();
        let names: Vec<&str> = spec.systems.iter().map(SystemSpec::name).collect();
        assert_eq!(names, ["SILO", "baseline"]);
        assert_eq!(spec.workloads.len(), WorkloadSpec::all().len());
        assert_eq!(spec.cores, vec![16]);
        assert_eq!(spec.seed, 42);
    }

    #[test]
    fn build_resolves_custom_selections() {
        let sim = Simulation::builder()
            .systems(["silo", "baseline-2x"])
            .workloads(["zipf:theta=0.3", "code-heavy"])
            .cores([2, 4])
            .mlps([4])
            .refs_per_core(100)
            .seed(7)
            .threads(2)
            .build()
            .expect("valid");
        let spec = sim.spec();
        assert_eq!(spec.systems[0].name(), "SILO");
        assert_eq!(spec.systems[1].name(), "baseline-2x");
        assert_eq!(spec.workloads[0].name, "zipf:theta=0.3");
        assert!(spec.workloads.iter().all(|w| w.refs_per_core == 100));
        assert_eq!(spec.points().len(), 2 * 2);
        assert_eq!(sim.threads(), 2);
    }

    #[test]
    fn build_rejects_bad_inputs_with_typed_errors() {
        let unknown = Simulation::builder().systems(["ghost"]).build();
        assert_eq!(
            unknown.err(),
            Some(ConfigError::UnknownSystem("ghost".into()))
        );

        let dup = Simulation::builder().systems(["SILO", "silo"]).build();
        assert!(matches!(dup, Err(ConfigError::Duplicate { .. })));

        let empty = Simulation::builder().systems(Vec::<String>::new()).build();
        assert_eq!(empty.err(), Some(ConfigError::Empty("systems")));

        let cores = Simulation::builder().cores([0]).build();
        assert!(matches!(cores, Err(ConfigError::BadValue { .. })));

        let cores = Simulation::builder().cores([4, 4]).build();
        assert!(matches!(cores, Err(ConfigError::Duplicate { .. })));

        let wl = Simulation::builder()
            .workloads(["zipf:theta=bogus"])
            .build();
        assert!(matches!(wl, Err(ConfigError::BadWorkloadSpec { .. })));

        let vault = Simulation::builder().vault_designs(["warp"]).build();
        assert_eq!(
            vault.err(),
            Some(ConfigError::UnknownVaultDesign("warp".into()))
        );

        let refs = Simulation::builder().refs_per_core(0).build();
        assert!(matches!(refs, Err(ConfigError::BadValue { .. })));
    }

    #[test]
    fn global_refs_default_yields_to_explicit_refs_params() {
        let sim = Simulation::builder()
            .workloads(["zipf-shared", "pointer-chase:refs=100"])
            .workload_spec(WorkloadSpec {
                name: "hand-built".into(),
                refs_per_core: 77,
                ..WorkloadSpec::uniform_private()
            })
            .refs_per_core(4_000)
            .cores([2])
            .build()
            .expect("valid");
        let w = &sim.spec().workloads;
        assert_eq!(w[0].refs_per_core, 4_000, "preset takes the default");
        assert_eq!(w[1].refs_per_core, 100, "explicit refs= wins");
        assert_eq!(w[2].refs_per_core, 77, "direct specs keep their count");
    }

    #[test]
    fn meter_settings_reach_the_spec_and_validate() {
        let sim = Simulation::builder()
            .warmup_refs(500)
            .epoch_refs(250)
            .build()
            .expect("valid");
        assert_eq!(sim.spec().meter.warmup_refs, 500);
        assert_eq!(sim.spec().meter.epoch_refs, Some(250));

        let off = Simulation::builder().build().expect("valid");
        assert!(off.spec().meter.is_disabled());

        let bad = Simulation::builder().epoch_refs(0).build();
        assert!(matches!(bad, Err(ConfigError::BadValue { .. })));
    }

    #[test]
    fn profile_reaches_the_spec_and_rejects_combining_with_check() {
        let sim = Simulation::builder().profile(true).build().expect("valid");
        assert!(sim.spec().profile);
        assert!(!Simulation::builder().build().expect("valid").spec().profile);

        let bad = Simulation::builder()
            .profile(true)
            .check_every(1000)
            .build();
        assert!(matches!(bad, Err(ConfigError::BadValue { .. })));
        let msg = bad.expect_err("rejected").to_string();
        assert!(msg.contains("cannot combine with check"), "{msg}");
    }

    #[test]
    fn scenario_profile_key_merges_into_the_builder() {
        let scenario = Scenario::parse("profile = on\n").expect("valid scenario");
        let sim = Simulation::builder()
            .scenario(&scenario)
            .build()
            .expect("valid");
        assert!(sim.spec().profile);
    }

    #[test]
    fn scenario_merges_under_explicit_settings() {
        let scenario =
            Scenario::parse("systems = SILO, baseline, baseline-2x\nseed = 9\ncores = 8\n")
                .expect("valid scenario");
        let sim = Simulation::builder()
            .scenario(&scenario)
            .seed(11) // explicit override applied after the scenario wins
            .build()
            .expect("valid");
        assert_eq!(sim.spec().systems.len(), 3);
        assert_eq!(sim.spec().cores, vec![8]);
        assert_eq!(sim.spec().seed, 11);
    }

    #[test]
    fn registered_custom_systems_resolve() {
        use crate::registry::SystemInstance;
        use crate::timing::TimingModel;
        let spec = SystemSpec::new("mini-llc", "baseline with a quarter LLC", |cfg| {
            let mut small = *cfg;
            small.llc_capacity = silo_types::ByteSize::from_bytes(cfg.llc_capacity.as_bytes() / 4);
            SystemInstance {
                engine: crate::run::baseline_engine(&small).into(),
                timing: TimingModel::baseline(&small),
            }
        });
        let sim = Simulation::builder()
            .register_system(spec)
            .systems(["baseline", "mini-llc"])
            .workloads(["uniform-private"])
            .cores([2])
            .refs_per_core(300)
            .build()
            .expect("valid");
        let records = sim.run_sequential();
        assert_eq!(records[0].runs.len(), 2);
        assert_eq!(records[0].runs[1].stats.system, "mini-llc");
        assert!(records[0].runs[1].stats.instructions > 0);
    }
}
