//! `silo-sim`: the timing core of the SILO reproduction.
//!
//! The coherence engines in `silo-coherence` are functional: each access
//! yields an [`silo_coherence::AccessResult`] listing the critical-path
//! protocol steps and the background work. This crate prices those steps
//! — mesh hops through `silo-noc`, DRAM bank occupancy through
//! `silo-dram`'s next-free-time reservations — models per-core miss
//! overlap from [`silo_types::MemRef`]'s `gap_instructions`/`dependent`
//! fields, and aggregates `silo_types::stats` into per-workload results.
//!
//! The `silo-sim` binary runs SILO ([`silo_coherence::PrivateMoesi`])
//! against the shared-LLC baseline ([`silo_coherence::SharedMesi`]) over
//! deterministic synthetic scale-out workloads and prints a Fig. 11-style
//! normalized-performance table. The [`bench`] module fans sweeps over
//! (workload × cores × scale × mlp × vault design) out across OS threads
//! and emits machine-readable `silo-bench/v1` JSON through the
//! dependency-free [`json`] module.

pub mod bench;
pub mod config;
pub mod json;
pub mod report;
pub mod run;
pub mod timing;
pub mod workload;

pub use bench::{run_sweep, run_sweep_sequential, BenchRecord, SweepPoint, SweepSpec};
pub use config::{SystemConfig, VaultDesign};
pub use json::Json;
pub use report::{print_comparison, render_comparison, render_row, Comparison};
pub use run::{run, run_baseline, run_silo, Protocol, RunStats, ServedCounts};
pub use timing::TimingModel;
pub use workload::{Rng, WorkloadSpec};
