//! `silo-sim`: the timing core of the SILO reproduction, usable as a
//! library or through the `silo-sim` CLI.
//!
//! The coherence engines in `silo-coherence` are functional: each access
//! yields an [`silo_coherence::AccessResult`] listing the critical-path
//! protocol steps and the background work. This crate prices those steps
//! — mesh hops through `silo-noc`, DRAM bank occupancy through
//! `silo-dram`'s next-free-time reservations — models per-core miss
//! overlap from [`silo_types::MemRef`]'s `gap_instructions`/`dependent`
//! fields, and aggregates `silo_types::stats` into per-workload results.
//!
//! The public API is scenario-first:
//!
//! * [`registry`] — a [`SystemRegistry`] of named [`SystemSpec`]
//!   factories producing `Box<dyn Protocol>` engines: the paper's
//!   SILO/baseline pair plus sensitivity variants (`silo-no-forward`,
//!   `baseline-2x`), extensible at runtime.
//! * [`builder`] — [`Simulation::builder`] composes configs, systems,
//!   workloads, and sweep axes; `build()` returns typed
//!   [`ConfigError`]s instead of panicking.
//! * [`scenario`] — a dependency-free `key = value` scenario-file
//!   format describing a whole comparison, loaded via `--scenario`.
//!
//! The [`mod@bench`] module fans sweeps over (workload × cores × scale ×
//! mlp × vault design) out across OS threads and emits machine-readable
//! `silo-bench/v1` JSON through the dependency-free [`json`] module.
//!
//! The run loop streams: every run pulls references one at a time from
//! a [`TraceSource`] (`silo-trace`) — the lazy synthetic generator
//! ([`SyntheticTrace`]), an in-memory slice, or a `.silotrace` replay
//! file — so trace length is bounded by disk, not RAM.
//! [`bench::record_traces`] (CLI `--record-traces DIR`) captures
//! generated workloads to versioned, checksummed binary files, the
//! `trace:file=PATH` workload spec replays them with result rows
//! byte-identical to the original synthetic run at the same seed, and
//! `silo-sim trace-info FILE` inspects captures.
//!
//! Measurement runs through the `silo-telemetry` subsystem: a
//! [`MeterConfig`] (`--warmup` / `--epoch`, scenario `warmup =` /
//! `epoch =`) adds a warmup window that resets measurement counters
//! while preserving simulated state, plus an epoch-sampled timeline
//! (IPC, served-by-level counts, LLC latency percentiles, mesh link
//! utilization, vault occupancy) exported as CSV by the [`mod@timeline`]
//! module and as an additive `telemetry` object in the JSON.
//!
//! # Library example
//!
//! ```
//! use silo_sim::{ConfigError, Simulation};
//!
//! let sim = Simulation::builder()
//!     .systems(["SILO", "baseline", "baseline-2x"])
//!     .workloads(["uniform-private", "zipf:theta=0.9,footprint=4x"])
//!     .cores([4])
//!     .refs_per_core(500)
//!     .seed(7)
//!     .threads(2)
//!     .build()?;
//! let records = sim.run();
//! assert_eq!(records.len(), 2); // one record per workload
//! for record in &records {
//!     assert_eq!(record.runs.len(), 3); // one run per system
//!     let speedup = record.speedup().expect("SILO and baseline ran");
//!     assert!(speedup.is_finite());
//! }
//! # Ok::<(), ConfigError>(())
//! ```

#![forbid(unsafe_code)]

pub mod bench;
pub mod builder;
pub mod canon;
pub mod config;
pub mod error;
pub mod json;
pub mod registry;
pub mod report;
pub mod run;
pub mod scenario;
pub mod serve;
pub mod timeline;
pub mod timing;
pub mod workload;

pub use bench::{
    record_traces, run_sweep, run_sweep_sequential, BenchRecord, SweepPoint, SweepSpec, SystemRun,
};
pub use builder::{Simulation, SimulationBuilder};
pub use config::{SystemConfig, VaultDesign};
pub use error::ConfigError;
pub use json::Json;
pub use registry::{
    run_system, run_system_on_source_checked, run_system_on_source_metered,
    run_system_on_source_profiled, run_system_on_traces, run_system_on_traces_metered,
    SystemInstance, SystemRegistry, SystemSpec,
};
pub use report::{name_widths, print_report, render_report, render_row};
pub use run::{
    run, run_baseline, run_metered, run_metered_source, run_metered_source_checked,
    run_metered_source_profiled, run_silo, run_source, AnyEngine, Protocol, RunStats, ServedCounts,
    PROFILE_PHASES,
};
pub use scenario::Scenario;
pub use serve::{SimJob, SimJobEngine};
pub use silo_telemetry::{MeterConfig, Telemetry};
pub use silo_trace::{
    SliceTrace, TraceError, TraceHeader, TraceReader, TraceSource, TraceSummary, TraceWriter,
};
pub use timeline::{timeline_csv, write_timeline_csv, TIMELINE_HEADER};
pub use timing::TimingModel;
pub use workload::{Rng, SyntheticTrace, WorkloadSpec};
