//! The simulation loop: drives a protocol engine over a workload trace
//! and prices every access with a [`TimingModel`].
//!
//! Core model (Sec. V-A: in-order scale-out cores with a few MSHRs):
//! each core retires `gap_instructions` at base CPI 1 between references,
//! SRAM hits are absorbed by the pipeline, and misses overlap up to the
//! MSHR limit unless the reference is `dependent` on the previous miss
//! (pointer chasing), which serialises.
//!
//! The loop is *streaming*: it pulls references one at a time from a
//! [`TraceSource`] — a lazy synthetic generator, a `.silotrace` file
//! reader, or an in-memory slice — so trace length is bounded by disk,
//! not RAM. [`run`] / [`run_metered`] remain the slice-based
//! conveniences; [`run_source`] / [`run_metered_source`] are the
//! streaming entry points, bit-identical for the same reference stream.
//!
//! [`run_metered_source`] additionally drives the telemetry subsystem:
//! a [`MeterConfig`] warmup window resets the measurement aggregates
//! mid-run (cache, directory, and bank-timing state are preserved) and
//! an epoch [`silo_telemetry::Timeline`] samples IPC,
//! served-by-level counts, LLC latency percentiles, mesh link
//! utilization, and vault occupancy every `epoch_refs` references.

use crate::config::SystemConfig;
use crate::timing::{TimingModel, TimingProbe, TIMING_SUBPHASES, TP_MSHR};
use crate::workload::WorkloadSpec;
use silo_coherence::{
    AccessResult, CoherenceStats, EngineProbe, PrivateMoesi, PrivateMoesiConfig, ServedBy,
    SharedMesi, SharedMesiConfig, ENGINE_SUBPHASES, EP_DIR,
};
use silo_obs::{Lap, PhaseProfile};
use silo_telemetry::{EpochEnv, MeterConfig, Recorder, ServiceLevel, Telemetry, Timeline};
use silo_trace::{SliceTrace, TraceSource};
use silo_types::stats::{ratio, Counter, Histogram};
use silo_types::{Cycles, MemRef};
use std::time::Instant;

/// A protocol engine the simulation loop can drive. Object-safe, so the
/// system registry can hand out `Box<dyn Protocol>` factories.
pub trait Protocol {
    /// Executes one reference from `core`.
    fn access(&mut self, core: usize, mr: MemRef) -> AccessResult;
    /// Executes one reference, writing into a caller-owned result so a
    /// hot loop can reuse the step buffers across accesses. The default
    /// delegates to [`Protocol::access`]; the built-in engines override
    /// it with their allocation-free paths.
    fn access_into(&mut self, core: usize, mr: MemRef, out: &mut AccessResult) {
        *out = self.access(core, mr);
    }
    /// [`Protocol::access_into`] with sub-phase wall-clock attribution
    /// for the profiled run path: the engine laps its internal segments
    /// (lookup, directory, fill, writeback) into `probe` as it goes.
    /// The default attributes the whole access to the directory bucket,
    /// so custom engines still show up in the profile tree without
    /// implementing lap placement.
    fn access_into_probed(
        &mut self,
        core: usize,
        mr: MemRef,
        out: &mut AccessResult,
        probe: &mut EngineProbe,
    ) {
        probe.begin();
        self.access_into(core, mr, out);
        probe.lap(EP_DIR);
    }
    /// Hints that `core` will access `line` shortly (the run loop issues
    /// this one round-robin turn ahead of the matching
    /// [`Protocol::access_into`]). Implementations may warm host-side
    /// caches but must not change any observable simulation state.
    fn prefetch(&self, core: usize, mr: MemRef) {
        let _ = (core, mr);
    }
    /// Display name of the system.
    fn system_name(&self) -> &str;
    /// The engine's coherence event counters.
    fn coherence_stats(&self) -> CoherenceStats;
    /// Zeroes the coherence event counters without touching protocol
    /// state (the warmup/measurement boundary).
    fn reset_coherence_stats(&mut self);
    /// Verifies the engine's structural invariants (directory caches,
    /// cache/directory agreement, occupancy). Called by the `--check`
    /// oracle; the default accepts everything so custom engines opt in.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    fn check_invariants(&self) -> Result<(), String> {
        Ok(())
    }
}

impl Protocol for PrivateMoesi {
    fn access(&mut self, core: usize, mr: MemRef) -> AccessResult {
        PrivateMoesi::access(self, core, mr)
    }
    #[inline]
    fn access_into(&mut self, core: usize, mr: MemRef, out: &mut AccessResult) {
        PrivateMoesi::access_into(self, core, mr, out);
    }
    #[inline]
    fn access_into_probed(
        &mut self,
        core: usize,
        mr: MemRef,
        out: &mut AccessResult,
        probe: &mut EngineProbe,
    ) {
        PrivateMoesi::access_into_probed(self, core, mr, out, probe);
    }
    #[inline]
    fn prefetch(&self, core: usize, mr: MemRef) {
        self.prefetch_hint(core, mr.line);
    }
    fn system_name(&self) -> &str {
        "SILO"
    }
    fn coherence_stats(&self) -> CoherenceStats {
        self.stats()
    }
    fn reset_coherence_stats(&mut self) {
        self.reset_stats();
    }
    fn check_invariants(&self) -> Result<(), String> {
        self.check()
    }
}

impl Protocol for SharedMesi {
    fn access(&mut self, core: usize, mr: MemRef) -> AccessResult {
        SharedMesi::access(self, core, mr)
    }
    #[inline]
    fn access_into(&mut self, core: usize, mr: MemRef, out: &mut AccessResult) {
        SharedMesi::access_into(self, core, mr, out);
    }
    #[inline]
    fn access_into_probed(
        &mut self,
        core: usize,
        mr: MemRef,
        out: &mut AccessResult,
        probe: &mut EngineProbe,
    ) {
        SharedMesi::access_into_probed(self, core, mr, out, probe);
    }
    #[inline]
    fn prefetch(&self, _core: usize, mr: MemRef) {
        self.prefetch_hint(mr.line);
    }
    fn system_name(&self) -> &str {
        "baseline"
    }
    fn coherence_stats(&self) -> CoherenceStats {
        self.stats()
    }
    fn reset_coherence_stats(&mut self) {
        self.reset_stats();
    }
    fn check_invariants(&self) -> Result<(), String> {
        self.check()
    }
}

/// The engine holder the registry instantiates: built-in systems get
/// concrete variants, so driving one through
/// [`run_metered_source`]`::<AnyEngine>` turns the per-reference
/// `access` call into a direct (inlinable) match arm instead of a
/// vtable dispatch. User-registered engines keep the boxed fallback —
/// one match + one virtual call, no slower than the old all-dyn path.
pub enum AnyEngine {
    /// The SILO private-vault MOESI engine (either forwarding variant).
    Silo(PrivateMoesi),
    /// The shared-LLC MESI baseline (any capacity).
    Baseline(SharedMesi),
    /// A user-registered engine behind dynamic dispatch.
    Custom(Box<dyn Protocol>),
}

impl Protocol for AnyEngine {
    #[inline]
    fn access(&mut self, core: usize, mr: MemRef) -> AccessResult {
        match self {
            AnyEngine::Silo(e) => PrivateMoesi::access(e, core, mr),
            AnyEngine::Baseline(e) => SharedMesi::access(e, core, mr),
            AnyEngine::Custom(e) => e.access(core, mr),
        }
    }
    #[inline]
    fn access_into(&mut self, core: usize, mr: MemRef, out: &mut AccessResult) {
        match self {
            AnyEngine::Silo(e) => PrivateMoesi::access_into(e, core, mr, out),
            AnyEngine::Baseline(e) => SharedMesi::access_into(e, core, mr, out),
            AnyEngine::Custom(e) => e.access_into(core, mr, out),
        }
    }
    #[inline]
    fn access_into_probed(
        &mut self,
        core: usize,
        mr: MemRef,
        out: &mut AccessResult,
        probe: &mut EngineProbe,
    ) {
        match self {
            AnyEngine::Silo(e) => PrivateMoesi::access_into_probed(e, core, mr, out, probe),
            AnyEngine::Baseline(e) => SharedMesi::access_into_probed(e, core, mr, out, probe),
            AnyEngine::Custom(e) => e.access_into_probed(core, mr, out, probe),
        }
    }
    #[inline]
    fn prefetch(&self, core: usize, mr: MemRef) {
        match self {
            AnyEngine::Silo(e) => e.prefetch_hint(core, mr.line),
            AnyEngine::Baseline(e) => e.prefetch_hint(mr.line),
            AnyEngine::Custom(e) => e.prefetch(core, mr),
        }
    }
    fn system_name(&self) -> &str {
        match self {
            AnyEngine::Silo(e) => e.system_name(),
            AnyEngine::Baseline(e) => e.system_name(),
            AnyEngine::Custom(e) => e.system_name(),
        }
    }
    fn coherence_stats(&self) -> CoherenceStats {
        match self {
            AnyEngine::Silo(e) => e.coherence_stats(),
            AnyEngine::Baseline(e) => e.coherence_stats(),
            AnyEngine::Custom(e) => e.coherence_stats(),
        }
    }
    fn reset_coherence_stats(&mut self) {
        match self {
            AnyEngine::Silo(e) => e.reset_coherence_stats(),
            AnyEngine::Baseline(e) => e.reset_coherence_stats(),
            AnyEngine::Custom(e) => e.reset_coherence_stats(),
        }
    }
    fn check_invariants(&self) -> Result<(), String> {
        match self {
            AnyEngine::Silo(e) => e.check(),
            AnyEngine::Baseline(e) => e.check(),
            AnyEngine::Custom(e) => e.check_invariants(),
        }
    }
}

impl From<PrivateMoesi> for AnyEngine {
    fn from(e: PrivateMoesi) -> Self {
        AnyEngine::Silo(e)
    }
}

impl From<SharedMesi> for AnyEngine {
    fn from(e: SharedMesi) -> Self {
        AnyEngine::Baseline(e)
    }
}

impl From<Box<dyn Protocol>> for AnyEngine {
    fn from(e: Box<dyn Protocol>) -> Self {
        AnyEngine::Custom(e)
    }
}

/// Phase labels of the hot-loop self-profiler, in index order: trace
/// pull (source + prefetch hint), engine step (`access_into`), timing
/// (MSHR bookkeeping + `TimingModel::charge`), and telemetry (epoch
/// sampling; zero samples when the meter is disabled).
pub const PROFILE_PHASES: [&str; 4] = ["trace_pull", "engine_step", "timing", "telemetry"];

/// Index of `trace_pull` in [`PROFILE_PHASES`].
const PH_TRACE: usize = 0;
/// Index of `engine_step` in [`PROFILE_PHASES`].
const PH_ENGINE: usize = 1;
/// Index of `timing` in [`PROFILE_PHASES`].
const PH_TIMING: usize = 2;
/// Index of `telemetry` in [`PROFILE_PHASES`].
const PH_TELEMETRY: usize = 3;

/// Index of the first engine sub-phase in the profiled phase tree (the
/// [`ENGINE_SUBPHASES`] buckets, children of `engine_step`).
const PH_ENGINE_CHILD0: usize = PROFILE_PHASES.len();
/// Index of the first timing sub-phase in the profiled phase tree (the
/// [`TIMING_SUBPHASES`] buckets, children of `timing`).
const PH_TIMING_CHILD0: usize = PH_ENGINE_CHILD0 + ENGINE_SUBPHASES.len();

/// The profiled run's full phase tree: the four [`PROFILE_PHASES`]
/// roots, then the [`ENGINE_SUBPHASES`] as children of `engine_step`,
/// then the [`TIMING_SUBPHASES`] as children of `timing`. Each
/// sub-phase group tiles its parent exactly — the lap probes take one
/// clock read per segment boundary, so children sum to the parent by
/// construction.
pub fn profile_phase_tree() -> Vec<(&'static str, Option<usize>)> {
    let mut tree: Vec<(&'static str, Option<usize>)> =
        PROFILE_PHASES.iter().map(|&l| (l, None)).collect();
    tree.extend(ENGINE_SUBPHASES.iter().map(|&l| (l, Some(PH_ENGINE))));
    tree.extend(TIMING_SUBPHASES.iter().map(|&l| (l, Some(PH_TIMING))));
    tree
}

/// Nanoseconds since `t`, saturating at `u64::MAX`.
#[inline]
fn elapsed_ns(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The telemetry-side service-level tag of a coherence classification.
fn service_level(s: ServedBy) -> ServiceLevel {
    match s {
        ServedBy::L1 => ServiceLevel::L1,
        ServedBy::L2 => ServiceLevel::L2,
        ServedBy::LocalVault => ServiceLevel::LocalVault,
        ServedBy::RemoteVault => ServiceLevel::RemoteVault,
        ServedBy::SharedLlc => ServiceLevel::SharedLlc,
        ServedBy::Memory => ServiceLevel::Memory,
    }
}

/// Builds the SILO engine for a config (shared by the concrete
/// [`run_silo`] path and the registry factories, so both construct
/// byte-identical hierarchies).
pub(crate) fn silo_engine(cfg: &SystemConfig, o_state_forwarding: bool) -> PrivateMoesi {
    PrivateMoesi::new(
        cfg.cores,
        &PrivateMoesiConfig {
            node_spec: cfg.node_spec,
            vault_capacity: cfg.vault_capacity,
            scale: cfg.scale,
            ideal_miss_predict: cfg.ideal_miss_predict,
            o_state_forwarding,
        },
    )
}

/// Builds the shared-LLC baseline engine for a config (shared by
/// [`run_baseline`] and the registry factories).
pub(crate) fn baseline_engine(cfg: &SystemConfig) -> SharedMesi {
    SharedMesi::new(
        cfg.cores,
        &SharedMesiConfig {
            node_spec: cfg.node_spec,
            llc_capacity: cfg.llc_capacity,
            llc_ways: cfg.llc_ways,
            scale: cfg.scale,
        },
    )
}

/// Per-service-level access counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServedCounts {
    /// L1 hits.
    pub l1: Counter,
    /// Private L2 hits.
    pub l2: Counter,
    /// Local-vault hits (SILO).
    pub local_vault: Counter,
    /// Remote-vault forwards (SILO).
    pub remote_vault: Counter,
    /// Shared-LLC hits including directory forwards (baseline).
    pub shared_llc: Counter,
    /// Main-memory accesses.
    pub memory: Counter,
}

impl ServedCounts {
    fn record(&mut self, s: ServedBy) {
        match s {
            ServedBy::L1 => self.l1.inc(),
            ServedBy::L2 => self.l2.inc(),
            ServedBy::LocalVault => self.local_vault.inc(),
            ServedBy::RemoteVault => self.remote_vault.inc(),
            ServedBy::SharedLlc => self.shared_llc.inc(),
            ServedBy::Memory => self.memory.inc(),
        }
    }

    /// Total classified accesses.
    pub fn total(&self) -> u64 {
        self.l1.get()
            + self.l2.get()
            + self.local_vault.get()
            + self.remote_vault.get()
            + self.shared_llc.get()
            + self.memory.get()
    }

    /// Fraction of accesses served at the given level.
    pub fn fraction(&self, s: ServedBy) -> f64 {
        let n = match s {
            ServedBy::L1 => self.l1.get(),
            ServedBy::L2 => self.l2.get(),
            ServedBy::LocalVault => self.local_vault.get(),
            ServedBy::RemoteVault => self.remote_vault.get(),
            ServedBy::SharedLlc => self.shared_llc.get(),
            ServedBy::Memory => self.memory.get(),
        };
        ratio(n, self.total())
    }
}

/// Aggregated results of one (system, workload) run.
///
/// `PartialEq` compares every simulated field, so tests can assert two
/// runs are bit-identical (e.g. dyn-dispatch vs. concrete-type paths).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunStats {
    /// Registry name of the system ("SILO", "baseline", or a variant).
    pub system: String,
    /// Workload name (preset name or the custom spec string).
    pub workload: String,
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// Makespan: the slowest core's finish cycle.
    pub cycles: Cycles,
    /// Per-level service counts.
    pub served: ServedCounts,
    /// Accesses that missed all SRAM levels (the paper's "LLC accesses").
    pub llc_accesses: u64,
    /// Critical-path latency distribution of LLC accesses.
    pub llc_latency: Histogram,
    /// Mesh messages sent.
    pub mesh_messages: u64,
    /// Total hops traversed by those messages.
    pub mesh_total_hops: u64,
    /// Flits carried by the busiest mesh link.
    pub mesh_max_link_flits: u64,
}

impl RunStats {
    /// Aggregate instructions per cycle (throughput over the makespan).
    pub fn ipc(&self) -> f64 {
        ratio(self.instructions, self.cycles.as_u64().max(1))
    }

    /// Mean critical-path latency of an LLC access, in cycles.
    pub fn mean_llc_latency(&self) -> f64 {
        self.llc_latency.mean()
    }

    /// Mean hops per mesh message (interconnect pressure, Sec. V-D).
    pub fn avg_hops(&self) -> f64 {
        ratio(self.mesh_total_hops, self.mesh_messages)
    }
}

/// A core's MSHR file: the completion times of its outstanding misses,
/// in a fixed-capacity inline buffer sized by `cfg.mlp` so the
/// per-miss path never allocates. Entries are an unordered multiset —
/// the stall rules below depend only on the completion-time *values*
/// (drop everything `<= issue`, stall to the minimum when full), so
/// removal is swap-with-last and the results stay bit-identical to the
/// old growable-`Vec` bookkeeping.
#[derive(Clone, Debug)]
struct Mshrs {
    done: Box<[Cycles]>,
    len: usize,
}

impl Mshrs {
    fn new(mlp: usize) -> Self {
        Mshrs {
            done: vec![Cycles::ZERO; mlp].into_boxed_slice(),
            len: 0,
        }
    }

    /// Retires every miss completed by the issue point.
    #[inline]
    fn drop_completed(&mut self, issue: Cycles) {
        let mut i = 0;
        while i < self.len {
            if self.done[i] <= issue {
                self.len -= 1;
                self.done[i] = self.done[self.len];
            } else {
                i += 1;
            }
        }
    }

    /// Frees a slot for the next miss: while every MSHR is busy, stall
    /// to the earliest-completing one and retire it (not the
    /// oldest-issued — a slow memory access must not pin MSHRs that
    /// vault hits have already vacated). Returns the possibly-delayed
    /// issue time.
    #[inline]
    fn acquire(&mut self, mut issue: Cycles) -> Cycles {
        while self.len >= self.done.len() {
            let mut idx = 0;
            for j in 1..self.len {
                if self.done[j] < self.done[idx] {
                    idx = j;
                }
            }
            issue = issue.max(self.done[idx]);
            self.len -= 1;
            self.done[idx] = self.done[self.len];
        }
        issue
    }

    /// Records a newly issued miss. Call only after [`Mshrs::acquire`],
    /// which guarantees a free slot.
    #[inline]
    fn push(&mut self, done: Cycles) {
        self.done[self.len] = done;
        self.len += 1;
    }
}

/// One core's in-flight state.
#[derive(Clone, Debug)]
struct CoreState {
    /// Retirement cursor (compute cycles consumed so far).
    cursor: Cycles,
    /// Outstanding misses (unordered; completions are not monotonic
    /// across banks and memory).
    mshrs: Mshrs,
    /// Completion of the most recent miss (dependency target).
    last_miss: Cycles,
    /// Latest completion seen (finish time candidate).
    finish: Cycles,
    instructions: u64,
}

impl CoreState {
    fn new(mlp: usize) -> Self {
        CoreState {
            cursor: Cycles::ZERO,
            mshrs: Mshrs::new(mlp),
            last_miss: Cycles::ZERO,
            finish: Cycles::ZERO,
            instructions: 0,
        }
    }
}

/// The two views of the LLC critical-path latency distribution, filled
/// by a single recording call per miss: the fixed-width histogram
/// reported in [`RunStats::llc_latency`] and the log2 histogram
/// exported through the telemetry recorder.
struct LatencyHists {
    linear: Histogram,
    log: Histogram,
}

impl LatencyHists {
    fn new() -> Self {
        LatencyHists {
            linear: Histogram::new(16, 64),
            log: Histogram::log2(),
        }
    }

    #[inline]
    fn record(&mut self, lat: u64) {
        self.linear.record(lat);
        self.log.record(lat);
    }

    fn reset(&mut self) {
        self.linear.reset();
        self.log.reset();
    }
}

/// The slowest core's current position: the makespan so far.
fn makespan(cores: &[CoreState]) -> Cycles {
    cores
        .iter()
        .map(|c| c.finish.max(c.cursor))
        .max()
        .unwrap_or(Cycles::ZERO)
}

/// Cumulative counter values at the warmup boundary; the measurement
/// window reports everything as a delta against these (shared timing
/// resources cannot simply be reset — that would discard bank
/// reservations and change the simulation).
#[derive(Clone, Debug, Default)]
struct MeasureBase {
    instructions: u64,
    cycles: u64,
    mesh_messages: u64,
    mesh_hops: u64,
    link_flits: Vec<u64>,
    vault_busy: u64,
    memory_accesses: u64,
}

/// The cumulative environment snapshot handed to the timeline at an
/// epoch boundary.
fn epoch_env<'a>(
    cores: &[CoreState],
    timing: &'a TimingModel,
    meter: &MeterConfig,
) -> EpochEnv<'a> {
    EpochEnv {
        cycles: makespan(cores).as_u64(),
        mesh_messages: timing.mesh().messages(),
        link_flits: timing.mesh().link_flits(),
        vault_busy_cycles: timing.vault_busy_cycles(),
        vault_banks: timing.vault_banks_total(),
        warmup_refs: meter.warmup_refs,
    }
}

/// Drives `engine` over per-core traces, interleaving cores round-robin,
/// and prices every access with `timing`. Returns aggregate statistics.
/// Equivalent to [`run_metered`] with a disabled meter.
///
/// # Panics
///
/// Panics if `traces.len()` differs from the configured core count.
pub fn run<P: Protocol + ?Sized>(
    engine: &mut P,
    timing: &mut TimingModel,
    cfg: &SystemConfig,
    workload_name: &str,
    traces: &[Vec<MemRef>],
) -> RunStats {
    run_metered(
        engine,
        timing,
        cfg,
        workload_name,
        traces,
        &MeterConfig::default(),
    )
    .0
}

/// [`run`] with the telemetry subsystem attached: after
/// `meter.warmup_refs` processed references the measurement aggregates
/// reset (simulated state is untouched), and every `meter.epoch_refs`
/// references the timeline records an epoch sample. With the default
/// meter the returned [`RunStats`] are bit-identical to [`run`].
///
/// # Panics
///
/// Panics if `traces.len()` differs from the configured core count.
pub fn run_metered<P: Protocol + ?Sized>(
    engine: &mut P,
    timing: &mut TimingModel,
    cfg: &SystemConfig,
    workload_name: &str,
    traces: &[Vec<MemRef>],
    meter: &MeterConfig,
) -> (RunStats, Telemetry) {
    assert_eq!(traces.len(), cfg.cores, "one trace per core");
    run_metered_source(
        engine,
        timing,
        cfg,
        workload_name,
        &mut SliceTrace::new(traces),
        meter,
    )
}

/// [`run`] over a streaming [`TraceSource`]: references are pulled one
/// at a time, so trace length is bounded by the source (a file, a lazy
/// generator), not by RAM. Bit-identical to [`run`] for the same
/// reference stream.
pub fn run_source<P: Protocol + ?Sized>(
    engine: &mut P,
    timing: &mut TimingModel,
    cfg: &SystemConfig,
    workload_name: &str,
    source: &mut dyn TraceSource,
) -> RunStats {
    run_metered_source(
        engine,
        timing,
        cfg,
        workload_name,
        source,
        &MeterConfig::default(),
    )
    .0
}

/// Ends the warmup window: zeroes the measurement aggregates and takes
/// counter baselines for the shared resources, but leaves caches,
/// directories, and bank reservations as they are. Executes at most
/// once per run, so the link-flit baseline vector is cloned exactly
/// once at the boundary (the old macro expansion duplicated the
/// capture code at both call sites).
fn end_warmup<P: Protocol + ?Sized>(
    engine: &mut P,
    timing: &TimingModel,
    cores: &[CoreState],
    served: &mut ServedCounts,
    llc_accesses: &mut u64,
    llc: &mut LatencyHists,
) -> MeasureBase {
    *served = ServedCounts::default();
    *llc_accesses = 0;
    llc.reset();
    engine.reset_coherence_stats();
    MeasureBase {
        instructions: cores.iter().map(|c| c.instructions).sum(),
        cycles: makespan(cores).as_u64(),
        mesh_messages: timing.mesh().messages(),
        mesh_hops: timing.mesh().total_hops(),
        link_flits: timing.mesh().link_flits().to_vec(),
        vault_busy: timing.vault_busy_cycles(),
        memory_accesses: timing.memory_accesses(),
    }
}

/// Cumulative-counter snapshot the `--check` oracle compares against:
/// these counters are monotone by construction (never reset, not even at
/// the warmup boundary — the measurement window subtracts a baseline
/// instead), so any decrease means corrupted accounting.
#[derive(Clone, Copy, Debug, Default)]
struct OracleBase {
    mesh_messages: u64,
    mesh_hops: u64,
    memory_accesses: u64,
    vault_busy: u64,
}

impl OracleBase {
    fn capture(timing: &TimingModel) -> Self {
        OracleBase {
            mesh_messages: timing.mesh().messages(),
            mesh_hops: timing.mesh().total_hops(),
            memory_accesses: timing.memory_accesses(),
            vault_busy: timing.vault_busy_cycles(),
        }
    }
}

/// One oracle sweep: the engine's own structural invariants, the MSHR
/// occupancy bound, and monotonicity of the cumulative timing counters.
/// `#[cold]` keeps it off the hot loop's inlining budget — with
/// checking disabled the call site is compiled out entirely.
#[cold]
fn oracle_sweep<P: Protocol + ?Sized>(
    engine: &P,
    timing: &TimingModel,
    cores: &[CoreState],
    mlp: usize,
    processed: u64,
    prev: &mut OracleBase,
) -> Result<(), String> {
    engine
        .check_invariants()
        .map_err(|e| format!("after {processed} refs: {e}"))?;
    for (c, core) in cores.iter().enumerate() {
        if core.mshrs.len > mlp {
            return Err(format!(
                "after {processed} refs: core {c} holds {} in-flight misses, MSHR limit {mlp}",
                core.mshrs.len
            ));
        }
    }
    let cur = OracleBase::capture(timing);
    let monotone = [
        ("mesh messages", prev.mesh_messages, cur.mesh_messages),
        ("mesh hops", prev.mesh_hops, cur.mesh_hops),
        ("memory accesses", prev.memory_accesses, cur.memory_accesses),
        ("vault busy cycles", prev.vault_busy, cur.vault_busy),
    ];
    for (name, before, now) in monotone {
        if now < before {
            return Err(format!(
                "after {processed} refs: cumulative {name} went backwards ({before} -> {now})"
            ));
        }
    }
    *prev = cur;
    Ok(())
}

/// The streaming core of the simulation: [`run_metered`] over a
/// [`TraceSource`]. Cores are interleaved round-robin — one reference
/// per live core per turn — until every core's stream is exhausted,
/// which both matches the slice-era iteration order exactly (so results
/// are bit-identical) and keeps file-backed replay memory bounded by
/// the reader's buffer instead of the trace length.
pub fn run_metered_source<P: Protocol + ?Sized>(
    engine: &mut P,
    timing: &mut TimingModel,
    cfg: &SystemConfig,
    workload_name: &str,
    source: &mut dyn TraceSource,
    meter: &MeterConfig,
) -> (RunStats, Telemetry) {
    let mut profile = PhaseProfile::new(&PROFILE_PHASES);
    match run_core::<P, false, false>(
        engine,
        timing,
        cfg,
        workload_name,
        source,
        meter,
        0,
        &mut profile,
    ) {
        Ok(out) => out,
        Err(e) => unreachable!("unchecked runs cannot fail: {e}"),
    }
}

/// [`run_metered_source`] with the hot-loop self-profiler enabled: each
/// of the [`PROFILE_PHASES`] is wall-clock sampled per reference (trace
/// pull per round), the engine and timing phases are further attributed
/// to the [`profile_phase_tree`] sub-phases by lap probes, and the
/// accumulated hierarchical [`PhaseProfile`] is returned alongside the
/// results. Profiling only reads the monotonic clock — it never touches
/// simulated state — so the returned statistics and telemetry are
/// **bit-identical** to [`run_metered_source`]. The unprofiled path is
/// a separate monomorphization with every clock read compiled out, so
/// leaving `--profile` off costs nothing.
pub fn run_metered_source_profiled<P: Protocol + ?Sized>(
    engine: &mut P,
    timing: &mut TimingModel,
    cfg: &SystemConfig,
    workload_name: &str,
    source: &mut dyn TraceSource,
    meter: &MeterConfig,
) -> (RunStats, Telemetry, PhaseProfile) {
    let mut profile = PhaseProfile::with_tree(&profile_phase_tree());
    match run_core::<P, false, true>(
        engine,
        timing,
        cfg,
        workload_name,
        source,
        meter,
        0,
        &mut profile,
    ) {
        Ok((stats, telemetry)) => (stats, telemetry, profile),
        Err(e) => unreachable!("unchecked runs cannot fail: {e}"),
    }
}

/// [`run_metered_source`] with the run-time invariant oracle enabled:
/// every `check_every` processed references it replays the engine's
/// structural invariants plus the loop's own cross-layer assertions
/// and aborts the run with a located error on the first violation.
///
/// The oracle only observes — it never mutates simulated state — so a
/// clean checked run returns statistics and telemetry **bit-identical**
/// to the unchecked path (the golden `check_oracle` test pins this).
/// The unchecked path is monomorphized with checking compiled out, so
/// leaving `--check` off costs nothing.
///
/// # Errors
///
/// Returns the first invariant violation, prefixed with the number of
/// references processed when it was detected. A violation indicates a
/// simulator bug, not a workload problem.
pub fn run_metered_source_checked<P: Protocol + ?Sized>(
    engine: &mut P,
    timing: &mut TimingModel,
    cfg: &SystemConfig,
    workload_name: &str,
    source: &mut dyn TraceSource,
    meter: &MeterConfig,
    check_every: u64,
) -> Result<(RunStats, Telemetry), String> {
    run_core::<P, true, false>(
        engine,
        timing,
        cfg,
        workload_name,
        source,
        meter,
        check_every.max(1),
        &mut PhaseProfile::new(&PROFILE_PHASES),
    )
}

/// The shared implementation behind the checked, unchecked, and
/// profiled entry points. `CHECKED` and `PROFILED` are const generics
/// so the oracle branch and the profiler's clock reads vanish from the
/// monomorphizations that don't use them instead of costing a
/// per-reference test. Only three monomorphizations exist per engine
/// type: unchecked, checked, and profiled (the builder rejects
/// combining `--check` with `--profile` — the oracle sweep would
/// dominate the phase timings).
#[allow(clippy::too_many_arguments)]
fn run_core<P: Protocol + ?Sized, const CHECKED: bool, const PROFILED: bool>(
    engine: &mut P,
    timing: &mut TimingModel,
    cfg: &SystemConfig,
    workload_name: &str,
    source: &mut dyn TraceSource,
    meter: &MeterConfig,
    check_every: u64,
    profile: &mut PhaseProfile,
) -> Result<(RunStats, Telemetry), String> {
    let mut cores: Vec<CoreState> = (0..cfg.cores).map(|_| CoreState::new(cfg.mlp)).collect();
    let mut served = ServedCounts::default();
    let mut llc_accesses = 0u64;
    let mut llc = LatencyHists::new();
    let mut timeline = Timeline::new(meter.epoch_refs.unwrap_or(0));
    if let Some(refs) = source.len_hint() {
        timeline.reserve_for(refs);
    }
    let mut base = MeasureBase::default();
    let mut processed = 0u64;
    let mut warmup_pending = meter.warmup_refs > 0;
    let mut oracle = OracleBase::capture(timing);
    // Hoisted once: a disabled timeline skips the per-reference
    // recording calls entirely, so the un-metered path touches no epoch
    // state inside the loop.
    let sampling = timeline.enabled();
    // One result buffer for the whole run: the engines write into it via
    // `access_into`, reusing the step vectors instead of allocating two
    // per reference.
    let mut res = AccessResult::default();
    // Lap probes for the profiled path: the engine laps its internal
    // segments, the timing phase laps mesh/bank/MSHR work. Folded into
    // `profile` once after the loop; untouched (and compiled out of the
    // hot path) when PROFILED is false.
    let mut eprobe = EngineProbe::new();
    let mut tprobe = TimingProbe::new();

    let mut exhausted = vec![false; cfg.cores];
    let mut live = cfg.cores;
    // Two-phase rounds: pull one reference per live core first (issuing
    // the engine's host-cache prefetch hint for each), then execute the
    // round in the same core order. Per-core streams are independent, so
    // batching the pulls changes neither any stream nor the execution
    // order — only how far ahead of its access each prefetch lands.
    let mut round: Vec<(usize, MemRef)> = Vec::with_capacity(cfg.cores);
    while live > 0 {
        round.clear();
        let t = PROFILED.then(Instant::now);
        for (c, done) in exhausted.iter_mut().enumerate() {
            if *done {
                continue;
            }
            match source.next(c) {
                Some(mr) => {
                    engine.prefetch(c, mr);
                    round.push((c, mr));
                }
                None => {
                    *done = true;
                    live -= 1;
                }
            }
        }
        if let Some(t) = t {
            profile.add(PH_TRACE, elapsed_ns(t));
        }
        for &(c, mr) in &round {
            // The reference instruction itself retires too: charge
            // `gap + 1` cycles to match the `gap + 1` instructions, or a
            // hit-only trace would report IPC above the base-CPI-1 ceiling.
            let instructions = mr.gap_instructions as u64 + 1;
            let mut latency = None;
            let served_by;
            {
                let core = &mut cores[c];
                core.instructions += instructions;
                core.cursor += Cycles(instructions);

                if PROFILED {
                    engine.access_into_probed(c, mr, &mut res, &mut eprobe);
                } else {
                    engine.access_into(c, mr, &mut res);
                }
                served_by = res.served_by();
                served.record(served_by);
                if PROFILED {
                    tprobe.begin();
                }
                if !res.llc_access {
                    // SRAM hit: absorbed by the pipeline at base CPI.
                    core.finish = core.finish.max(core.cursor);
                    if PROFILED {
                        tprobe.lap(TP_MSHR);
                    }
                } else {
                    llc_accesses += 1;

                    // Issue time: dependent misses wait for the previous
                    // miss; independent ones only wait for a free MSHR.
                    let issue = if mr.dependent {
                        core.cursor.max(core.last_miss)
                    } else {
                        core.cursor
                    };
                    core.mshrs.drop_completed(issue);
                    let issue = core.mshrs.acquire(issue);
                    if PROFILED {
                        tprobe.lap(TP_MSHR);
                    }

                    let done = if PROFILED {
                        timing.charge_probed(issue, &res, &mut tprobe)
                    } else {
                        timing.charge(issue, &res)
                    };
                    let lat = (done - issue).as_u64();
                    llc.record(lat);
                    latency = Some(lat);
                    core.mshrs.push(done);
                    core.last_miss = done;
                    core.finish = core.finish.max(done);
                    if mr.dependent {
                        // The pipeline stalls behind a serialised miss.
                        core.cursor = core.cursor.max(done);
                    }
                    if PROFILED {
                        tprobe.lap(TP_MSHR);
                    }
                }
            }

            processed += 1;
            if CHECKED && processed % check_every == 0 {
                oracle_sweep(&*engine, timing, &cores, cfg.mlp, processed, &mut oracle)?;
            }
            if sampling {
                let t = PROFILED.then(Instant::now);
                timeline.record_ref(service_level(served_by), instructions, latency);
                if timeline.epoch_full() {
                    timeline.flush(&epoch_env(&cores, timing, meter));
                }
                if let Some(t) = t {
                    profile.add(PH_TELEMETRY, elapsed_ns(t));
                }
            }
            if warmup_pending && processed >= meter.warmup_refs {
                warmup_pending = false;
                base = end_warmup(
                    &mut *engine,
                    timing,
                    &cores,
                    &mut served,
                    &mut llc_accesses,
                    &mut llc,
                );
            }
        }
    }
    if warmup_pending {
        // The warmup window swallowed the whole trace: still perform the
        // reset so the measurement window is consistently empty instead
        // of silently reporting cold-start full-run numbers.
        base = end_warmup(
            &mut *engine,
            timing,
            &cores,
            &mut served,
            &mut llc_accesses,
            &mut llc,
        );
    }
    timeline.finish(&epoch_env(&cores, timing, meter));

    if PROFILED {
        // Fold the lap-probe buckets into the hierarchical profile: each
        // child gets its accumulated bucket, each parent the probe's
        // total — so children sum to the parent exactly, and the parent
        // sample count is the number of probed calls (one per access).
        for (i, (&ns, &n)) in eprobe.nanos().iter().zip(eprobe.samples()).enumerate() {
            profile.add_bulk(PH_ENGINE_CHILD0 + i, ns, n);
        }
        profile.add_bulk(PH_ENGINE, eprobe.total_nanos(), eprobe.calls());
        for (i, (&ns, &n)) in tprobe.nanos().iter().zip(tprobe.samples()).enumerate() {
            profile.add_bulk(PH_TIMING_CHILD0 + i, ns, n);
        }
        profile.add_bulk(PH_TIMING, tprobe.total_nanos(), tprobe.calls());
    }

    let mesh = timing.mesh();
    let mesh_messages = mesh.messages() - base.mesh_messages;
    let mesh_total_hops = mesh.total_hops() - base.mesh_hops;
    let mesh_max_link_flits = mesh
        .link_flits()
        .iter()
        .enumerate()
        .map(|(l, &f)| f - base.link_flits.get(l).copied().unwrap_or(0))
        .max()
        .unwrap_or(0);
    let stats = RunStats {
        system: engine.system_name().to_string(),
        workload: workload_name.to_string(),
        instructions: cores.iter().map(|c| c.instructions).sum::<u64>() - base.instructions,
        cycles: Cycles(makespan(&cores).as_u64() - base.cycles),
        served,
        llc_accesses,
        llc_latency: llc.linear,
        mesh_messages,
        mesh_total_hops,
        mesh_max_link_flits,
    };

    let cs = engine.coherence_stats();
    let mut recorder = Recorder::new();
    recorder.set("invalidations", cs.invalidations.get());
    recorder.set("o_state_forwards", cs.o_state_forwards.get());
    recorder.set("directory_evictions", cs.directory_evictions.get());
    recorder.set("upgrades", cs.upgrades.get());
    recorder.set("dirty_writebacks", cs.dirty_writebacks.get());
    recorder.set("mesh_messages", mesh_messages);
    recorder.set("mesh_total_hops", mesh_total_hops);
    recorder.set("mesh_max_link_flits", mesh_max_link_flits);
    recorder.set(
        "memory_accesses",
        timing.memory_accesses() - base.memory_accesses,
    );
    recorder.set(
        "vault_busy_cycles",
        timing.vault_busy_cycles() - base.vault_busy,
    );
    *recorder.histogram("llc_latency") = llc.log;
    let telemetry = Telemetry {
        meter: *meter,
        recorder,
        timeline,
    };
    Ok((stats, telemetry))
}

/// Builds and runs the SILO system over a workload (the concrete-type
/// path; the registry's "SILO" entry produces bit-identical results
/// through dyn dispatch). References stream from
/// [`WorkloadSpec::source`] — lazily generated or replayed from file —
/// so the trace is never materialized.
///
/// # Panics
///
/// Panics when a `trace:file=` workload's file cannot be opened; use
/// the builder API for fallible resolution.
pub fn run_silo(cfg: &SystemConfig, spec: &WorkloadSpec, seed: u64) -> RunStats {
    let mut engine = silo_engine(cfg, true);
    let mut timing = TimingModel::silo(cfg);
    let mut source = spec
        .source(cfg.cores, cfg.scale, seed)
        .expect("workload source");
    run_source(&mut engine, &mut timing, cfg, &spec.name, &mut *source)
}

/// Builds and runs the shared-LLC baseline over the same workload.
///
/// # Panics
///
/// Same as [`run_silo`].
pub fn run_baseline(cfg: &SystemConfig, spec: &WorkloadSpec, seed: u64) -> RunStats {
    let mut engine = baseline_engine(cfg);
    let mut timing = TimingModel::baseline(cfg);
    let mut source = spec
        .source(cfg.cores, cfg.scale, seed)
        .expect("workload source");
    run_source(&mut engine, &mut timing, cfg, &spec.name, &mut *source)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> WorkloadSpec {
        WorkloadSpec {
            refs_per_core: 2_000,
            ..WorkloadSpec::uniform_private()
        }
    }

    fn quick_cfg() -> SystemConfig {
        SystemConfig::paper_16core().with_cores(4)
    }

    #[test]
    fn silo_run_produces_consistent_stats() {
        let s = run_silo(&quick_cfg(), &quick_spec(), 1);
        assert_eq!(s.system, "SILO");
        assert!(s.instructions > 0);
        assert!(s.cycles > Cycles::ZERO);
        assert!(s.ipc() > 0.0);
        assert_eq!(s.served.total(), 4 * 2_000);
        assert_eq!(s.llc_latency.count(), s.llc_accesses);
        assert!(s.served.local_vault.get() > 0, "vault must serve accesses");
    }

    #[test]
    fn baseline_run_uses_llc_not_vaults() {
        let s = run_baseline(&quick_cfg(), &quick_spec(), 1);
        assert_eq!(s.system, "baseline");
        assert_eq!(s.served.local_vault.get(), 0);
        assert_eq!(s.served.remote_vault.get(), 0);
        assert!(s.served.shared_llc.get() + s.served.memory.get() > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_silo(&quick_cfg(), &quick_spec(), 9);
        let b = run_silo(&quick_cfg(), &quick_spec(), 9);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.llc_accesses, b.llc_accesses);
    }

    #[test]
    fn both_systems_count_the_same_llc_accesses() {
        // Same SRAM geometry and the same trace: the engines agree on
        // which accesses left the SRAM levels up to the two documented
        // divergence sources (vault conflict back-invalidations and
        // upgrade decisions after L1 evictions of shared lines), so a
        // random workload matches only approximately. Exact equality on
        // a divergence-free trace is covered by the integration test
        // `both_engines_agree_on_llc_access_counts`.
        let cfg = quick_cfg();
        let spec = quick_spec();
        let a = run_silo(&cfg, &spec, 3);
        let b = run_baseline(&cfg, &spec, 3);
        let diff = a.llc_accesses.abs_diff(b.llc_accesses) as f64;
        assert!(
            diff / b.llc_accesses as f64 <= 0.01,
            "LLC access counts diverged: {} vs {}",
            a.llc_accesses,
            b.llc_accesses
        );
    }

    #[test]
    fn silo_beats_baseline_on_vault_friendly_workload() {
        // The private working set dwarfs the baseline's scaled LLC but
        // fits the vault: SILO must win (the paper's Fig. 11 direction).
        let cfg = quick_cfg();
        let spec = quick_spec();
        let silo = run_silo(&cfg, &spec, 7);
        let base = run_baseline(&cfg, &spec, 7);
        assert!(
            silo.ipc() > base.ipc(),
            "SILO {} <= baseline {}",
            silo.ipc(),
            base.ipc()
        );
    }

    #[test]
    fn hit_only_workload_never_exceeds_base_cpi() {
        // Every core hammers a single private line: after the cold miss
        // everything is an L1 hit, so throughput is capped by the base
        // CPI of 1 per core. The old loop charged only `gap` cycles for
        // `gap + 1` instructions and reported IPC = (gap+1)/gap > 1 here.
        use silo_types::{AccessKind, LineAddr};
        let cfg = SystemConfig::paper_16core().with_cores(1);
        let mut engine = silo_engine(&cfg, true);
        let mut timing = TimingModel::silo(&cfg);
        let traces: Vec<Vec<MemRef>> = (0..cfg.cores)
            .map(|c| {
                let line = LineAddr::new(((c as u64 + 1) << 32) | 1);
                (0..5_000)
                    .map(|_| MemRef {
                        line,
                        kind: AccessKind::Read,
                        gap_instructions: 3,
                        dependent: false,
                    })
                    .collect()
            })
            .collect();
        let s = run(&mut engine, &mut timing, &cfg, "hit-only", &traces);
        assert!(
            s.ipc() <= 1.0,
            "hit-only IPC {} exceeds the base-CPI-1 ceiling",
            s.ipc()
        );
        assert!(s.ipc() > 0.95, "hit-only IPC {} implausibly low", s.ipc());
    }

    #[test]
    fn hit_only_multicore_respects_per_core_ceiling() {
        // Aggregate IPC is throughput over the makespan, so the ceiling
        // for N perfectly pipelined cores is N x base CPI 1.
        use silo_types::{AccessKind, LineAddr};
        let cfg = quick_cfg();
        let mut engine = silo_engine(&cfg, true);
        let mut timing = TimingModel::silo(&cfg);
        let traces: Vec<Vec<MemRef>> = (0..cfg.cores)
            .map(|c| {
                let line = LineAddr::new(((c as u64 + 1) << 32) | 1);
                (0..5_000)
                    .map(|_| MemRef {
                        line,
                        kind: AccessKind::Read,
                        gap_instructions: 3,
                        dependent: false,
                    })
                    .collect()
            })
            .collect();
        let s = run(&mut engine, &mut timing, &cfg, "hit-only", &traces);
        assert!(
            s.ipc() <= cfg.cores as f64,
            "hit-only aggregate IPC {} exceeds {} x base CPI",
            s.ipc(),
            cfg.cores
        );
    }

    #[test]
    fn profiled_subphases_tile_their_parents_exactly() {
        // The lap probes take one clock read per segment boundary, so
        // the engine and timing children must sum to their parent to the
        // nanosecond — no gaps, no double counting (the ISSUE's 5%
        // budget is met by construction).
        let cfg = SystemConfig::paper_16core().with_cores(8);
        let spec = WorkloadSpec {
            refs_per_core: 2_000,
            ..WorkloadSpec::zipf_shared()
        };
        let mut engine = silo_engine(&cfg, true);
        let mut timing = TimingModel::silo(&cfg);
        let mut source = spec.source(cfg.cores, cfg.scale, 5).expect("source");
        let (stats, _tel, p) = run_metered_source_profiled(
            &mut engine,
            &mut timing,
            &cfg,
            &spec.name,
            &mut *source,
            &MeterConfig::default(),
        );
        assert_eq!(p.labels().len(), profile_phase_tree().len());
        let engine_children: u64 = p.children(PH_ENGINE).iter().map(|&i| p.nanos()[i]).sum();
        assert_eq!(engine_children, p.nanos()[PH_ENGINE]);
        let timing_children: u64 = p.children(PH_TIMING).iter().map(|&i| p.nanos()[i]).sum();
        assert_eq!(timing_children, p.nanos()[PH_TIMING]);
        // One probed engine call and one timing pass per reference.
        assert_eq!(p.samples()[PH_ENGINE], 8 * 2_000);
        assert_eq!(p.samples()[PH_TIMING], 8 * 2_000);
        // Every access goes through the lookup bucket at least once.
        assert!(p.nanos()[PH_ENGINE_CHILD0] > 0);
        // Profiling must not perturb the simulation.
        let unprofiled = run_silo(&cfg, &spec, 5);
        assert_eq!(stats, unprofiled);
    }

    #[test]
    fn dependent_refs_serialise_and_slow_the_core() {
        let cfg = quick_cfg();
        let chasing = WorkloadSpec {
            dependent_fraction: 1.0,
            ..quick_spec()
        };
        let overlapped = WorkloadSpec {
            dependent_fraction: 0.0,
            ..quick_spec()
        };
        let slow = run_silo(&cfg, &chasing, 2);
        let fast = run_silo(&cfg, &overlapped, 2);
        assert!(
            slow.cycles > fast.cycles,
            "serialised {} <= overlapped {}",
            slow.cycles,
            fast.cycles
        );
    }
}
