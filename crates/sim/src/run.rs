//! The simulation loop: drives a protocol engine over a workload trace
//! and prices every access with a [`TimingModel`].
//!
//! Core model (Sec. V-A: in-order scale-out cores with a few MSHRs):
//! each core retires `gap_instructions` at base CPI 1 between references,
//! SRAM hits are absorbed by the pipeline, and misses overlap up to the
//! MSHR limit unless the reference is `dependent` on the previous miss
//! (pointer chasing), which serialises.
//!
//! The loop is *streaming*: it pulls references one at a time from a
//! [`TraceSource`] — a lazy synthetic generator, a `.silotrace` file
//! reader, or an in-memory slice — so trace length is bounded by disk,
//! not RAM. [`run`] / [`run_metered`] remain the slice-based
//! conveniences; [`run_source`] / [`run_metered_source`] are the
//! streaming entry points, bit-identical for the same reference stream.
//!
//! [`run_metered_source`] additionally drives the telemetry subsystem:
//! a [`MeterConfig`] warmup window resets the measurement aggregates
//! mid-run (cache, directory, and bank-timing state are preserved) and
//! an epoch [`silo_telemetry::Timeline`] samples IPC,
//! served-by-level counts, LLC latency percentiles, mesh link
//! utilization, and vault occupancy every `epoch_refs` references.

use crate::config::SystemConfig;
use crate::timing::TimingModel;
use crate::workload::WorkloadSpec;
use silo_coherence::{
    AccessResult, CoherenceStats, PrivateMoesi, PrivateMoesiConfig, ServedBy, SharedMesi,
    SharedMesiConfig,
};
use silo_telemetry::{EpochEnv, MeterConfig, Recorder, ServiceLevel, Telemetry, Timeline};
use silo_trace::{SliceTrace, TraceSource};
use silo_types::stats::{ratio, Counter, Histogram};
use silo_types::{Cycles, MemRef};

/// A protocol engine the simulation loop can drive. Object-safe, so the
/// system registry can hand out `Box<dyn Protocol>` factories.
pub trait Protocol {
    /// Executes one reference from `core`.
    fn access(&mut self, core: usize, mr: MemRef) -> AccessResult;
    /// Display name of the system.
    fn system_name(&self) -> &str;
    /// The engine's coherence event counters.
    fn coherence_stats(&self) -> CoherenceStats;
    /// Zeroes the coherence event counters without touching protocol
    /// state (the warmup/measurement boundary).
    fn reset_coherence_stats(&mut self);
}

impl Protocol for PrivateMoesi {
    fn access(&mut self, core: usize, mr: MemRef) -> AccessResult {
        PrivateMoesi::access(self, core, mr)
    }
    fn system_name(&self) -> &str {
        "SILO"
    }
    fn coherence_stats(&self) -> CoherenceStats {
        self.stats()
    }
    fn reset_coherence_stats(&mut self) {
        self.reset_stats();
    }
}

impl Protocol for SharedMesi {
    fn access(&mut self, core: usize, mr: MemRef) -> AccessResult {
        SharedMesi::access(self, core, mr)
    }
    fn system_name(&self) -> &str {
        "baseline"
    }
    fn coherence_stats(&self) -> CoherenceStats {
        self.stats()
    }
    fn reset_coherence_stats(&mut self) {
        self.reset_stats();
    }
}

/// The telemetry-side service-level tag of a coherence classification.
fn service_level(s: ServedBy) -> ServiceLevel {
    match s {
        ServedBy::L1 => ServiceLevel::L1,
        ServedBy::L2 => ServiceLevel::L2,
        ServedBy::LocalVault => ServiceLevel::LocalVault,
        ServedBy::RemoteVault => ServiceLevel::RemoteVault,
        ServedBy::SharedLlc => ServiceLevel::SharedLlc,
        ServedBy::Memory => ServiceLevel::Memory,
    }
}

/// Builds the SILO engine for a config (shared by the concrete
/// [`run_silo`] path and the registry factories, so both construct
/// byte-identical hierarchies).
pub(crate) fn silo_engine(cfg: &SystemConfig, o_state_forwarding: bool) -> PrivateMoesi {
    PrivateMoesi::new(
        cfg.cores,
        &PrivateMoesiConfig {
            node_spec: cfg.node_spec,
            vault_capacity: cfg.vault_capacity,
            scale: cfg.scale,
            ideal_miss_predict: cfg.ideal_miss_predict,
            o_state_forwarding,
        },
    )
}

/// Builds the shared-LLC baseline engine for a config (shared by
/// [`run_baseline`] and the registry factories).
pub(crate) fn baseline_engine(cfg: &SystemConfig) -> SharedMesi {
    SharedMesi::new(
        cfg.cores,
        &SharedMesiConfig {
            node_spec: cfg.node_spec,
            llc_capacity: cfg.llc_capacity,
            llc_ways: cfg.llc_ways,
            scale: cfg.scale,
        },
    )
}

/// Per-service-level access counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServedCounts {
    /// L1 hits.
    pub l1: Counter,
    /// Private L2 hits.
    pub l2: Counter,
    /// Local-vault hits (SILO).
    pub local_vault: Counter,
    /// Remote-vault forwards (SILO).
    pub remote_vault: Counter,
    /// Shared-LLC hits including directory forwards (baseline).
    pub shared_llc: Counter,
    /// Main-memory accesses.
    pub memory: Counter,
}

impl ServedCounts {
    fn record(&mut self, s: ServedBy) {
        match s {
            ServedBy::L1 => self.l1.inc(),
            ServedBy::L2 => self.l2.inc(),
            ServedBy::LocalVault => self.local_vault.inc(),
            ServedBy::RemoteVault => self.remote_vault.inc(),
            ServedBy::SharedLlc => self.shared_llc.inc(),
            ServedBy::Memory => self.memory.inc(),
        }
    }

    /// Total classified accesses.
    pub fn total(&self) -> u64 {
        self.l1.get()
            + self.l2.get()
            + self.local_vault.get()
            + self.remote_vault.get()
            + self.shared_llc.get()
            + self.memory.get()
    }

    /// Fraction of accesses served at the given level.
    pub fn fraction(&self, s: ServedBy) -> f64 {
        let n = match s {
            ServedBy::L1 => self.l1.get(),
            ServedBy::L2 => self.l2.get(),
            ServedBy::LocalVault => self.local_vault.get(),
            ServedBy::RemoteVault => self.remote_vault.get(),
            ServedBy::SharedLlc => self.shared_llc.get(),
            ServedBy::Memory => self.memory.get(),
        };
        ratio(n, self.total())
    }
}

/// Aggregated results of one (system, workload) run.
///
/// `PartialEq` compares every simulated field, so tests can assert two
/// runs are bit-identical (e.g. dyn-dispatch vs. concrete-type paths).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunStats {
    /// Registry name of the system ("SILO", "baseline", or a variant).
    pub system: String,
    /// Workload name (preset name or the custom spec string).
    pub workload: String,
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// Makespan: the slowest core's finish cycle.
    pub cycles: Cycles,
    /// Per-level service counts.
    pub served: ServedCounts,
    /// Accesses that missed all SRAM levels (the paper's "LLC accesses").
    pub llc_accesses: u64,
    /// Critical-path latency distribution of LLC accesses.
    pub llc_latency: Histogram,
    /// Mesh messages sent.
    pub mesh_messages: u64,
    /// Total hops traversed by those messages.
    pub mesh_total_hops: u64,
    /// Flits carried by the busiest mesh link.
    pub mesh_max_link_flits: u64,
}

impl RunStats {
    /// Aggregate instructions per cycle (throughput over the makespan).
    pub fn ipc(&self) -> f64 {
        ratio(self.instructions, self.cycles.as_u64().max(1))
    }

    /// Mean critical-path latency of an LLC access, in cycles.
    pub fn mean_llc_latency(&self) -> f64 {
        self.llc_latency.mean()
    }

    /// Mean hops per mesh message (interconnect pressure, Sec. V-D).
    pub fn avg_hops(&self) -> f64 {
        ratio(self.mesh_total_hops, self.mesh_messages)
    }
}

/// One core's in-flight state.
#[derive(Clone, Debug, Default)]
struct CoreState {
    /// Retirement cursor (compute cycles consumed so far).
    cursor: Cycles,
    /// Completion times of outstanding misses (unordered; completions
    /// are not monotonic across banks and memory).
    outstanding: Vec<Cycles>,
    /// Completion of the most recent miss (dependency target).
    last_miss: Cycles,
    /// Latest completion seen (finish time candidate).
    finish: Cycles,
    instructions: u64,
}

/// The slowest core's current position: the makespan so far.
fn makespan(cores: &[CoreState]) -> Cycles {
    cores
        .iter()
        .map(|c| c.finish.max(c.cursor))
        .max()
        .unwrap_or(Cycles::ZERO)
}

/// Cumulative counter values at the warmup boundary; the measurement
/// window reports everything as a delta against these (shared timing
/// resources cannot simply be reset — that would discard bank
/// reservations and change the simulation).
#[derive(Clone, Debug, Default)]
struct MeasureBase {
    instructions: u64,
    cycles: u64,
    mesh_messages: u64,
    mesh_hops: u64,
    link_flits: Vec<u64>,
    vault_busy: u64,
    memory_accesses: u64,
}

/// The cumulative environment snapshot handed to the timeline at an
/// epoch boundary.
fn epoch_env<'a>(
    cores: &[CoreState],
    timing: &'a TimingModel,
    meter: &MeterConfig,
) -> EpochEnv<'a> {
    EpochEnv {
        cycles: makespan(cores).as_u64(),
        mesh_messages: timing.mesh().messages(),
        link_flits: timing.mesh().link_flits(),
        vault_busy_cycles: timing.vault_busy_cycles(),
        vault_banks: timing.vault_banks_total(),
        warmup_refs: meter.warmup_refs,
    }
}

/// Drives `engine` over per-core traces, interleaving cores round-robin,
/// and prices every access with `timing`. Returns aggregate statistics.
/// Equivalent to [`run_metered`] with a disabled meter.
///
/// # Panics
///
/// Panics if `traces.len()` differs from the configured core count.
pub fn run<P: Protocol + ?Sized>(
    engine: &mut P,
    timing: &mut TimingModel,
    cfg: &SystemConfig,
    workload_name: &str,
    traces: &[Vec<MemRef>],
) -> RunStats {
    run_metered(
        engine,
        timing,
        cfg,
        workload_name,
        traces,
        &MeterConfig::default(),
    )
    .0
}

/// [`run`] with the telemetry subsystem attached: after
/// `meter.warmup_refs` processed references the measurement aggregates
/// reset (simulated state is untouched), and every `meter.epoch_refs`
/// references the timeline records an epoch sample. With the default
/// meter the returned [`RunStats`] are bit-identical to [`run`].
///
/// # Panics
///
/// Panics if `traces.len()` differs from the configured core count.
pub fn run_metered<P: Protocol + ?Sized>(
    engine: &mut P,
    timing: &mut TimingModel,
    cfg: &SystemConfig,
    workload_name: &str,
    traces: &[Vec<MemRef>],
    meter: &MeterConfig,
) -> (RunStats, Telemetry) {
    assert_eq!(traces.len(), cfg.cores, "one trace per core");
    run_metered_source(
        engine,
        timing,
        cfg,
        workload_name,
        &mut SliceTrace::new(traces),
        meter,
    )
}

/// [`run`] over a streaming [`TraceSource`]: references are pulled one
/// at a time, so trace length is bounded by the source (a file, a lazy
/// generator), not by RAM. Bit-identical to [`run`] for the same
/// reference stream.
pub fn run_source<P: Protocol + ?Sized>(
    engine: &mut P,
    timing: &mut TimingModel,
    cfg: &SystemConfig,
    workload_name: &str,
    source: &mut dyn TraceSource,
) -> RunStats {
    run_metered_source(
        engine,
        timing,
        cfg,
        workload_name,
        source,
        &MeterConfig::default(),
    )
    .0
}

/// The streaming core of the simulation: [`run_metered`] over a
/// [`TraceSource`]. Cores are interleaved round-robin — one reference
/// per live core per turn — until every core's stream is exhausted,
/// which both matches the slice-era iteration order exactly (so results
/// are bit-identical) and keeps file-backed replay memory bounded by
/// the reader's buffer instead of the trace length.
pub fn run_metered_source<P: Protocol + ?Sized>(
    engine: &mut P,
    timing: &mut TimingModel,
    cfg: &SystemConfig,
    workload_name: &str,
    source: &mut dyn TraceSource,
    meter: &MeterConfig,
) -> (RunStats, Telemetry) {
    let mut cores: Vec<CoreState> = vec![CoreState::default(); cfg.cores];
    let mut served = ServedCounts::default();
    let mut llc_accesses = 0u64;
    let mut llc_latency = Histogram::new(16, 64);
    let mut llc_log = Histogram::log2();
    let mut timeline = Timeline::new(meter.epoch_refs.unwrap_or(0));
    let mut base = MeasureBase::default();
    let mut processed = 0u64;
    let mut warmup_pending = meter.warmup_refs > 0;

    // End of warmup: zero the measurement aggregates and take counter
    // baselines for the shared resources, but leave caches, directories,
    // and bank reservations as they are.
    macro_rules! end_warmup {
        () => {{
            served = ServedCounts::default();
            llc_accesses = 0;
            llc_latency.reset();
            llc_log.reset();
            engine.reset_coherence_stats();
            base = MeasureBase {
                instructions: cores.iter().map(|c| c.instructions).sum(),
                cycles: makespan(&cores).as_u64(),
                mesh_messages: timing.mesh().messages(),
                mesh_hops: timing.mesh().total_hops(),
                link_flits: timing.mesh().link_flits().to_vec(),
                vault_busy: timing.vault_busy_cycles(),
                memory_accesses: timing.memory_accesses(),
            };
        }};
    }

    let mut exhausted = vec![false; cfg.cores];
    let mut live = cfg.cores;
    while live > 0 {
        for (c, done) in exhausted.iter_mut().enumerate() {
            if *done {
                continue;
            }
            let Some(mr) = source.next(c) else {
                *done = true;
                live -= 1;
                continue;
            };
            // The reference instruction itself retires too: charge
            // `gap + 1` cycles to match the `gap + 1` instructions, or a
            // hit-only trace would report IPC above the base-CPI-1 ceiling.
            let instructions = mr.gap_instructions as u64 + 1;
            let mut latency = None;
            let level;
            {
                let core = &mut cores[c];
                core.instructions += instructions;
                core.cursor += Cycles(instructions);

                let res = engine.access(c, mr);
                served.record(res.served_by());
                level = service_level(res.served_by());
                if !res.llc_access {
                    // SRAM hit: absorbed by the pipeline at base CPI.
                    core.finish = core.finish.max(core.cursor);
                } else {
                    llc_accesses += 1;

                    // Issue time: dependent misses wait for the previous
                    // miss; independent ones only wait for a free MSHR.
                    let mut issue = if mr.dependent {
                        core.cursor.max(core.last_miss)
                    } else {
                        core.cursor
                    };
                    // Retire misses that completed by the issue point; if
                    // every MSHR is still busy, stall until the
                    // earliest-completing one frees up (not the
                    // oldest-issued: a slow memory access must not pin
                    // MSHRs that vault hits have already vacated).
                    core.outstanding.retain(|&d| d > issue);
                    while core.outstanding.len() >= cfg.mlp {
                        let (idx, earliest) = core
                            .outstanding
                            .iter()
                            .copied()
                            .enumerate()
                            .min_by_key(|&(_, d)| d)
                            .expect("mlp > 0, so nonempty");
                        issue = issue.max(earliest);
                        core.outstanding.swap_remove(idx);
                    }

                    let done = timing.charge(issue, &res);
                    let lat = (done - issue).as_u64();
                    llc_latency.record(lat);
                    llc_log.record(lat);
                    latency = Some(lat);
                    core.outstanding.push(done);
                    core.last_miss = done;
                    core.finish = core.finish.max(done);
                    if mr.dependent {
                        // The pipeline stalls behind a serialised miss.
                        core.cursor = core.cursor.max(done);
                    }
                }
            }

            processed += 1;
            timeline.record_ref(level, instructions, latency);
            if timeline.epoch_full() {
                timeline.flush(&epoch_env(&cores, timing, meter));
            }
            if warmup_pending && processed >= meter.warmup_refs {
                warmup_pending = false;
                end_warmup!();
            }
        }
    }
    if warmup_pending {
        // The warmup window swallowed the whole trace: still perform the
        // reset so the measurement window is consistently empty instead
        // of silently reporting cold-start full-run numbers.
        end_warmup!();
    }
    timeline.finish(&epoch_env(&cores, timing, meter));

    let mesh = timing.mesh();
    let mesh_messages = mesh.messages() - base.mesh_messages;
    let mesh_total_hops = mesh.total_hops() - base.mesh_hops;
    let mesh_max_link_flits = mesh
        .link_flits()
        .iter()
        .enumerate()
        .map(|(l, &f)| f - base.link_flits.get(l).copied().unwrap_or(0))
        .max()
        .unwrap_or(0);
    let stats = RunStats {
        system: engine.system_name().to_string(),
        workload: workload_name.to_string(),
        instructions: cores.iter().map(|c| c.instructions).sum::<u64>() - base.instructions,
        cycles: Cycles(makespan(&cores).as_u64() - base.cycles),
        served,
        llc_accesses,
        llc_latency,
        mesh_messages,
        mesh_total_hops,
        mesh_max_link_flits,
    };

    let cs = engine.coherence_stats();
    let mut recorder = Recorder::new();
    recorder.set("invalidations", cs.invalidations.get());
    recorder.set("o_state_forwards", cs.o_state_forwards.get());
    recorder.set("directory_evictions", cs.directory_evictions.get());
    recorder.set("upgrades", cs.upgrades.get());
    recorder.set("dirty_writebacks", cs.dirty_writebacks.get());
    recorder.set("mesh_messages", mesh_messages);
    recorder.set("mesh_total_hops", mesh_total_hops);
    recorder.set("mesh_max_link_flits", mesh_max_link_flits);
    recorder.set(
        "memory_accesses",
        timing.memory_accesses() - base.memory_accesses,
    );
    recorder.set(
        "vault_busy_cycles",
        timing.vault_busy_cycles() - base.vault_busy,
    );
    *recorder.histogram("llc_latency") = llc_log;
    let telemetry = Telemetry {
        meter: *meter,
        recorder,
        timeline,
    };
    (stats, telemetry)
}

/// Builds and runs the SILO system over a workload (the concrete-type
/// path; the registry's "SILO" entry produces bit-identical results
/// through dyn dispatch). References stream from
/// [`WorkloadSpec::source`] — lazily generated or replayed from file —
/// so the trace is never materialized.
///
/// # Panics
///
/// Panics when a `trace:file=` workload's file cannot be opened; use
/// the builder API for fallible resolution.
pub fn run_silo(cfg: &SystemConfig, spec: &WorkloadSpec, seed: u64) -> RunStats {
    let mut engine = silo_engine(cfg, true);
    let mut timing = TimingModel::silo(cfg);
    let mut source = spec
        .source(cfg.cores, cfg.scale, seed)
        .expect("workload source");
    run_source(&mut engine, &mut timing, cfg, &spec.name, &mut *source)
}

/// Builds and runs the shared-LLC baseline over the same workload.
///
/// # Panics
///
/// Same as [`run_silo`].
pub fn run_baseline(cfg: &SystemConfig, spec: &WorkloadSpec, seed: u64) -> RunStats {
    let mut engine = baseline_engine(cfg);
    let mut timing = TimingModel::baseline(cfg);
    let mut source = spec
        .source(cfg.cores, cfg.scale, seed)
        .expect("workload source");
    run_source(&mut engine, &mut timing, cfg, &spec.name, &mut *source)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> WorkloadSpec {
        WorkloadSpec {
            refs_per_core: 2_000,
            ..WorkloadSpec::uniform_private()
        }
    }

    fn quick_cfg() -> SystemConfig {
        SystemConfig::paper_16core().with_cores(4)
    }

    #[test]
    fn silo_run_produces_consistent_stats() {
        let s = run_silo(&quick_cfg(), &quick_spec(), 1);
        assert_eq!(s.system, "SILO");
        assert!(s.instructions > 0);
        assert!(s.cycles > Cycles::ZERO);
        assert!(s.ipc() > 0.0);
        assert_eq!(s.served.total(), 4 * 2_000);
        assert_eq!(s.llc_latency.count(), s.llc_accesses);
        assert!(s.served.local_vault.get() > 0, "vault must serve accesses");
    }

    #[test]
    fn baseline_run_uses_llc_not_vaults() {
        let s = run_baseline(&quick_cfg(), &quick_spec(), 1);
        assert_eq!(s.system, "baseline");
        assert_eq!(s.served.local_vault.get(), 0);
        assert_eq!(s.served.remote_vault.get(), 0);
        assert!(s.served.shared_llc.get() + s.served.memory.get() > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_silo(&quick_cfg(), &quick_spec(), 9);
        let b = run_silo(&quick_cfg(), &quick_spec(), 9);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.llc_accesses, b.llc_accesses);
    }

    #[test]
    fn both_systems_count_the_same_llc_accesses() {
        // Same SRAM geometry and the same trace: the engines agree on
        // which accesses left the SRAM levels up to the two documented
        // divergence sources (vault conflict back-invalidations and
        // upgrade decisions after L1 evictions of shared lines), so a
        // random workload matches only approximately. Exact equality on
        // a divergence-free trace is covered by the integration test
        // `both_engines_agree_on_llc_access_counts`.
        let cfg = quick_cfg();
        let spec = quick_spec();
        let a = run_silo(&cfg, &spec, 3);
        let b = run_baseline(&cfg, &spec, 3);
        let diff = a.llc_accesses.abs_diff(b.llc_accesses) as f64;
        assert!(
            diff / b.llc_accesses as f64 <= 0.01,
            "LLC access counts diverged: {} vs {}",
            a.llc_accesses,
            b.llc_accesses
        );
    }

    #[test]
    fn silo_beats_baseline_on_vault_friendly_workload() {
        // The private working set dwarfs the baseline's scaled LLC but
        // fits the vault: SILO must win (the paper's Fig. 11 direction).
        let cfg = quick_cfg();
        let spec = quick_spec();
        let silo = run_silo(&cfg, &spec, 7);
        let base = run_baseline(&cfg, &spec, 7);
        assert!(
            silo.ipc() > base.ipc(),
            "SILO {} <= baseline {}",
            silo.ipc(),
            base.ipc()
        );
    }

    #[test]
    fn hit_only_workload_never_exceeds_base_cpi() {
        // Every core hammers a single private line: after the cold miss
        // everything is an L1 hit, so throughput is capped by the base
        // CPI of 1 per core. The old loop charged only `gap` cycles for
        // `gap + 1` instructions and reported IPC = (gap+1)/gap > 1 here.
        use silo_types::{AccessKind, LineAddr};
        let cfg = SystemConfig::paper_16core().with_cores(1);
        let mut engine = silo_engine(&cfg, true);
        let mut timing = TimingModel::silo(&cfg);
        let traces: Vec<Vec<MemRef>> = (0..cfg.cores)
            .map(|c| {
                let line = LineAddr::new(((c as u64 + 1) << 32) | 1);
                (0..5_000)
                    .map(|_| MemRef {
                        line,
                        kind: AccessKind::Read,
                        gap_instructions: 3,
                        dependent: false,
                    })
                    .collect()
            })
            .collect();
        let s = run(&mut engine, &mut timing, &cfg, "hit-only", &traces);
        assert!(
            s.ipc() <= 1.0,
            "hit-only IPC {} exceeds the base-CPI-1 ceiling",
            s.ipc()
        );
        assert!(s.ipc() > 0.95, "hit-only IPC {} implausibly low", s.ipc());
    }

    #[test]
    fn hit_only_multicore_respects_per_core_ceiling() {
        // Aggregate IPC is throughput over the makespan, so the ceiling
        // for N perfectly pipelined cores is N x base CPI 1.
        use silo_types::{AccessKind, LineAddr};
        let cfg = quick_cfg();
        let mut engine = silo_engine(&cfg, true);
        let mut timing = TimingModel::silo(&cfg);
        let traces: Vec<Vec<MemRef>> = (0..cfg.cores)
            .map(|c| {
                let line = LineAddr::new(((c as u64 + 1) << 32) | 1);
                (0..5_000)
                    .map(|_| MemRef {
                        line,
                        kind: AccessKind::Read,
                        gap_instructions: 3,
                        dependent: false,
                    })
                    .collect()
            })
            .collect();
        let s = run(&mut engine, &mut timing, &cfg, "hit-only", &traces);
        assert!(
            s.ipc() <= cfg.cores as f64,
            "hit-only aggregate IPC {} exceeds {} x base CPI",
            s.ipc(),
            cfg.cores
        );
    }

    #[test]
    fn dependent_refs_serialise_and_slow_the_core() {
        let cfg = quick_cfg();
        let chasing = WorkloadSpec {
            dependent_fraction: 1.0,
            ..quick_spec()
        };
        let overlapped = WorkloadSpec {
            dependent_fraction: 0.0,
            ..quick_spec()
        };
        let slow = run_silo(&cfg, &chasing, 2);
        let fast = run_silo(&cfg, &overlapped, 2);
        assert!(
            slow.cycles > fast.cycles,
            "serialised {} <= overlapped {}",
            slow.cycles,
            fast.cycles
        );
    }
}
