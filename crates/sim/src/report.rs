//! Fig. 11-style result tables, generalized to N-way comparisons.
//!
//! For every workload the report shows, per system, the throughput
//! (IPC), where accesses were served, the mean LLC-access latency, and
//! the interconnect pressure (mean hops per mesh message plus the
//! hottest link's flit count — the Sec. V-D discussion);
//! the closing tables give each system's performance normalized to the
//! reference system (the one named `baseline` when selected, else the
//! last system) with the geomean across workloads — for the classic
//! SILO/baseline pair, the headline number of the paper's Fig. 11.

use crate::bench::BenchRecord;
use crate::run::RunStats;
use silo_coherence::ServedBy;
use silo_types::geomean;

/// Minimum widths of the name columns; [`name_widths`] grows them to
/// fit long custom-spec workload names and registered system names.
const MIN_WORKLOAD_W: usize = 18;
const MIN_SYSTEM_W: usize = 16;

/// The (workload, system) column widths that fit every record.
pub fn name_widths(records: &[BenchRecord]) -> (usize, usize) {
    let wl = records
        .iter()
        .map(|r| r.point.workload.name.chars().count())
        .max()
        .unwrap_or(0)
        .max(MIN_WORKLOAD_W);
    let sys = records
        .iter()
        .flat_map(|r| &r.runs)
        .map(|run| run.stats.system.chars().count())
        .max()
        .unwrap_or(0)
        .max(MIN_SYSTEM_W);
    (wl, sys)
}

/// Renders one run as a detail-table row with the given name-column
/// widths (from [`name_widths`], so arbitrary-length custom workload
/// and system names stay aligned). The JSON path reads the same
/// [`RunStats`] accessors.
pub fn render_row(s: &RunStats, workload_w: usize, system_w: usize) -> String {
    format!(
        "{:<workload_w$} {:>system_w$} {:>6.3} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>8.1} {:>9} {:>5.2} {:>8}",
        s.workload,
        s.system,
        s.ipc(),
        100.0 * s.served.fraction(ServedBy::L1),
        100.0 * s.served.fraction(ServedBy::LocalVault),
        100.0 * s.served.fraction(ServedBy::RemoteVault),
        100.0 * s.served.fraction(ServedBy::SharedLlc),
        100.0 * s.served.fraction(ServedBy::Memory),
        s.mean_llc_latency(),
        s.llc_accesses,
        s.avg_hops(),
        s.mesh_max_link_flits,
    )
}

/// The system every other system is normalized against: `baseline` when
/// it is part of the comparison, else the last system (so a custom pair
/// still gets a sensible A-vs-B summary).
fn reference_system(records: &[BenchRecord]) -> Option<String> {
    let first = records.first()?;
    if let Some(b) = first.run("baseline") {
        return Some(b.stats.system.clone());
    }
    first.runs.last().map(|r| r.stats.system.clone())
}

/// Renders the per-workload detail table and the normalized performance
/// summaries into a string. Returns the text and the headline geomean:
/// SILO over the reference when SILO ran, else the first non-reference
/// system's geomean, else 1.0.
pub fn render_report(records: &[BenchRecord]) -> (String, f64) {
    use std::fmt::Write;
    let mut out = String::new();
    let (wl_w, sys_w) = name_widths(records);
    let header = format!(
        "{:<wl_w$} {:>sys_w$} {:>6} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8} {:>9} {:>5} {:>8}",
        "workload",
        "system",
        "IPC",
        "L1",
        "vault",
        "remote",
        "LLC",
        "mem",
        "LLC-lat",
        "LLC-acc",
        "hops",
        "hot-link"
    );
    // The divider tracks the rendered header, so column changes never
    // leave it too short or too long again.
    let divider = "-".repeat(header.chars().count());
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{divider}");
    for r in records {
        for run in &r.runs {
            let _ = writeln!(out, "{}", render_row(&run.stats, wl_w, sys_w));
        }
    }

    let Some(reference) = reference_system(records) else {
        return (out, 1.0);
    };
    let systems: Vec<String> = records
        .first()
        .map(|r| r.runs.iter().map(|run| run.stats.system.clone()).collect())
        .unwrap_or_default();
    let mut headline = None;
    for sys in systems.iter().filter(|s| **s != reference) {
        let _ = writeln!(out);
        let _ = writeln!(out, "normalized performance ({sys} / {reference}):");
        let mut speedups = Vec::with_capacity(records.len());
        for r in records {
            if let Some(sp) = r.speedup_of(sys, &reference) {
                let _ = writeln!(out, "  {:<wl_w$} {:>5.2}x", r.point.workload.name, sp);
                speedups.push(sp);
            }
        }
        if speedups.is_empty() {
            // Degenerate runs (e.g. warmup >= total refs) have no
            // measurable ratios; say so instead of panicking in geomean.
            let _ = writeln!(out, "  {:<wl_w$} {:>6}", "geomean", "n/a");
            continue;
        }
        let g = geomean(&speedups);
        let _ = writeln!(out, "  {:<wl_w$} {:>5.2}x", "geomean", g);
        if sys == "SILO" || headline.is_none() {
            headline = Some(g);
        }
    }
    (out, headline.unwrap_or(1.0))
}

/// Prints the detail table and normalized summaries. Returns the
/// headline geomean (see [`render_report`]).
pub fn print_report(records: &[BenchRecord]) -> f64 {
    let (text, g) = render_report(records);
    print!("{text}");
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;

    fn records(systems: &[&str]) -> Vec<BenchRecord> {
        Simulation::builder()
            .systems(systems.iter().copied())
            .workloads(["uniform-private"])
            .cores([4])
            .refs_per_core(1_000)
            .seed(1)
            .build()
            .expect("valid builder")
            .run()
    }

    #[test]
    fn report_normalizes_against_baseline_and_returns_silo_geomean() {
        let recs = records(&["SILO", "baseline", "baseline-2x"]);
        let (text, g) = render_report(&recs);
        assert!(g > 0.0);
        assert!(text.contains("normalized performance (SILO / baseline):"));
        assert!(text.contains("normalized performance (baseline-2x / baseline):"));
        let expected = recs[0].speedup().expect("pair present");
        assert!((g - expected).abs() < 1e-12, "headline must be SILO's");
    }

    #[test]
    fn report_without_baseline_normalizes_to_last_system() {
        let recs = records(&["SILO", "silo-no-forward"]);
        let (text, _) = render_report(&recs);
        assert!(text.contains("normalized performance (SILO / silo-no-forward):"));
    }

    #[test]
    fn report_surfaces_noc_pressure_columns() {
        let recs = records(&["SILO", "baseline"]);
        let (text, _) = render_report(&recs);
        let header = text.lines().next().expect("header");
        assert!(header.contains("hops") && header.contains("hot-link"));
        for r in &recs {
            for run in &r.runs {
                assert!(run.stats.mesh_messages > 0, "mesh saw traffic");
                assert!(run.stats.avg_hops() > 0.0, "hops are accounted");
                assert!(run.stats.mesh_max_link_flits > 0, "a link was used");
            }
        }
    }

    #[test]
    fn divider_matches_header_width() {
        let recs = records(&["SILO", "baseline"]);
        let (text, _) = render_report(&recs);
        let mut lines = text.lines();
        let header = lines.next().expect("header line");
        let divider = lines.next().expect("divider line");
        assert_eq!(divider.chars().count(), header.chars().count());
        assert!(divider.chars().all(|ch| ch == '-'));
    }

    #[test]
    fn long_custom_names_keep_columns_aligned() {
        let recs = Simulation::builder()
            .systems(["SILO", "baseline", "silo-no-forward"])
            .workloads(["uniform-private", "zipf:theta=0.9,footprint=4x,refs=400"])
            .cores([2])
            .refs_per_core(400)
            .seed(1)
            .build()
            .expect("valid builder")
            .run();
        let (wl_w, sys_w) = name_widths(&recs);
        assert!(wl_w >= "zipf:theta=0.9,footprint=4x,refs=400".len());
        assert!(sys_w >= "silo-no-forward".len());
        let (text, _) = render_report(&recs);
        // Every detail row is exactly as wide as the header: no column
        // overflow from the long custom workload name.
        let mut lines = text.lines();
        let header_len = lines.next().expect("header").chars().count();
        let n_rows = recs.len() * 3;
        for row in lines.skip(1).take(n_rows) {
            assert_eq!(row.chars().count(), header_len, "misaligned row: {row}");
        }
    }
}
