//! Fig. 11-style result tables.
//!
//! For every workload the report shows, per system, the throughput (IPC),
//! where accesses were served, and the mean LLC-access latency; the
//! closing table gives SILO's normalized performance per workload and the
//! geomean across workloads — the headline number of the paper's Fig. 11.

use crate::run::RunStats;
use silo_coherence::ServedBy;
use silo_types::geomean;

/// A matched (SILO, baseline) pair for one workload.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// SILO run.
    pub silo: RunStats,
    /// Shared-LLC baseline run.
    pub baseline: RunStats,
}

impl Comparison {
    /// SILO performance normalized to the baseline (>1 means faster).
    pub fn speedup(&self) -> f64 {
        self.silo.ipc() / self.baseline.ipc()
    }
}

/// Renders one run as a detail-table row (shared by the printed table
/// and any textual report consumers; the JSON path reads the same
/// [`RunStats`] accessors).
pub fn render_row(s: &RunStats) -> String {
    format!(
        "{:<18} {:>8} {:>6.3} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>8.1} {:>9}",
        s.workload,
        s.system,
        s.ipc(),
        100.0 * s.served.fraction(ServedBy::L1),
        100.0 * s.served.fraction(ServedBy::LocalVault),
        100.0 * s.served.fraction(ServedBy::RemoteVault),
        100.0 * s.served.fraction(ServedBy::SharedLlc),
        100.0 * s.served.fraction(ServedBy::Memory),
        s.mean_llc_latency(),
        s.llc_accesses,
    )
}

/// Renders the per-workload detail table and the Fig. 11-style
/// normalized performance summary into a string. Returns the text and
/// the geomean speedup.
pub fn render_comparison(results: &[Comparison]) -> (String, f64) {
    use std::fmt::Write;
    let mut out = String::new();
    let header = format!(
        "{:<18} {:>8} {:>6} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8} {:>9}",
        "workload", "system", "IPC", "L1", "vault", "remote", "LLC", "mem", "LLC-lat", "LLC-acc"
    );
    // The divider tracks the rendered header, so column changes never
    // leave it too short or too long again.
    let divider = "-".repeat(header.chars().count());
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{divider}");
    for c in results {
        let _ = writeln!(out, "{}", render_row(&c.silo));
        let _ = writeln!(out, "{}", render_row(&c.baseline));
    }

    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "normalized performance (SILO / shared-LLC baseline, Fig. 11):"
    );
    let speedups: Vec<f64> = results.iter().map(Comparison::speedup).collect();
    for (c, s) in results.iter().zip(&speedups) {
        let _ = writeln!(out, "  {:<18} {:>5.2}x", c.silo.workload, s);
    }
    let g = geomean(&speedups);
    let _ = writeln!(out, "  {:<18} {:>5.2}x", "geomean", g);
    (out, g)
}

/// Prints the per-workload detail table and the Fig. 11-style normalized
/// performance summary. Returns the geomean speedup.
pub fn print_comparison(results: &[Comparison]) -> f64 {
    let (text, g) = render_comparison(results);
    print!("{text}");
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::run::{run_baseline, run_silo};
    use crate::workload::WorkloadSpec;

    #[test]
    fn comparison_speedup_and_report_run() {
        let cfg = SystemConfig::paper_16core().with_cores(4);
        let spec = WorkloadSpec {
            refs_per_core: 1_000,
            ..WorkloadSpec::uniform_private()
        };
        let c = Comparison {
            silo: run_silo(&cfg, &spec, 1),
            baseline: run_baseline(&cfg, &spec, 1),
        };
        assert!(c.speedup() > 0.0);
        let g = print_comparison(&[c]);
        assert!(g > 0.0);
    }

    #[test]
    fn divider_matches_header_width() {
        let cfg = SystemConfig::paper_16core().with_cores(2);
        let spec = WorkloadSpec {
            refs_per_core: 200,
            ..WorkloadSpec::uniform_private()
        };
        let c = Comparison {
            silo: run_silo(&cfg, &spec, 1),
            baseline: run_baseline(&cfg, &spec, 1),
        };
        let (text, _) = render_comparison(&[c]);
        let mut lines = text.lines();
        let header = lines.next().expect("header line");
        let divider = lines.next().expect("divider line");
        assert_eq!(divider.chars().count(), header.chars().count());
        assert!(divider.chars().all(|ch| ch == '-'));
    }
}
