//! Canonical content hashing of sweeps and sweep points.
//!
//! The serve daemon's result cache is addressed by these hashes: two
//! submissions that *resolve* to the same simulation share cache rows,
//! no matter how their scenario files were spelled. That property
//! comes from hashing the resolved [`SweepSpec`] — after scenario
//! parsing, preset expansion, and validation — rather than the raw
//! submission text, so key reordering, whitespace, and comments never
//! change a hash, while any semantic change (a different core count, a
//! nudged fraction, another system in the comparison) always does.
//!
//! Each point's descriptor covers every input that can reach the bytes
//! of its `silo-bench/v1` row: the canon format version and row schema
//! version (bumping either invalidates old caches), the seed, the
//! meter (warmup/epoch telemetry is part of the row), the system list,
//! the point's swept dimensions, the fully resolved
//! [`crate::config::SystemConfig`],
//! and the workload — with replay workloads described by the SHA-256
//! of their trace file *bytes*, not their path. Thread count and the
//! `--check` oracle period are deliberately excluded: both are
//! documented to leave results bit-identical.
//!
//! [`document_from_rows`] is the inverse companion: it rebuilds a full
//! `silo-bench/v1` document from cached row strings, byte-identical to
//! [`crate::bench::sweep_json`] on the original records — possible
//! because the [`crate::json`] writer/parser round-trips exactly.

use crate::bench::{SweepPoint, SweepSpec, SCHEMA};
use crate::json::Json;
use crate::workload::WorkloadSpec;
use silo_types::sha::{sha256_hex, Sha256};

/// Version tag of the canonical descriptor format. Bump on any change
/// to the descriptor text: every cached row is invalidated, which is
/// always safe (cache misses recompute) and never wrong (stale hits
/// cannot happen).
pub const CANON_VERSION: &str = "silo-canon/v1";

/// Canonical one-line description of a workload. Replay workloads hash
/// their trace file's bytes so a capture edited in place (or a
/// different capture at the same path) changes the key.
///
/// # Errors
///
/// Returns a message when a replay workload's trace file cannot be
/// read.
fn canonical_workload(w: &WorkloadSpec) -> Result<String, String> {
    if let Some(path) = &w.trace_file {
        let bytes = std::fs::read(path)
            .map_err(|e| format!("cannot read trace file {}: {e}", path.display()))?;
        return Ok(format!(
            "workload name={} trace_sha256={}",
            w.name,
            sha256_hex(&bytes)
        ));
    }
    Ok(format!(
        "workload name={} refs_per_core={} private_lines={} shared_lines={} code_lines={} \
         shared_fraction={:?} ifetch_fraction={:?} write_fraction={:?} dependent_fraction={:?} \
         mean_gap={} zipf_theta={:?}",
        w.name,
        w.refs_per_core,
        w.private_lines,
        w.shared_lines,
        w.code_lines,
        w.shared_fraction,
        w.ifetch_fraction,
        w.write_fraction,
        w.dependent_fraction,
        w.mean_gap,
        w.zipf_theta,
    ))
}

/// The canonical descriptor text of one sweep point — everything that
/// can influence its row's bytes, and nothing that cannot.
///
/// # Errors
///
/// Propagates trace-file read failures from [`canonical_workload`].
fn point_descriptor(spec: &SweepSpec, point: &SweepPoint) -> Result<String, String> {
    let systems: Vec<&str> = spec
        .systems
        .iter()
        .map(crate::registry::SystemSpec::name)
        .collect();
    let epoch = spec
        .meter
        .epoch_refs
        .map_or_else(|| "none".to_string(), |e| e.to_string());
    Ok(format!(
        "{CANON_VERSION}\nrow-schema {SCHEMA}\nseed {}\nmeter warmup={} epoch={epoch}\n\
         systems {}\npoint cores={} scale={} mlp={} vault={}\nconfig {:?}\n{}\n",
        spec.seed,
        spec.meter.warmup_refs,
        systems.join(","),
        point.cores,
        point.scale,
        point.mlp,
        point.vault.name(),
        point.config(&spec.base),
        canonical_workload(&point.workload)?,
    ))
}

/// The content-address of one sweep point: SHA-256 of its canonical
/// descriptor, as 64 lowercase hex characters.
///
/// # Errors
///
/// Propagates trace-file read failures.
pub fn point_key(spec: &SweepSpec, point: &SweepPoint) -> Result<String, String> {
    Ok(sha256_hex(point_descriptor(spec, point)?.as_bytes()))
}

/// Content-addresses of every point of the sweep, in point order.
///
/// # Errors
///
/// Propagates trace-file read failures.
pub fn point_keys(spec: &SweepSpec) -> Result<Vec<String>, String> {
    spec.points().iter().map(|p| point_key(spec, p)).collect()
}

/// The canonical hash of a whole sweep: SHA-256 over its ordered point
/// keys. Stable across scenario-file spelling, distinct across any
/// semantic change to any point, the axes, or their order.
///
/// # Errors
///
/// Propagates trace-file read failures.
pub fn sweep_hash(spec: &SweepSpec) -> Result<String, String> {
    Ok(sweep_hash_of_keys(&point_keys(spec)?))
}

/// The sweep hash given already-computed point keys (what the serve
/// engine uses — it hashes each point exactly once at plan time).
pub fn sweep_hash_of_keys(keys: &[String]) -> String {
    let mut h = Sha256::new();
    h.update(CANON_VERSION.as_bytes());
    h.update(b" sweep\n");
    for key in keys {
        h.update(key.as_bytes());
        h.update(b"\n");
    }
    h.finish_hex()
}

/// Rebuilds the full `silo-bench/v1` document (with trailing newline,
/// as `--json` writes it) from rendered point rows — the daemon's path
/// from cached rows back to a result byte-identical to a direct run.
///
/// The geomean is recomputed from the rows' `speedup` fields and the
/// meter echo from the first row's telemetry; both reproduce
/// [`crate::bench::sweep_json`] exactly because the JSON layer
/// round-trips numbers exactly.
///
/// # Errors
///
/// Returns a message when a row is not valid row JSON.
pub fn document_from_rows(rows: &[String], seed: u64) -> Result<String, String> {
    let points: Vec<Json> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| Json::parse(r).map_err(|e| format!("row {i} is not valid JSON: {e}")))
        .collect::<Result<_, _>>()?;
    let speedups: Vec<f64> = points
        .iter()
        .filter_map(|p| p.get("speedup").and_then(Json::as_f64))
        .collect();
    let geomean = if speedups.is_empty() {
        Json::Null
    } else {
        Json::Num(silo_types::geomean(&speedups))
    };
    let system_names: Vec<Json> = points
        .first()
        .and_then(|p| p.get("systems"))
        .and_then(Json::as_arr)
        .map(|systems| {
            systems
                .iter()
                .filter_map(|s| s.get("system").and_then(Json::as_str))
                .map(|name| Json::Str(name.to_string()))
                .collect()
        })
        .unwrap_or_default();
    let first_meter = points
        .first()
        .and_then(|p| p.get("telemetry"))
        .and_then(Json::as_arr)
        .and_then(<[Json]>::first);
    let warmup = first_meter
        .and_then(|t| t.get("warmup_refs"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let epoch = first_meter
        .and_then(|t| t.get("epoch_refs"))
        .and_then(Json::as_u64)
        .map_or(Json::Null, |e| Json::Int(i128::from(e)));
    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.into())),
        ("seed".into(), Json::Int(i128::from(seed))),
        (
            "telemetry".into(),
            Json::Obj(vec![
                ("warmup_refs".into(), Json::Int(i128::from(warmup))),
                ("epoch_refs".into(), epoch),
            ]),
        ),
        ("systems".into(), Json::Arr(system_names)),
        ("geomean_speedup".into(), geomean),
        ("points".into(), Json::Arr(points)),
    ]);
    Ok(format!("{doc}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::{record_json, run_sweep_sequential, sweep_json};
    use crate::builder::Simulation;
    use crate::scenario::Scenario;

    fn spec_from(text: &str) -> SweepSpec {
        let scenario = Scenario::parse(text).expect("scenario parses");
        Simulation::builder()
            .scenario(&scenario)
            .build()
            .expect("scenario builds")
            .spec()
            .clone()
    }

    const BASE: &str = "\
systems = SILO, baseline
workloads = uniform-private, zipf:theta=0.9,footprint=4x
cores = 4
refs = 800
seed = 11
";

    #[test]
    fn hash_is_stable_across_key_order_and_whitespace() {
        let reordered = "
seed =   11
cores=4
workloads = uniform-private,   zipf:theta=0.9,footprint=4x

refs = 800
systems = SILO,baseline
";
        assert_eq!(
            sweep_hash(&spec_from(BASE)).expect("hash"),
            sweep_hash(&spec_from(reordered)).expect("hash")
        );
    }

    #[test]
    fn hash_distinguishes_semantic_changes() {
        let base = sweep_hash(&spec_from(BASE)).expect("hash");
        for (what, changed) in [
            ("cores", BASE.replace("cores = 4", "cores = 8")),
            ("seed", BASE.replace("seed = 11", "seed = 12")),
            ("refs", BASE.replace("refs = 800", "refs = 801")),
            (
                "systems",
                BASE.replace("SILO, baseline", "SILO, baseline, baseline-2x"),
            ),
            ("workload param", BASE.replace("theta=0.9", "theta=0.8")),
            (
                "workload order",
                BASE.replace(
                    "uniform-private, zipf:theta=0.9,footprint=4x",
                    "zipf:theta=0.9,footprint=4x, uniform-private",
                ),
            ),
            ("meter", format!("{BASE}warmup = 100\n")),
        ] {
            let h = sweep_hash(&spec_from(&changed)).expect("hash");
            assert_ne!(base, h, "{what} change must change the hash");
        }
    }

    #[test]
    fn threads_and_check_do_not_affect_the_hash() {
        let mut spec = spec_from(BASE);
        let base = sweep_hash(&spec).expect("hash");
        spec.check_every = Some(100);
        assert_eq!(base, sweep_hash(&spec).expect("hash"));
    }

    #[test]
    fn point_keys_are_well_formed_and_distinct() {
        let spec = spec_from(BASE);
        let keys = point_keys(&spec).expect("keys");
        assert_eq!(keys.len(), spec.points().len());
        for key in &keys {
            assert_eq!(key.len(), 64);
            assert!(key
                .bytes()
                .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()));
        }
        assert_ne!(keys[0], keys[1], "distinct points get distinct keys");
    }

    #[test]
    fn document_from_rows_is_bit_identical_to_sweep_json() {
        let spec = spec_from(
            "\
systems = SILO, baseline
workloads = uniform-private
cores = 2
scale = 64, 128
refs = 500
seed = 5
warmup = 100
epoch = 200
",
        );
        let records = run_sweep_sequential(&spec);
        let direct = format!("{}\n", sweep_json(&records, spec.seed));
        let rows: Vec<String> = records.iter().map(|r| record_json(r).to_string()).collect();
        let rebuilt = document_from_rows(&rows, spec.seed).expect("rebuild");
        assert_eq!(direct, rebuilt);
    }
}
