//! Timeline CSV export.
//!
//! Renders the epoch rows of every `(sweep point, system)` run into a
//! single flat CSV, one line per epoch, keyed by the point dimensions
//! and the system name. Written by `silo-sim --timeline <path>` next to
//! the `silo-bench/v1` JSON; columns are documented in the README's
//! "Telemetry & timelines" section.
//!
//! Rendering is purely a function of the simulated results, so the CSV
//! is bit-identical whether the sweep ran sequentially or across worker
//! threads.

use crate::bench::BenchRecord;
use silo_telemetry::ServiceLevel;
use std::fmt::Write as _;
use std::path::Path;

/// The CSV header line (no trailing newline).
pub const TIMELINE_HEADER: &str = "workload,system,cores,scale,mlp,vault,epoch,warmup,refs,\
instructions,cycles,ipc,l1,l2,local_vault,remote_vault,shared_llc,memory,llc_accesses,\
llc_p50,llc_p95,llc_p99,mesh_messages,mesh_max_link_flits,mesh_mean_link_flits,\
vault_busy_cycles,vault_occupancy";

/// RFC-4180 field quoting: custom workload specs legitimately contain
/// commas (`zipf:theta=0.9,footprint=4x`), so any field holding a
/// comma, quote, or newline is double-quoted with quotes doubled.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders the timeline CSV (header plus one line per epoch per run).
/// Runs without epoch sampling contribute no lines.
pub fn timeline_csv(records: &[BenchRecord]) -> String {
    let mut out = String::from(TIMELINE_HEADER);
    out.push('\n');
    for r in records {
        for run in &r.runs {
            for row in run.telemetry.timeline.rows() {
                let _ = write!(
                    out,
                    "{},{},{},{},{},{},{},{},{},{},{},{:.6}",
                    csv_field(&r.point.workload.name),
                    csv_field(&run.stats.system),
                    r.point.cores,
                    r.point.scale,
                    r.point.mlp,
                    r.point.vault.name(),
                    row.epoch,
                    u8::from(row.warmup),
                    row.refs,
                    row.instructions,
                    row.cycles,
                    row.ipc(),
                );
                for level in ServiceLevel::ALL {
                    let _ = write!(out, ",{}", row.served[level.index()]);
                }
                let _ = writeln!(
                    out,
                    ",{},{:.2},{:.2},{:.2},{},{},{:.3},{},{:.6}",
                    row.llc_accesses,
                    row.llc_p50,
                    row.llc_p95,
                    row.llc_p99,
                    row.mesh_messages,
                    row.mesh_max_link_flits,
                    row.mesh_mean_link_flits,
                    row.vault_busy_cycles,
                    row.vault_occupancy,
                );
            }
        }
    }
    out
}

/// Renders one record's epoch rows as typed NDJSON lines — the
/// `{"type":"epoch",...}` records `silo-sim serve` interleaves into an
/// epoch-opt-in `/jobs/ID/stream`. Every key mirrors a [`TIMELINE_HEADER`]
/// column and every value uses the exact format specifier of
/// [`timeline_csv`], so a streamed record is field-equal to the
/// corresponding CSV line. Deliberately *without* a point index: the
/// lines are cached under the point's content key, which the same point
/// can hold at a different index in another job — the daemon wraps in
/// the job-local index at stream time. Runs without epoch sampling
/// yield no lines.
pub fn epoch_ndjson(r: &BenchRecord) -> Vec<String> {
    use crate::json::Json;
    let mut out = Vec::new();
    for run in &r.runs {
        for row in run.telemetry.timeline.rows() {
            let mut line = format!(
                "{{\"type\":\"epoch\",\"workload\":{},\"system\":{},\"cores\":{},\
                 \"scale\":{},\"mlp\":{},\"vault\":{},\"epoch\":{},\"warmup\":{},\
                 \"refs\":{},\"instructions\":{},\"cycles\":{},\"ipc\":{:.6}",
                Json::Str(r.point.workload.name.clone()),
                Json::Str(run.stats.system.clone()),
                r.point.cores,
                r.point.scale,
                r.point.mlp,
                Json::Str(r.point.vault.name().into()),
                row.epoch,
                u8::from(row.warmup),
                row.refs,
                row.instructions,
                row.cycles,
                row.ipc(),
            );
            for level in ServiceLevel::ALL {
                let _ = write!(line, ",\"{}\":{}", level.name(), row.served[level.index()]);
            }
            let _ = write!(
                line,
                ",\"llc_accesses\":{},\"llc_p50\":{:.2},\"llc_p95\":{:.2},\
                 \"llc_p99\":{:.2},\"mesh_messages\":{},\"mesh_max_link_flits\":{},\
                 \"mesh_mean_link_flits\":{:.3},\"vault_busy_cycles\":{},\
                 \"vault_occupancy\":{:.6}}}",
                row.llc_accesses,
                row.llc_p50,
                row.llc_p95,
                row.llc_p99,
                row.mesh_messages,
                row.mesh_max_link_flits,
                row.mesh_mean_link_flits,
                row.vault_busy_cycles,
                row.vault_occupancy,
            );
            out.push(line);
        }
    }
    out
}

/// Writes the timeline CSV to `path` and returns the number of data
/// rows written.
///
/// # Errors
///
/// Propagates filesystem errors from the write.
pub fn write_timeline_csv(path: &Path, records: &[BenchRecord]) -> std::io::Result<usize> {
    let csv = timeline_csv(records);
    let rows = csv.lines().count() - 1;
    std::fs::write(path, csv)?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;

    #[test]
    fn header_and_rows_have_the_same_column_count() {
        let sim = Simulation::builder()
            .systems(["SILO", "baseline"])
            .workloads(["uniform-private"])
            .cores([2])
            .refs_per_core(600)
            .epoch_refs(400)
            .seed(3)
            .build()
            .expect("valid");
        let records = sim.run_sequential();
        let csv = timeline_csv(&records);
        let mut lines = csv.lines();
        let header = lines.next().expect("header");
        assert_eq!(header, TIMELINE_HEADER);
        let columns = header.split(',').count();
        let mut rows = 0;
        for line in lines {
            assert_eq!(line.split(',').count(), columns, "row: {line}");
            rows += 1;
        }
        // 2 cores x 600 refs = 1200 refs at 400/epoch = 3 epochs for
        // each of the two systems.
        assert_eq!(rows, 6);
    }

    /// Raw text of `key`'s value in a flat one-line JSON object (no
    /// value in these records contains `,"`).
    fn field_text<'a>(line: &'a str, key: &str) -> &'a str {
        let pat = format!("\"{key}\":");
        let start = line.find(&pat).map(|i| i + pat.len()).expect("key present");
        let rest = &line[start..];
        &rest[..rest.find(",\"").unwrap_or(rest.len() - 1)]
    }

    #[test]
    fn epoch_ndjson_is_field_equal_to_the_csv() {
        let sim = Simulation::builder()
            .systems(["SILO", "baseline"])
            .workloads(["uniform-private"])
            .cores([2])
            .refs_per_core(600)
            .epoch_refs(400)
            .seed(3)
            .build()
            .expect("valid");
        let records = sim.run_sequential();
        let lines: Vec<String> = records.iter().flat_map(epoch_ndjson).collect();
        // ceil(1200 refs / 400 per epoch) = 3 epochs x 2 systems.
        assert_eq!(lines.len(), 6);
        let csv = timeline_csv(&records);
        let columns: Vec<&str> = TIMELINE_HEADER.split(',').collect();
        for (csv_row, line) in csv.lines().skip(1).zip(&lines) {
            crate::json::Json::parse(line).expect("epoch line parses");
            assert_eq!(field_text(line, "type"), "\"epoch\"");
            for (col, raw) in columns.iter().zip(csv_row.split(',')) {
                let want = if matches!(*col, "workload" | "system" | "vault") {
                    format!("\"{raw}\"")
                } else {
                    raw.to_string()
                };
                assert_eq!(field_text(line, col), want, "column {col} of {line}");
            }
        }
    }

    #[test]
    fn comma_bearing_workload_names_are_quoted() {
        let sim = Simulation::builder()
            .systems(["SILO"])
            .workloads(["zipf:theta=0.9,footprint=4x"])
            .cores([2])
            .refs_per_core(300)
            .epoch_refs(600)
            .seed(3)
            .build()
            .expect("valid");
        let csv = timeline_csv(&sim.run_sequential());
        let columns = TIMELINE_HEADER.split(',').count();
        let row = csv.lines().nth(1).expect("one epoch row");
        assert!(row.starts_with("\"zipf:theta=0.9,footprint=4x\",SILO,"));
        // Splitting on commas outside quotes yields the header arity.
        let mut fields = 0;
        let mut quoted = false;
        for ch in row.chars() {
            match ch {
                '"' => quoted = !quoted,
                ',' if !quoted => fields += 1,
                _ => {}
            }
        }
        assert_eq!(fields + 1, columns);
    }

    #[test]
    fn disabled_meter_renders_only_the_header() {
        let sim = Simulation::builder()
            .workloads(["uniform-private"])
            .cores([2])
            .refs_per_core(200)
            .seed(3)
            .build()
            .expect("valid");
        let records = sim.run_sequential();
        assert_eq!(timeline_csv(&records).lines().count(), 1);
    }
}
