//! `silo-sim` CLI: run SILO vs. the shared-LLC baseline on synthetic
//! scale-out workloads and print a Fig. 11-style speedup table.

use silo_sim::{print_comparison, Comparison, SystemConfig, WorkloadSpec};

const USAGE: &str = "\
silo-sim: SILO private die-stacked DRAM caches vs. a shared NUCA LLC

USAGE:
    silo-sim [OPTIONS]

OPTIONS:
    --cores N            cores / mesh nodes (default 16, max 64)
    --refs N             references per core (default: per-workload preset)
    --scale N            capacity scaling factor for caches AND working
                         sets (default 64; 1 = full 256 MiB vaults)
    --seed N             workload RNG seed (default 42)
    --mlp N              MSHRs per core (default 8)
    --workloads a,b,c    comma-separated subset of the presets
    --vault-design KIND  derive the vault from the silo-dram sweep:
                         'latency' (256 MiB-class) or 'capacity'
                         (512 MiB-class) (default: Table II constants)
    --list               list workload presets and exit
    --help               show this help
";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(v) = value else {
        fail(&format!("{flag} needs a value"));
    };
    match v.parse() {
        Ok(x) => x,
        Err(_) => fail(&format!("bad value '{v}' for {flag}")),
    }
}

fn main() {
    let mut cfg = SystemConfig::paper_16core();
    let mut specs = WorkloadSpec::all();
    let mut refs_override: Option<usize> = None;
    let mut seed = 42u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cores" => {
                let cores: usize = parse("--cores", args.next());
                if !(1..=64).contains(&cores) {
                    fail("--cores must be in [1, 64] (directory masks are u64)");
                }
                cfg = cfg.with_cores(cores);
            }
            "--refs" => {
                let refs: usize = parse("--refs", args.next());
                if refs == 0 {
                    fail("--refs must be at least 1");
                }
                refs_override = Some(refs);
            }
            "--scale" => {
                cfg.scale = parse("--scale", args.next());
                if cfg.scale == 0 {
                    fail("--scale must be at least 1");
                }
            }
            "--seed" => seed = parse("--seed", args.next()),
            "--mlp" => {
                cfg.mlp = parse("--mlp", args.next());
                if cfg.mlp == 0 {
                    fail("--mlp must be at least 1");
                }
            }
            "--workloads" => {
                let names: String = parse("--workloads", args.next());
                specs = names
                    .split(',')
                    .map(|n| {
                        WorkloadSpec::by_name(n.trim())
                            .unwrap_or_else(|| fail(&format!("unknown workload '{n}'")))
                    })
                    .collect();
            }
            "--vault-design" => {
                let kind: String = parse("--vault-design", args.next());
                let tech = silo_dram::TechnologyParams::default();
                let sweep = silo_dram::VaultSweep::default();
                let point = match kind.as_str() {
                    "latency" => sweep.latency_optimized(&tech, 0.25),
                    "capacity" => sweep.capacity_optimized(&tech),
                    other => fail(&format!("unknown vault design '{other}'")),
                };
                let Some(p) = point else {
                    fail("vault sweep produced no feasible design");
                };
                cfg = cfg.with_design_point(&p);
                println!(
                    "vault design ({kind}-optimized): {} ({} MiB bucket), {:.2} ns array, {} banks",
                    silo_types::ByteSize::from_bytes(p.capacity_bytes),
                    p.capacity_bucket_mib(),
                    p.latency_ns,
                    p.config.banks_per_vault(),
                );
            }
            "--list" => {
                for w in WorkloadSpec::all() {
                    println!(
                        "{:<16} {:>6} refs/core  shared {:>4.0}%  writes {:>4.0}%  zipf {:.1}",
                        w.name,
                        w.refs_per_core,
                        100.0 * w.shared_fraction,
                        100.0 * w.write_fraction,
                        w.zipf_theta
                    );
                }
                return;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown option '{other}'")),
        }
    }
    cfg.validate();
    if specs.is_empty() {
        fail("no workloads selected");
    }
    if let Some(refs) = refs_override {
        for s in &mut specs {
            s.refs_per_core = refs;
        }
    }

    println!(
        "simulating {} cores on a {}x{} mesh (scale 1/{}, vault {}, LLC {}, seed {seed})",
        cfg.cores, cfg.mesh_width, cfg.mesh_height, cfg.scale, cfg.vault_capacity, cfg.llc_capacity
    );
    println!();

    let results: Vec<Comparison> = specs
        .iter()
        .map(|spec| Comparison {
            silo: silo_sim::run_silo(&cfg, spec, seed),
            baseline: silo_sim::run_baseline(&cfg, spec, seed),
        })
        .collect();

    print_comparison(&results);
}
