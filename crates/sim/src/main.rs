//! `silo-sim` CLI: a thin shim over the [`silo_sim::Simulation`]
//! builder. Compares any set of registered systems (SILO, the shared-LLC
//! baseline, and registry variants) on synthetic scale-out workloads,
//! either as a Fig. 11-style comparison, a parallel sweep over
//! (cores × scale × mlp × vault design), or a declarative
//! `--scenario` file, with machine-readable JSON output.

#![forbid(unsafe_code)]

use silo_sim::bench::{self, BenchRecord, SweepSpec};
use silo_sim::{ConfigError, Scenario, Simulation, SystemRegistry, SystemSpec, WorkloadSpec};
use std::path::{Path, PathBuf};
use std::time::Instant;

const USAGE: &str = "\
silo-sim: N-way comparisons of SILO private die-stacked DRAM caches,
the shared NUCA-LLC baseline, and registry-defined variants

USAGE:
    silo-sim [OPTIONS]
    silo-sim trace-info FILE     inspect a .silotrace capture (header,
                                 provenance, record counts, checksum)
    silo-sim bench [OPTIONS]     hot-loop throughput benchmark: time the
                                 fixed matrix (every builtin system x
                                 zipf-shared/uniform-private/pointer-chase,
                                 8 cores, seed 42) and report refs/sec.
                                 Options: --refs N (refs/core, default
                                 20000), --threads N, --label S,
                                 --json PATH (append a snapshot to a
                                 silo-hotloop/v1 trajectory file),
                                 --compare PATH (print refs/sec deltas vs
                                 the file's last snapshot),
                                 --gate PATH (noise-aware perf gate:
                                 repeat the matrix --gate-reps times
                                 (default 5), take the median refs/sec
                                 per row, and classify each row and the
                                 geomean as pass/noise/regress against
                                 the file's last matching snapshot with
                                 a tolerance derived from the observed
                                 rep spread; exit 1 on regress),
                                 --gate-json PATH (write the
                                 silo-gate/v1 verdict)
    silo-sim serve [OPTIONS]     simulation-as-a-service daemon: accept
                                 scenario submissions over HTTP, fan
                                 sweep points across a worker pool, and
                                 store every completed row in an
                                 on-disk content-addressed cache so
                                 overlapping or resubmitted sweeps only
                                 compute never-seen points. Endpoints:
                                 POST /jobs (scenario body; 202 + job
                                 id), GET /jobs/ID, GET /jobs/ID/result
                                 (blocks; full silo-bench/v1 JSON),
                                 GET /jobs/ID/stream (rows live as
                                 chunked NDJSON), GET /status,
                                 GET /healthz (liveness), GET /logs
                                 (structured NDJSON log tail;
                                 ?level=info&n=100), GET /version,
                                 POST /shutdown (graceful: running
                                 points finish, queued jobs stay
                                 journalled for --resume).
                                 Options: --addr HOST:PORT (default
                                 127.0.0.1:7878), --workers N (default
                                 2), --queue N (point backpressure
                                 limit; overflow answers 503), --quota N
                                 (active jobs per client; overflow
                                 answers 429), --cache DIR (default
                                 .silo-serve), --cache-cap N (rows kept;
                                 oldest evicted beyond it), --resume
                                 (replay jobs journalled by a previous
                                 run; cached points are not recomputed),
                                 --trace-out PATH (write a Chrome
                                 trace-event JSON of request/job spans on
                                 shutdown; GET /metrics and GET /trace
                                 serve live telemetry either way),
                                 --log-out PATH (append every structured
                                 log record to PATH as NDJSON; GET /logs
                                 serves the bounded tail either way)
    silo-sim hash SCENARIO       print the canonical content hash of the
                                 resolved sweep: stable across scenario
                                 key reordering and whitespace, changed
                                 by any semantic difference. This is the
                                 hash the serve cache is keyed by.
                                 --points also lists every sweep point's
                                 cache key
    silo-sim --version           print the workspace version
    silo-sim check [OPTIONS]     exhaustive model checking: explore every
                                 reachable protocol state of a bounded
                                 world by BFS and assert the coherence
                                 invariants (SWMR, single owner, dirty
                                 ownership, directory agreement, packed
                                 roundtrip, forward policy) on each state
                                 and transition. Exits 1 on a violation,
                                 printing its counterexample trace.
                                 Options: --systems a,b,c (default: all
                                 builtins), --nodes N (default 4),
                                 --max-states N (default 60000),
                                 --json PATH (write silo-check/v1 JSON)

OPTIONS:
    --scenario FILE      load a declarative scenario file (key = value:
                         systems, workloads, cores, scale, mlp, vault,
                         seed, refs, threads, warmup, epoch, check,
                         profile); flags override it
    --systems a,b,c      systems to compare (default SILO,baseline;
                         see --list-systems)
    --cores N            cores / mesh nodes (default 16, max 64)
    --refs N             references per core (default: per-workload preset)
    --scale N            capacity scaling factor for caches AND working
                         sets (default 64; 1 = full 256 MiB vaults)
    --seed N             workload RNG seed (default 42)
    --mlp N              MSHRs per core (default 8)
    --workloads a,b,c    comma-separated workloads: presets, custom
                         specs like zipf:theta=0.9,footprint=4x, or
                         trace:file=PATH to replay a .silotrace capture
    --record-traces DIR  capture every generated (workload, cores,
                         scale) combination of this run to
                         DIR/<name>-c<cores>-s<scale>.silotrace before
                         running; replay later with trace:file=PATH
    --vault-design KIND  derive the vault from the silo-dram sweep:
                         'latency' (256 MiB-class), 'capacity'
                         (512 MiB-class), or 'table2' (the Table II
                         constants, default)
    --warmup N           telemetry: treat the first N references (summed
                         across cores) as cache warmup — measurement
                         counters reset, simulated state is kept (0 = off)
    --epoch N            telemetry: record a timeline epoch every N
                         references (IPC, served levels, LLC latency
                         percentiles, link utilization, vault occupancy)
    --timeline PATH      write the per-epoch timeline CSV (needs --epoch
                         or a scenario 'epoch =' key)
    --check N            run-time invariant oracle: every N references,
                         re-verify the engine's structural invariants
                         (directory consistency, occupancy accounting)
                         and the run loop's cross-layer assertions
                         (MSHR bounds, counter monotonicity); results
                         stay bit-identical to an unchecked run
    --log FILE           append structured NDJSON event records (run
                         start, sweep done, outputs written) to FILE
    --profile            hot-loop self-profiler: sample per-phase
                         wall-clock (trace pull, engine step, timing,
                         telemetry) for every run, attribute engine and
                         timing time to lap-probe sub-phases (lookup /
                         directory / fill / writeback and mesh / bank /
                         mshr), and print the phase tree; results stay
                         bit-identical to an unprofiled run (mutually
                         exclusive with --check)
    --profile-json PATH  write the per-run phase profiles as
                         silo-profile/v1 JSON (implies --profile)
    --profile-trace PATH write the merged phase profile as Chrome
                         trace-event JSON for Perfetto / chrome://tracing
                         (implies --profile)
    --list-systems       list registered systems and exit
    --list-workloads     list workload presets and the custom-spec
                         grammar, then exit (alias: --list)
    --help               show this help

SWEEP MODE (any --sweep* flag enables it):
    --sweep              sweep the cartesian product of the dimensions
                         below across worker threads
    --sweep-cores LIST   core counts, e.g. 4,8,16 (default: --cores)
    --sweep-scale LIST   scale factors, e.g. 32,64 (default: --scale)
    --sweep-mlp LIST     MSHR counts, e.g. 4,8 (default: --mlp)
    --sweep-vault LIST   vault designs from {table2,latency,capacity}
                         (default: --vault-design)
    --threads N          worker threads (default: available parallelism,
                         at least 4)
    --json PATH          write silo-bench/v1 JSON (works in both modes)
";

/// Everything the flag parser collects; `None` means "not given", so
/// scenario-file settings survive unless explicitly overridden.
#[derive(Default)]
struct Cli {
    scenario: Option<PathBuf>,
    systems: Option<Vec<String>>,
    workloads: Option<Vec<String>>,
    cores: Option<usize>,
    refs: Option<usize>,
    scale: Option<u64>,
    seed: Option<u64>,
    mlp: Option<usize>,
    vault: Option<String>,
    sweep: bool,
    sweep_cores: Option<Vec<usize>>,
    sweep_scales: Option<Vec<u64>>,
    sweep_mlps: Option<Vec<usize>>,
    sweep_vaults: Option<Vec<String>>,
    threads: Option<usize>,
    json: Option<PathBuf>,
    warmup: Option<u64>,
    epoch: Option<u64>,
    check: Option<u64>,
    log: Option<PathBuf>,
    profile: bool,
    profile_json: Option<PathBuf>,
    profile_trace: Option<PathBuf>,
    timeline: Option<PathBuf>,
    record_traces: Option<PathBuf>,
}

fn bad(what: &str, value: impl Into<String>, reason: impl Into<String>) -> ConfigError {
    ConfigError::BadValue {
        what: what.into(),
        value: value.into(),
        reason: reason.into(),
    }
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, ConfigError> {
    let v = value.ok_or_else(|| bad(flag, "", "the flag needs a value"))?;
    v.parse()
        .map_err(|_| bad(flag, v.clone(), "not a valid value"))
}

/// Parses a comma-separated list, skipping empty segments (so `a,,b`
/// and trailing commas are fine).
fn parse_name_list(flag: &str, value: Option<String>) -> Result<Vec<String>, ConfigError> {
    let raw: String = parse_value(flag, value)?;
    let out: Vec<String> = raw
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(str::to_string)
        .collect();
    if out.is_empty() {
        return Err(bad(flag, raw, "needs at least one value"));
    }
    Ok(out)
}

fn parse_num_list<T: std::str::FromStr>(
    flag: &str,
    value: Option<String>,
) -> Result<Vec<T>, ConfigError> {
    let names = parse_name_list(flag, value)?;
    names
        .iter()
        .map(|n| {
            n.parse()
                .map_err(|_| bad(flag, n.clone(), "not a valid number"))
        })
        .collect()
}

/// Parses the argument vector. Returns `None` when a `--list*` / `--help`
/// flag already handled the invocation.
fn parse_args(args: impl Iterator<Item = String>) -> Result<Option<Cli>, ConfigError> {
    let mut cli = Cli::default();
    let mut args = args;
    let mut first = true;
    while let Some(arg) = args.next() {
        if std::mem::take(&mut first) {
            if arg == "trace-info" {
                let path: String = parse_value("trace-info", args.next())?;
                print_trace_info(Path::new(&path))?;
                return Ok(None);
            }
            if arg == "bench" {
                run_bench(args)?;
                return Ok(None);
            }
            if arg == "check" {
                run_check(args)?;
                return Ok(None);
            }
            if arg == "serve" {
                run_serve(args)?;
                return Ok(None);
            }
            if arg == "hash" {
                run_hash(args)?;
                return Ok(None);
            }
        }
        match arg.as_str() {
            "--scenario" => {
                let p: String = parse_value("--scenario", args.next())?;
                cli.scenario = Some(PathBuf::from(p));
            }
            "--systems" => cli.systems = Some(parse_name_list("--systems", args.next())?),
            "--workloads" => {
                let raw: String = parse_value("--workloads", args.next())?;
                cli.workloads = Some(WorkloadSpec::split_list(&raw)?);
            }
            "--cores" => cli.cores = Some(parse_value("--cores", args.next())?),
            "--refs" => cli.refs = Some(parse_value("--refs", args.next())?),
            "--scale" => cli.scale = Some(parse_value("--scale", args.next())?),
            "--seed" => cli.seed = Some(parse_value("--seed", args.next())?),
            "--mlp" => cli.mlp = Some(parse_value("--mlp", args.next())?),
            "--vault-design" => cli.vault = Some(parse_value("--vault-design", args.next())?),
            "--sweep" => cli.sweep = true,
            "--sweep-cores" => {
                cli.sweep_cores = Some(parse_num_list("--sweep-cores", args.next())?);
                cli.sweep = true;
            }
            "--sweep-scale" => {
                cli.sweep_scales = Some(parse_num_list("--sweep-scale", args.next())?);
                cli.sweep = true;
            }
            "--sweep-mlp" => {
                cli.sweep_mlps = Some(parse_num_list("--sweep-mlp", args.next())?);
                cli.sweep = true;
            }
            "--sweep-vault" => {
                cli.sweep_vaults = Some(parse_name_list("--sweep-vault", args.next())?);
                cli.sweep = true;
            }
            "--threads" => cli.threads = Some(parse_value("--threads", args.next())?),
            "--json" => {
                let p: String = parse_value("--json", args.next())?;
                cli.json = Some(PathBuf::from(p));
            }
            "--warmup" => cli.warmup = Some(parse_value("--warmup", args.next())?),
            "--epoch" => cli.epoch = Some(parse_value("--epoch", args.next())?),
            "--check" => cli.check = Some(parse_value("--check", args.next())?),
            "--log" => {
                let p: String = parse_value("--log", args.next())?;
                cli.log = Some(PathBuf::from(p));
            }
            "--profile" => cli.profile = true,
            "--profile-json" => {
                let p: String = parse_value("--profile-json", args.next())?;
                cli.profile_json = Some(PathBuf::from(p));
                cli.profile = true;
            }
            "--profile-trace" => {
                let p: String = parse_value("--profile-trace", args.next())?;
                cli.profile_trace = Some(PathBuf::from(p));
                cli.profile = true;
            }
            "--timeline" => {
                let p: String = parse_value("--timeline", args.next())?;
                cli.timeline = Some(PathBuf::from(p));
            }
            "--record-traces" => {
                let p: String = parse_value("--record-traces", args.next())?;
                cli.record_traces = Some(PathBuf::from(p));
            }
            "--list-systems" => {
                list_systems();
                return Ok(None);
            }
            "--list" | "--list-workloads" => {
                list_workloads();
                return Ok(None);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--version" | "-V" => {
                println!("silo-sim {}", silo_types::VERSION);
                return Ok(None);
            }
            other => {
                return Err(bad(
                    "argument",
                    other,
                    "unknown option (see silo-sim --help)",
                ))
            }
        }
    }
    Ok(Some(cli))
}

fn list_systems() {
    for spec in SystemRegistry::builtin().specs() {
        println!("{:<18} {}", spec.name(), spec.description());
    }
}

fn list_workloads() {
    for w in WorkloadSpec::all() {
        println!(
            "{:<18} {:>6} refs/core  shared {:>4.0}%  writes {:>4.0}%  zipf {:.1}",
            w.name,
            w.refs_per_core,
            100.0 * w.shared_fraction,
            100.0 * w.write_fraction,
            w.zipf_theta
        );
    }
    println!();
    println!("custom specs: base:key=value[,key=value...], e.g. zipf:theta=0.9,footprint=4x");
    println!("  bases: any preset above, plus the aliases 'zipf' and 'uniform'");
    println!("  keys:  theta, footprint (4x or 64MiB), shared, writes, dependent,");
    println!("         ifetch, refs, gap (fractions in [0,1])");
    println!("trace replay: trace:file=PATH streams a .silotrace capture recorded with");
    println!("  --record-traces; rows keep the original workload name and are");
    println!("  byte-identical to the synthetic run at the same seed and config");
    println!("the same grammar works in --workloads and in scenario files");
}

/// `silo-sim trace-info FILE`: validates the capture end to end (one
/// streaming pass, checksum included) and prints its header and stats.
fn print_trace_info(path: &Path) -> Result<(), ConfigError> {
    let summary = silo_trace::verify(path).map_err(|e| ConfigError::Trace {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    let bytes = std::fs::metadata(path).map_or(0, |m| m.len());
    let h = &summary.header;
    println!("trace:        {}", path.display());
    println!("format:       silotrace v{}", silo_trace::VERSION);
    println!("workload:     {}", h.name);
    println!("provenance:   {}", h.provenance);
    println!("seed:         {}", h.seed);
    println!("cores:        {}", h.cores);
    println!("refs/core:    {} (header hint)", h.refs_per_core);
    let (min, max) = (
        summary.per_core.iter().min().copied().unwrap_or(0),
        summary.per_core.iter().max().copied().unwrap_or(0),
    );
    println!(
        "records:      {} (per-core min {min}, max {max})",
        summary.records
    );
    println!(
        "kinds:        {} ifetch / {} read / {} write ({} dependent)",
        summary.kinds[0], summary.kinds[1], summary.kinds[2], summary.dependent
    );
    let per_ref = if summary.records > 0 {
        bytes as f64 / summary.records as f64
    } else {
        0.0
    };
    println!("file size:    {bytes} bytes ({per_ref:.2} bytes/record)");
    println!("checksum:     OK");
    Ok(())
}

/// `silo-sim bench`: runs the fixed hot-loop throughput matrix and
/// reports refs/sec per (system, workload) cell. `--json` appends the
/// run as a snapshot to a `silo-hotloop/v1` trajectory file
/// (`BENCH_hotloop.json`); `--compare` prints per-cell deltas against
/// the last snapshot of an existing trajectory.
fn run_bench(mut args: impl Iterator<Item = String>) -> Result<(), ConfigError> {
    use silo_sim::bench::gate;
    use silo_sim::bench::throughput;

    let mut refs: usize = 20_000;
    let mut threads = std::thread::available_parallelism().map_or(4, usize::from);
    let mut label: Option<String> = None;
    let mut json: Option<PathBuf> = None;
    let mut compare: Option<PathBuf> = None;
    let mut gate_base: Option<PathBuf> = None;
    let mut gate_reps: usize = gate::DEFAULT_GATE_REPS;
    let mut gate_json_out: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--refs" => refs = parse_value("--refs", args.next())?,
            "--threads" => threads = parse_value("--threads", args.next())?,
            "--label" => label = Some(parse_value("--label", args.next())?),
            "--json" => json = Some(PathBuf::from(parse_value::<String>("--json", args.next())?)),
            "--compare" => {
                compare = Some(PathBuf::from(parse_value::<String>(
                    "--compare",
                    args.next(),
                )?));
            }
            "--gate" => {
                gate_base = Some(PathBuf::from(parse_value::<String>("--gate", args.next())?));
            }
            "--gate-reps" => gate_reps = parse_value("--gate-reps", args.next())?,
            "--gate-json" => {
                gate_json_out = Some(PathBuf::from(parse_value::<String>(
                    "--gate-json",
                    args.next(),
                )?));
            }
            other => return Err(bad("bench argument", other, "unknown option")),
        }
    }
    if refs == 0 {
        return Err(bad("--refs", "0", "needs at least one reference per core"));
    }
    if gate_reps == 0 {
        return Err(bad("--gate-reps", "0", "needs at least one repetition"));
    }
    let spec = throughput::ThroughputSpec::hotloop_matrix(refs);
    println!(
        "hot-loop bench: {} systems x {} workloads, {} cores, {} refs/core, seed {}, {} threads",
        spec.systems.len(),
        spec.workloads.len(),
        spec.cores,
        spec.refs_per_core,
        spec.seed,
        threads
    );
    let rows = throughput::run_throughput(&spec, threads);
    println!(
        "{:<16} {:<16} {:>10} {:>10} {:>14}",
        "system", "workload", "refs", "wall(ms)", "refs/sec"
    );
    for r in &rows {
        println!(
            "{:<16} {:<16} {:>10} {:>10.1} {:>14.0}",
            r.system,
            r.workload,
            r.refs,
            r.wall_ms,
            r.refs_per_sec()
        );
    }
    println!(
        "geomean {:.0} refs/sec",
        throughput::geomean_refs_per_sec(&rows)
    );
    if let Some(path) = &compare {
        let snapshots = throughput::load_snapshots(path)?;
        match snapshots.last() {
            None => println!("compare: {} has no snapshots", path.display()),
            Some(reference) => {
                let against = reference
                    .get("label")
                    .and_then(silo_sim::Json::as_str)
                    .unwrap_or("?");
                let (deltas, geo) = throughput::compare_rows(&rows, reference);
                for d in &deltas {
                    println!(
                        "delta {:<16} {:<16} {:>14.0} vs {:>14.0} = {:.2}x",
                        d.system, d.workload, d.now, d.then, d.ratio
                    );
                }
                match geo {
                    Some(g) => println!("geomean vs '{against}': {g:.2}x refs/sec"),
                    None => println!("compare: no matching rows in '{against}'"),
                }
            }
        }
    }
    if let Some(path) = &json {
        let label = label.unwrap_or_else(|| format!("refs{refs}"));
        let n = throughput::append_snapshot(path, throughput::snapshot_json(&label, &spec, &rows))?;
        println!(
            "appended snapshot '{label}' to {} ({n} total)",
            path.display()
        );
    }
    if let Some(base_path) = &gate_base {
        let snapshots = throughput::load_snapshots(base_path)?;
        let Some(base) = gate::select_snapshot(&snapshots, &spec) else {
            return Err(bad(
                "--gate",
                base_path.display().to_string(),
                format!(
                    "no snapshot matches the matrix (cores {}, refs/core {}, seed {})",
                    spec.cores, spec.refs_per_core, spec.seed
                ),
            ));
        };
        // The matrix above is repetition 1; the rest run back to back at
        // whole-matrix granularity, so host noise lands across every
        // row's sample instead of concentrating in one row.
        let mut reps = vec![rows];
        while reps.len() < gate_reps {
            println!("gate repetition {}/{gate_reps}...", reps.len() + 1);
            reps.push(throughput::run_throughput(&spec, threads));
        }
        let report = gate::evaluate(&reps, base, gate::DEFAULT_MIN_TOLERANCE);
        println!();
        println!(
            "perf gate vs '{}' ({} reps, median per row, tolerance from observed spread, floor {:.0}%):",
            report.base_label,
            report.reps,
            100.0 * report.min_tolerance
        );
        println!(
            "{:<16} {:<16} {:>12} {:>12} {:>7} {:>7} {:>8}",
            "system", "workload", "base r/s", "median r/s", "ratio", "tol", "verdict"
        );
        for r in &report.rows {
            println!(
                "{:<16} {:<16} {:>12.0} {:>12.0} {:>6.2}x {:>6.1}% {:>8}",
                r.system,
                r.workload,
                r.base_rps,
                r.median_rps,
                r.ratio,
                100.0 * r.tolerance,
                r.verdict.as_str()
            );
        }
        println!(
            "geomean {:.2}x (tolerance {:.1}%): {}",
            report.geomean_ratio,
            100.0 * report.geomean_tolerance,
            report.verdict.as_str()
        );
        if let Some(path) = &gate_json_out {
            let doc = format!("{}\n", gate::gate_json(&report));
            std::fs::write(path, doc).map_err(|e| {
                bad(
                    "--gate-json",
                    path.display().to_string(),
                    format!("cannot write: {e}"),
                )
            })?;
            println!("wrote {} verdict to {}", gate::SCHEMA_GATE, path.display());
        }
        if report.regressed() {
            std::process::exit(1);
        }
    }
    Ok(())
}

/// `silo-sim serve`: starts the simulation-as-a-service daemon and
/// blocks until it drains (POST /shutdown). All simulation semantics —
/// scenario parsing, validation, row rendering — are exactly the CLI's;
/// the daemon adds the job queue, worker pool, content-addressed row
/// cache, and write-ahead journal from `silo-serve`.
fn run_serve(mut args: impl Iterator<Item = String>) -> Result<(), ConfigError> {
    let mut cfg = silo_serve::ServeConfig::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = parse_value("--addr", args.next())?,
            "--workers" => cfg.workers = parse_value("--workers", args.next())?,
            "--queue" => cfg.queue_capacity = parse_value("--queue", args.next())?,
            "--quota" => cfg.client_quota = parse_value("--quota", args.next())?,
            "--cache" => {
                cfg.cache_dir = PathBuf::from(parse_value::<String>("--cache", args.next())?);
            }
            "--cache-cap" => cfg.cache_cap = parse_value("--cache-cap", args.next())?,
            "--resume" => cfg.resume = true,
            "--trace-out" => {
                cfg.trace_out = Some(PathBuf::from(parse_value::<String>(
                    "--trace-out",
                    args.next(),
                )?));
            }
            "--log-out" => {
                cfg.log_out = Some(PathBuf::from(parse_value::<String>(
                    "--log-out",
                    args.next(),
                )?));
            }
            other => return Err(bad("serve argument", other, "unknown option")),
        }
    }
    if cfg.workers == 0 {
        return Err(bad("--workers", "0", "needs at least one worker"));
    }
    if cfg.queue_capacity == 0 {
        return Err(bad("--queue", "0", "needs room for at least one point"));
    }
    if cfg.client_quota == 0 {
        return Err(bad("--quota", "0", "needs at least one job per client"));
    }
    let banner = cfg.clone();
    let handle = silo_serve::start(silo_sim::SimJobEngine, cfg)
        .map_err(|e| bad("serve", banner.addr.clone(), format!("cannot start: {e}")))?;
    println!(
        "silo-serve {} listening on http://{}",
        silo_types::VERSION,
        handle.addr()
    );
    println!(
        "cache {} (cap {} rows), {} workers, queue {} points, quota {} jobs/client{}",
        banner.cache_dir.display(),
        banner.cache_cap,
        banner.workers,
        banner.queue_capacity,
        banner.client_quota,
        if banner.resume {
            ", resuming journal"
        } else {
            ""
        }
    );
    println!(
        "endpoints: POST /jobs, GET /jobs/ID[/result|/stream], GET /status, \
         GET /healthz, GET /metrics, GET /trace, GET /logs, GET /version, \
         POST /shutdown"
    );
    handle.join();
    println!("silo-serve: drained and stopped");
    Ok(())
}

/// `silo-sim hash SCENARIO`: prints the canonical content hash of the
/// sweep the scenario resolves to — the identity the serve cache keys
/// on. `--points` also lists every point's cache key.
fn run_hash(args: impl Iterator<Item = String>) -> Result<(), ConfigError> {
    let mut path: Option<PathBuf> = None;
    let mut show_points = false;
    for arg in args {
        match arg.as_str() {
            "--points" => show_points = true,
            other if other.starts_with('-') => {
                return Err(bad("hash argument", other, "unknown option"))
            }
            other => {
                if path.is_some() {
                    return Err(bad("hash argument", other, "exactly one scenario file"));
                }
                path = Some(PathBuf::from(other));
            }
        }
    }
    let path = path.ok_or_else(|| bad("hash", "", "usage: silo-sim hash SCENARIO [--points]"))?;
    let sim = Simulation::builder()
        .scenario(&Scenario::load(&path)?)
        .build()?;
    let spec = sim.spec();
    let keys = silo_sim::canon::point_keys(spec)
        .map_err(|e| bad("hash", path.display().to_string(), e))?;
    println!("{}", silo_sim::canon::sweep_hash_of_keys(&keys));
    if show_points {
        for (key, p) in keys.iter().zip(spec.points()) {
            println!(
                "{key}  {} cores={} scale={} mlp={} vault={}",
                p.workload.name,
                p.cores,
                p.scale,
                p.mlp,
                p.vault.name()
            );
        }
    }
    Ok(())
}

/// `silo-sim check`: exhaustive model checking of the registered
/// protocols over a bounded world. Each system's reachable state space
/// is explored by BFS over all interleavings of per-node
/// {read, write, evict} operations, asserting the coherence safety
/// invariants on every state and transition. Writes `silo-check/v1`
/// JSON with `--json` and exits 1 when any system reports a violation,
/// printing the counterexample's operation trace.
fn run_check(mut args: impl Iterator<Item = String>) -> Result<(), ConfigError> {
    use silo_check::{baseline_world, explore, CheckReport, WorldParams};

    let mut systems: Vec<String> = ["SILO", "baseline", "silo-no-forward", "baseline-2x"]
        .map(String::from)
        .to_vec();
    let mut params = WorldParams::default();
    let mut json: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--systems" => systems = parse_name_list("--systems", args.next())?,
            "--nodes" => params.nodes = parse_value("--nodes", args.next())?,
            "--max-states" => params.max_states = parse_value("--max-states", args.next())?,
            "--json" => json = Some(PathBuf::from(parse_value::<String>("--json", args.next())?)),
            other => return Err(bad("check argument", other, "unknown option")),
        }
    }
    if !(2..=16).contains(&params.nodes) {
        return Err(bad(
            "--nodes",
            params.nodes.to_string(),
            "the bounded world supports 2..=16 nodes",
        ));
    }
    if params.max_states == 0 {
        return Err(bad("--max-states", "0", "needs at least one state"));
    }

    let mut reports: Vec<CheckReport> = Vec::new();
    for name in &systems {
        let report = match name.to_ascii_lowercase().as_str() {
            "silo" => {
                let (factory, world) = silo_check::silo_world(params, true);
                explore("SILO", factory, &world)
            }
            "silo-no-forward" => {
                let (factory, world) = silo_check::silo_world(params, false);
                explore("silo-no-forward", factory, &world)
            }
            "baseline" => {
                let (factory, world) = baseline_world(params, 1);
                explore("baseline", factory, &world)
            }
            "baseline-2x" => {
                let (factory, world) = baseline_world(params, 2);
                explore("baseline-2x", factory, &world)
            }
            _ => {
                return Err(bad(
                    "--systems",
                    name.clone(),
                    "model checking covers the builtins: \
                     SILO, baseline, silo-no-forward, baseline-2x",
                ))
            }
        };
        print_check_report(&report);
        reports.push(report);
    }

    if let Some(path) = &json {
        let doc = check_json(&params, &reports);
        std::fs::write(path, format!("{doc}\n")).map_err(|e| {
            bad(
                "--json",
                path.display().to_string(),
                format!("cannot write: {e}"),
            )
        })?;
        println!("wrote {} report(s) to {}", reports.len(), path.display());
    }

    let bad_systems: Vec<&str> = reports
        .iter()
        .filter(|r| !r.ok())
        .map(|r| r.system.as_str())
        .collect();
    if bad_systems.is_empty() {
        let states: u64 = reports.iter().map(|r| r.states).sum();
        println!(
            "all invariants hold: {} system(s), {} states total",
            reports.len(),
            states
        );
        Ok(())
    } else {
        eprintln!("invariant violations in: {}", bad_systems.join(", "));
        std::process::exit(1);
    }
}

/// Prints one system's exploration summary (and, on a violation, the
/// counterexample trace) in a human-readable form.
fn print_check_report(r: &silo_check::CheckReport) {
    println!(
        "{}: {} states, {} transitions, depth {}, {} nodes x {} lines{}",
        r.system,
        r.states,
        r.transitions,
        r.max_depth,
        r.nodes,
        r.lines,
        if r.exhausted {
            " (exhaustive)"
        } else {
            " (truncated by --max-states)"
        }
    );
    for inv in &r.invariants {
        println!(
            "  {:<22} checked {:>8}  violations {}",
            inv.name, inv.checked, inv.violations
        );
    }
    for d in &r.deviations {
        println!(
            "  expected deviation: {} ({}x)",
            d.description, d.occurrences
        );
    }
    if let Some(cex) = &r.counterexample {
        println!("  VIOLATION of '{}': {}", cex.invariant, cex.message);
        println!("  counterexample ({} ops):", cex.trace.len());
        for step in &cex.trace {
            println!("    {step}");
        }
    }
    println!();
}

/// Renders the `silo-check/v1` document: world parameters plus one
/// report object per checked system.
fn check_json(
    params: &silo_check::WorldParams,
    reports: &[silo_check::CheckReport],
) -> silo_sim::Json {
    use silo_sim::Json;
    let systems = reports
        .iter()
        .map(|r| {
            let invariants = r
                .invariants
                .iter()
                .map(|i| {
                    Json::Obj(vec![
                        ("name".into(), Json::Str(i.name.into())),
                        ("checked".into(), Json::Int(i.checked.into())),
                        ("violations".into(), Json::Int(i.violations.into())),
                    ])
                })
                .collect();
            let deviations = r
                .deviations
                .iter()
                .map(|d| {
                    Json::Obj(vec![
                        ("description".into(), Json::Str(d.description.clone())),
                        ("occurrences".into(), Json::Int(d.occurrences.into())),
                    ])
                })
                .collect();
            let counterexample = r.counterexample.as_ref().map_or(Json::Null, |cex| {
                let trace = cex
                    .trace
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("op".into(), Json::Str(s.op.to_string())),
                            ("state".into(), Json::Int(s.state.into())),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("invariant".into(), Json::Str(cex.invariant.into())),
                    ("message".into(), Json::Str(cex.message.clone())),
                    ("trace".into(), Json::Arr(trace)),
                ])
            });
            Json::Obj(vec![
                ("system".into(), Json::Str(r.system.clone())),
                ("nodes".into(), Json::Int(r.nodes as i128)),
                ("lines".into(), Json::Int(r.lines as i128)),
                ("states".into(), Json::Int(r.states.into())),
                ("transitions".into(), Json::Int(r.transitions.into())),
                ("max_depth".into(), Json::Int(r.max_depth.into())),
                ("exhausted".into(), Json::Bool(r.exhausted)),
                ("ok".into(), Json::Bool(r.ok())),
                ("invariants".into(), Json::Arr(invariants)),
                ("deviations".into(), Json::Arr(deviations)),
                ("counterexample".into(), counterexample),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::Str("silo-check/v1".into())),
        ("nodes".into(), Json::Int(params.nodes as i128)),
        ("max_states".into(), Json::Int(params.max_states as i128)),
        ("systems".into(), Json::Arr(systems)),
    ])
}

/// Assembles the builder from scenario + flags (flags win) and builds.
fn build_simulation(cli: &Cli) -> Result<Simulation, ConfigError> {
    let mut b = Simulation::builder();
    if let Some(path) = &cli.scenario {
        b = b.scenario(&Scenario::load(path)?);
    }
    if let Some(systems) = &cli.systems {
        b = b.systems(systems.clone());
    }
    if let Some(workloads) = &cli.workloads {
        b = b.workloads(workloads.clone());
    }
    // Sweep lists win over their single-value counterparts.
    if let Some(cores) = &cli.sweep_cores {
        b = b.cores(cores.iter().copied());
    } else if let Some(cores) = cli.cores {
        b = b.cores([cores]);
    }
    if let Some(scales) = &cli.sweep_scales {
        b = b.scales(scales.iter().copied());
    } else if let Some(scale) = cli.scale {
        b = b.scales([scale]);
    }
    if let Some(mlps) = &cli.sweep_mlps {
        b = b.mlps(mlps.iter().copied());
    } else if let Some(mlp) = cli.mlp {
        b = b.mlps([mlp]);
    }
    if let Some(vaults) = &cli.sweep_vaults {
        b = b.vault_designs(vaults.clone());
    } else if let Some(vault) = &cli.vault {
        b = b.vault_designs([vault.clone()]);
    }
    if let Some(seed) = cli.seed {
        b = b.seed(seed);
    }
    if let Some(refs) = cli.refs {
        b = b.refs_per_core(refs);
    }
    if let Some(threads) = cli.threads {
        b = b.threads(threads);
    }
    if let Some(warmup) = cli.warmup {
        b = b.warmup_refs(warmup);
    }
    if let Some(epoch) = cli.epoch {
        b = b.epoch_refs(epoch);
    }
    if let Some(check) = cli.check {
        b = b.check_every(check);
    }
    if cli.profile {
        b = b.profile(true);
    }
    let sim = b.build()?;
    if cli.timeline.is_some() && sim.spec().meter.epoch_refs.is_none() {
        return Err(ConfigError::BadValue {
            what: "--timeline".into(),
            value: cli
                .timeline
                .as_ref()
                .map(|p| p.display().to_string())
                .unwrap_or_default(),
            reason: "needs --epoch (or a scenario 'epoch =' key) to sample epochs".into(),
        });
    }
    Ok(sim)
}

fn main() {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(Some(cli)) => cli,
        Ok(None) => return,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let sim = match build_simulation(&cli) {
        Ok(sim) => sim,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let log = cli.log.as_ref().map(|path| {
        silo_obs::EventLog::with_sink(1024, path).unwrap_or_else(|e| {
            eprintln!("error: cannot open log {}: {e}", path.display());
            std::process::exit(1);
        })
    });

    let spec = sim.spec();
    if let Some(dir) = &cli.record_traces {
        match bench::record_traces(spec, dir) {
            Ok(paths) => {
                for p in &paths {
                    println!("recorded {}", p.display());
                }
                println!(
                    "{} trace(s) in {} — replay with --workloads trace:file=PATH",
                    paths.len(),
                    dir.display()
                );
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    print_vault_designs(spec);
    let sweep_mode = cli.sweep
        || spec.cores.len() > 1
        || spec.scales.len() > 1
        || spec.mlps.len() > 1
        || spec.vaults.len() > 1;
    if let Some(log) = &log {
        log.info(
            "sim.run",
            "run started",
            &[
                ("mode", if sweep_mode { "sweep" } else { "classic" }),
                ("points", &spec.points().len().to_string()),
                ("systems", &spec.systems.len().to_string()),
                ("seed", &spec.seed.to_string()),
            ],
        );
    }
    let records = if sweep_mode {
        run_sweep_mode(&sim)
    } else {
        run_classic_mode(&sim)
    };
    if let Some(log) = &log {
        log.info(
            "sim.run",
            "run complete",
            &[("points", &records.len().to_string())],
        );
    }

    if let Some(path) = &cli.json {
        if let Err(e) = bench::write_json_file(path, &records, spec.seed) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {} points to {}", records.len(), path.display());
        if let Some(log) = &log {
            log.info(
                "sim.output",
                "bench json written",
                &[("path", &path.display().to_string())],
            );
        }
    }
    if let Some(path) = &cli.timeline {
        match silo_sim::write_timeline_csv(path, &records) {
            Ok(rows) => println!("wrote {rows} timeline rows to {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if cli.profile {
        print_profile(&records);
    }
    if let Some(path) = &cli.profile_json {
        let doc = format!("{}\n", bench::profile_json(&records));
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!(
            "wrote {} profile to {}",
            bench::SCHEMA_PROFILE,
            path.display()
        );
    }
    if let Some(path) = &cli.profile_trace {
        let Some(merged) = bench::merged_profile(&records) else {
            eprintln!("error: --profile-trace found no profiled runs");
            std::process::exit(1);
        };
        if let Err(e) = std::fs::write(path, merged.chrome_json()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!(
            "wrote merged phase trace to {} (open in Perfetto or chrome://tracing)",
            path.display()
        );
    }
}

/// Prints the merged hot-loop phase profile as a tree: one row per root
/// phase with accumulated wall-clock, sample count, and share of the
/// total, and the lap-probe sub-phases indented under their parent
/// (their wall-clock sums to the parent's — the probes tile it exactly).
fn print_profile(records: &[BenchRecord]) {
    let Some(p) = bench::merged_profile(records) else {
        return;
    };
    println!();
    println!("hot-loop profile (all runs merged):");
    println!(
        "{:<13} {:>12} {:>12} {:>7}",
        "phase", "wall(ms)", "samples", "share"
    );
    let row = |p: &silo_obs::PhaseProfile, i: usize, indent: &str| {
        println!(
            "{:<13} {:>12.2} {:>12} {:>6.1}%",
            format!("{indent}{}", p.labels()[i]),
            p.nanos()[i] as f64 / 1e6,
            p.samples()[i],
            100.0 * p.share(i)
        );
    };
    for i in p.roots() {
        row(&p, i, "");
        for c in p.children(i) {
            row(&p, c, "  ");
        }
    }
}

/// Reports the resolved `silo-dram` sweep point behind every non-Table II
/// vault design, so users can see the capacity/latency/bank parameters
/// actually simulated.
fn print_vault_designs(spec: &SweepSpec) {
    for v in &spec.vaults {
        if let Some(p) = v.design_point() {
            println!(
                "vault design ({}-optimized): {} ({} MiB bucket), {:.2} ns array, {} banks",
                v.name(),
                silo_types::ByteSize::from_bytes(p.capacity_bytes),
                p.capacity_bucket_mib(),
                p.latency_ns,
                p.config.banks_per_vault(),
            );
        }
    }
}

/// The classic Fig. 11 comparison: the degenerate sweep, one point per
/// workload, printed as the detail table + normalized summaries.
fn run_classic_mode(sim: &Simulation) -> Vec<BenchRecord> {
    let spec = sim.spec();
    // Classic mode has exactly one vault design; apply it so the banner
    // reports the capacity the points actually simulate.
    let cfg = spec
        .vaults
        .first()
        .copied()
        .map_or(spec.base, |v| v.apply(spec.base));
    let cfg = cfg.with_cores(spec.cores[0]);
    let names: Vec<&str> = spec.systems.iter().map(SystemSpec::name).collect();
    println!(
        "simulating {} on {} cores, {}x{} mesh (scale 1/{}, vault {}, LLC {}, seed {})",
        names.join(" vs "),
        cfg.cores,
        cfg.mesh_width,
        cfg.mesh_height,
        spec.scales[0],
        cfg.vault_capacity,
        cfg.llc_capacity,
        spec.seed
    );
    println!();
    let records = sim.run();
    silo_sim::print_report(&records);
    records
}

/// Sweep mode: one compact row per (point, system) plus per-system
/// geomeans against the baseline.
fn run_sweep_mode(sim: &Simulation) -> Vec<BenchRecord> {
    let spec = sim.spec();
    let n_points = spec.points().len();
    println!(
        "sweep: {n_points} points ({} workloads x {} cores x {} scales x {} mlp x {} vaults) x {} systems on {} threads",
        spec.workloads.len(),
        spec.cores.len(),
        spec.scales.len(),
        spec.mlps.len(),
        spec.vaults.len(),
        spec.systems.len(),
        sim.threads(),
    );
    let t0 = Instant::now();
    let records = sim.run();
    let wall = t0.elapsed().as_secs_f64();

    let (wl_w, sys_w) = silo_sim::name_widths(&records);
    let header = format!(
        "{:<wl_w$} {:>5} {:>5} {:>4} {:>9} {:>sys_w$} {:>9} {:>8} {:>9}",
        "workload", "cores", "scale", "mlp", "vault", "system", "IPC", "vs-base", "wall(ms)"
    );
    println!("{header}");
    println!("{}", "-".repeat(header.chars().count()));
    for r in &records {
        for run in &r.runs {
            let vs_base = r
                .speedup_of(&run.stats.system, "baseline")
                .map_or("-".to_string(), |s| format!("{s:.2}x"));
            println!(
                "{:<wl_w$} {:>5} {:>5} {:>4} {:>9} {:>sys_w$} {:>9.3} {:>8} {:>9.1}",
                r.point.workload.name,
                r.point.cores,
                r.point.scale,
                r.point.mlp,
                r.point.vault.name(),
                run.stats.system,
                run.stats.ipc(),
                vs_base,
                run.wall_ms,
            );
        }
    }
    println!();
    print_sweep_geomeans(spec, &records);
    println!("{n_points} points in {wall:.2} s");
    records
}

/// Per-system geomean speedups over the baseline (skipped when the
/// baseline is not part of the comparison).
fn print_sweep_geomeans(spec: &SweepSpec, records: &[BenchRecord]) {
    if !spec
        .systems
        .iter()
        .any(|s| s.name().eq_ignore_ascii_case("baseline"))
    {
        return;
    }
    for sys in &spec.systems {
        if sys.name().eq_ignore_ascii_case("baseline") {
            continue;
        }
        let speedups: Vec<f64> = records
            .iter()
            .filter_map(|r| r.speedup_of(sys.name(), "baseline"))
            .collect();
        if !speedups.is_empty() {
            println!(
                "geomean {}/baseline {:.2}x",
                sys.name(),
                silo_types::geomean(&speedups)
            );
        }
    }
}
