//! `silo-sim` CLI: run SILO vs. the shared-LLC baseline on synthetic
//! scale-out workloads, either as a single Fig. 11-style comparison or
//! as a parallel sweep over (cores × scale × mlp × vault design) with
//! machine-readable JSON output.

use silo_sim::bench::{self, SweepSpec};
use silo_sim::{print_comparison, Comparison, SystemConfig, VaultDesign, WorkloadSpec};
use std::path::PathBuf;
use std::time::Instant;

const USAGE: &str = "\
silo-sim: SILO private die-stacked DRAM caches vs. a shared NUCA LLC

USAGE:
    silo-sim [OPTIONS]

OPTIONS:
    --cores N            cores / mesh nodes (default 16, max 64)
    --refs N             references per core (default: per-workload preset)
    --scale N            capacity scaling factor for caches AND working
                         sets (default 64; 1 = full 256 MiB vaults)
    --seed N             workload RNG seed (default 42)
    --mlp N              MSHRs per core (default 8)
    --workloads a,b,c    comma-separated subset of the presets
    --vault-design KIND  derive the vault from the silo-dram sweep:
                         'latency' (256 MiB-class), 'capacity'
                         (512 MiB-class), or 'table2' (the Table II
                         constants, default)
    --list               list workload presets and exit
    --help               show this help

SWEEP MODE (any --sweep* flag enables it):
    --sweep              sweep the cartesian product of the dimensions
                         below across worker threads
    --sweep-cores LIST   core counts, e.g. 4,8,16 (default: --cores)
    --sweep-scale LIST   scale factors, e.g. 32,64 (default: --scale)
    --sweep-mlp LIST     MSHR counts, e.g. 4,8 (default: --mlp)
    --sweep-vault LIST   vault designs from {table2,latency,capacity}
                         (default: --vault-design)
    --threads N          worker threads (default: available parallelism,
                         at least 4)
    --json PATH          write silo-bench/v1 JSON (works in both modes)
";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(v) = value else {
        fail(&format!("{flag} needs a value"));
    };
    match v.parse() {
        Ok(x) => x,
        Err(_) => fail(&format!("bad value '{v}' for {flag}")),
    }
}

/// Parses a comma-separated list, skipping empty segments (so `a,,b`
/// and trailing commas are fine) and rejecting duplicates.
fn parse_list<T: std::str::FromStr + PartialEq>(flag: &str, value: Option<String>) -> Vec<T> {
    let raw: String = parse(flag, value);
    let mut out: Vec<T> = Vec::new();
    for part in raw.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let Ok(v) = part.parse() else {
            fail(&format!("bad value '{part}' for {flag}"));
        };
        if out.contains(&v) {
            fail(&format!("duplicate value '{part}' for {flag}"));
        }
        out.push(v);
    }
    if out.is_empty() {
        fail(&format!("{flag} needs at least one value"));
    }
    out
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(4)
}

fn main() {
    let mut cfg = SystemConfig::paper_16core();
    let mut specs = WorkloadSpec::all();
    let mut refs_override: Option<usize> = None;
    let mut seed = 42u64;
    let mut vault = VaultDesign::Table2;
    let mut sweep = false;
    let mut sweep_cores: Option<Vec<usize>> = None;
    let mut sweep_scales: Option<Vec<u64>> = None;
    let mut sweep_mlps: Option<Vec<usize>> = None;
    let mut sweep_vaults: Option<Vec<VaultDesign>> = None;
    let mut threads: Option<usize> = None;
    let mut json_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cores" => {
                let cores: usize = parse("--cores", args.next());
                if !(1..=64).contains(&cores) {
                    fail("--cores must be in [1, 64] (directory masks are u64)");
                }
                cfg = cfg.with_cores(cores);
            }
            "--refs" => {
                let refs: usize = parse("--refs", args.next());
                if refs == 0 {
                    fail("--refs must be at least 1");
                }
                refs_override = Some(refs);
            }
            "--scale" => {
                cfg.scale = parse("--scale", args.next());
                if cfg.scale == 0 {
                    fail("--scale must be at least 1");
                }
            }
            "--seed" => seed = parse("--seed", args.next()),
            "--mlp" => {
                cfg.mlp = parse("--mlp", args.next());
                if cfg.mlp == 0 {
                    fail("--mlp must be at least 1");
                }
            }
            "--workloads" => {
                let names: Vec<String> = parse_list("--workloads", args.next());
                specs = names
                    .iter()
                    .map(|n| {
                        WorkloadSpec::by_name(n)
                            .unwrap_or_else(|| fail(&format!("unknown workload '{n}'")))
                    })
                    .collect();
            }
            "--vault-design" => {
                let kind: String = parse("--vault-design", args.next());
                let Some(v) = VaultDesign::parse(&kind) else {
                    fail(&format!("unknown vault design '{kind}'"));
                };
                vault = v;
                if vault != VaultDesign::Table2 {
                    let Some(p) = vault.design_point() else {
                        fail("vault sweep produced no feasible design");
                    };
                    println!(
                        "vault design ({kind}-optimized): {} ({} MiB bucket), {:.2} ns array, {} banks",
                        silo_types::ByteSize::from_bytes(p.capacity_bytes),
                        p.capacity_bucket_mib(),
                        p.latency_ns,
                        p.config.banks_per_vault(),
                    );
                }
            }
            "--sweep" => sweep = true,
            "--sweep-cores" => {
                let cores: Vec<usize> = parse_list("--sweep-cores", args.next());
                if cores.iter().any(|c| !(1..=64).contains(c)) {
                    fail("--sweep-cores values must be in [1, 64]");
                }
                sweep_cores = Some(cores);
                sweep = true;
            }
            "--sweep-scale" => {
                let scales: Vec<u64> = parse_list("--sweep-scale", args.next());
                if scales.contains(&0) {
                    fail("--sweep-scale values must be at least 1");
                }
                sweep_scales = Some(scales);
                sweep = true;
            }
            "--sweep-mlp" => {
                let mlps: Vec<usize> = parse_list("--sweep-mlp", args.next());
                if mlps.contains(&0) {
                    fail("--sweep-mlp values must be at least 1");
                }
                sweep_mlps = Some(mlps);
                sweep = true;
            }
            "--sweep-vault" => {
                let names: Vec<String> = parse_list("--sweep-vault", args.next());
                let vaults: Vec<VaultDesign> = names
                    .iter()
                    .map(|n| {
                        VaultDesign::parse(n)
                            .unwrap_or_else(|| fail(&format!("unknown vault design '{n}'")))
                    })
                    .collect();
                for v in &vaults {
                    if *v != VaultDesign::Table2 && v.design_point().is_none() {
                        fail(&format!(
                            "vault sweep has no feasible '{}' design",
                            v.name()
                        ));
                    }
                }
                sweep_vaults = Some(vaults);
                sweep = true;
            }
            "--threads" => {
                let t: usize = parse("--threads", args.next());
                if t == 0 {
                    fail("--threads must be at least 1");
                }
                threads = Some(t);
            }
            "--json" => {
                let p: String = parse("--json", args.next());
                json_path = Some(PathBuf::from(p));
            }
            "--list" => {
                for w in WorkloadSpec::all() {
                    println!(
                        "{:<18} {:>6} refs/core  shared {:>4.0}%  writes {:>4.0}%  zipf {:.1}",
                        w.name,
                        w.refs_per_core,
                        100.0 * w.shared_fraction,
                        100.0 * w.write_fraction,
                        w.zipf_theta
                    );
                }
                return;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown option '{other}'")),
        }
    }
    cfg.validate();
    if specs.is_empty() {
        fail("no workloads selected");
    }
    if let Some(refs) = refs_override {
        for s in &mut specs {
            s.refs_per_core = refs;
        }
    }

    let spec = SweepSpec {
        base: cfg,
        cores: sweep_cores.unwrap_or_else(|| vec![cfg.cores]),
        scales: sweep_scales.unwrap_or_else(|| vec![cfg.scale]),
        mlps: sweep_mlps.unwrap_or_else(|| vec![cfg.mlp]),
        vaults: sweep_vaults.unwrap_or_else(|| vec![vault]),
        workloads: specs,
        seed,
    };

    let records = if sweep {
        run_sweep_mode(&spec, threads.unwrap_or_else(default_threads))
    } else {
        run_classic_mode(&spec, threads.unwrap_or(1))
    };

    if let Some(path) = json_path {
        if let Err(e) = bench::write_json_file(&path, &records, seed) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {} points to {}", records.len(), path.display());
    }
}

/// The classic Fig. 11 comparison: the degenerate sweep, one point per
/// workload, printed as the detail table + normalized summary.
fn run_classic_mode(spec: &SweepSpec, threads: usize) -> Vec<bench::BenchRecord> {
    // Classic mode has exactly one vault design; apply it so the banner
    // reports the capacity the points actually simulate.
    let cfg = spec
        .vaults
        .first()
        .copied()
        .map_or(spec.base, |v| v.apply(spec.base));
    println!(
        "simulating {} cores on a {}x{} mesh (scale 1/{}, vault {}, LLC {}, seed {})",
        cfg.cores,
        cfg.mesh_width,
        cfg.mesh_height,
        cfg.scale,
        cfg.vault_capacity,
        cfg.llc_capacity,
        spec.seed
    );
    println!();
    let records = bench::run_sweep(spec, threads);
    let results: Vec<Comparison> = records.iter().map(|r| r.cmp.clone()).collect();
    print_comparison(&results);
    records
}

/// Sweep mode: one compact row per point plus the geomean speedup.
fn run_sweep_mode(spec: &SweepSpec, threads: usize) -> Vec<bench::BenchRecord> {
    let n_points = spec.points().len();
    let threads = threads.clamp(1, n_points.max(1));
    println!(
        "sweep: {n_points} points ({} workloads x {} cores x {} scales x {} mlp x {} vaults) on {threads} threads",
        spec.workloads.len(),
        spec.cores.len(),
        spec.scales.len(),
        spec.mlps.len(),
        spec.vaults.len(),
    );
    let t0 = Instant::now();
    let records = bench::run_sweep(spec, threads);
    let wall = t0.elapsed().as_secs_f64();

    let header = format!(
        "{:<18} {:>5} {:>5} {:>4} {:>9} {:>9} {:>9} {:>8} {:>9}",
        "workload", "cores", "scale", "mlp", "vault", "SILO-IPC", "base-IPC", "speedup", "wall(ms)"
    );
    println!("{header}");
    println!("{}", "-".repeat(header.chars().count()));
    let mut speedups = Vec::with_capacity(records.len());
    for r in &records {
        speedups.push(r.cmp.speedup());
        println!(
            "{:<18} {:>5} {:>5} {:>4} {:>9} {:>9.3} {:>9.3} {:>7.2}x {:>9.1}",
            r.point.workload.name,
            r.point.cores,
            r.point.scale,
            r.point.mlp,
            r.point.vault.name(),
            r.cmp.silo.ipc(),
            r.cmp.baseline.ipc(),
            r.cmp.speedup(),
            r.silo_wall_ms + r.baseline_wall_ms,
        );
    }
    println!();
    println!(
        "geomean speedup {:.2}x over {n_points} points in {wall:.2} s",
        silo_types::geomean(&speedups)
    );
    records
}
