//! Golden-output regression gate for hot-path changes.
//!
//! `golden/bench_pinned.json` is a full `silo-bench/v1` document
//! captured at a pinned seed (every builtin system × three workload
//! regimes, warmup + epoch telemetry on). Perf work on the inner loop —
//! dispatch, hashing, MSHR bookkeeping, telemetry hoisting — must leave
//! the simulated output *byte-identical*; only host wall-clock may
//! drift. This test re-runs the pinned configuration through the public
//! builder API, strips every `wall_ms` field from both documents, and
//! compares the canonical renders byte for byte.
//!
//! To regenerate after an intentional simulated-stats change (never for
//! a perf-only PR):
//!
//! ```text
//! cargo run --release -- \
//!   --systems SILO,baseline,silo-no-forward,baseline-2x \
//!   --workloads zipf-shared,uniform-private,pointer-chase \
//!   --cores 4 --refs 2000 --seed 12345 --warmup 1024 --epoch 1500 \
//!   --threads 1 --json crates/sim/tests/golden/bench_pinned.json
//! ```

use silo_sim::{bench, Json, Simulation};

/// Drops every `wall_ms` field, recursively: the one host-dependent
/// part of the schema.
fn strip_wall_ms(v: Json) -> Json {
    match v {
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| k != "wall_ms")
                .map(|(k, v)| (k, strip_wall_ms(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.into_iter().map(strip_wall_ms).collect()),
        other => other,
    }
}

#[test]
fn pinned_seed_bench_json_is_byte_identical_to_the_committed_fixture() {
    let fixture_text = include_str!("golden/bench_pinned.json");
    let fixture = Json::parse(fixture_text).expect("fixture parses");

    let sim = Simulation::builder()
        .systems(["SILO", "baseline", "silo-no-forward", "baseline-2x"])
        .workloads(["zipf-shared", "uniform-private", "pointer-chase"])
        .cores([4])
        .refs_per_core(2000)
        .seed(12345)
        .warmup_refs(1024)
        .epoch_refs(1500)
        .threads(1)
        .build()
        .expect("pinned config is valid");
    let records = sim.run();
    let fresh = bench::sweep_json(&records, 12345);

    let want = strip_wall_ms(fixture).to_string();
    let got = strip_wall_ms(fresh).to_string();
    if want != got {
        // Locate the first divergence so a regression names the byte,
        // not just "documents differ".
        let at = want
            .bytes()
            .zip(got.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| want.len().min(got.len()));
        let lo = at.saturating_sub(80);
        panic!(
            "simulated output drifted from the golden fixture at byte {at}:\n  \
             fixture: …{}…\n  fresh:   …{}…\n\
             hot-path changes must be bit-identical (only wall_ms may differ)",
            &want[lo..(at + 80).min(want.len())],
            &got[lo..(at + 80).min(got.len())],
        );
    }
}
