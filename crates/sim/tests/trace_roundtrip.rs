//! Trace-subsystem integration tests: the lazy synthetic generator must
//! match materialized generation bit for bit, a capture/replay round
//! trip must reproduce `RunStats` and `silo-bench/v1` JSON rows exactly
//! (per system, across sweep threads), and corrupt or mismatched trace
//! files must surface as typed `ConfigError`s at build time.

use silo_sim::{bench, ConfigError, Simulation, SyntheticTrace, TraceSource, WorkloadSpec};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("silo-trace-it-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn lazy_synthetic_streams_match_materialized_generation_bit_for_bit() {
    for preset in WorkloadSpec::all() {
        let spec = WorkloadSpec {
            refs_per_core: 400,
            ..preset
        };
        let traces = spec.generate(3, 64, 7);
        let mut stream = SyntheticTrace::new(&spec, 3, 64, 7);
        assert_eq!(stream.len_hint(), Some(3 * 400));
        for i in 0..400 {
            for (core, trace) in traces.iter().enumerate() {
                assert_eq!(
                    stream.next(core),
                    Some(trace[i]),
                    "{}: core {core} ref {i} diverged",
                    spec.name
                );
            }
        }
        for core in 0..3 {
            assert_eq!(stream.next(core), None, "{}: core {core}", spec.name);
        }
    }
}

#[test]
fn every_builtin_workload_replays_with_bit_identical_results() {
    let dir = temp_dir("roundtrip");
    let workload_names: Vec<String> = WorkloadSpec::all().iter().map(|w| w.name.clone()).collect();
    let systems = ["SILO", "baseline", "silo-no-forward", "baseline-2x"];
    let direct = Simulation::builder()
        .systems(systems)
        .workloads(workload_names.clone())
        .cores([2])
        .refs_per_core(600)
        .seed(5)
        .threads(3)
        .warmup_refs(200)
        .epoch_refs(500)
        .build()
        .expect("direct sim builds");
    let paths = bench::record_traces(direct.spec(), &dir).expect("capture succeeds");
    assert_eq!(
        paths.len(),
        workload_names.len(),
        "one capture per workload"
    );
    for p in &paths {
        assert!(
            p.extension().and_then(|e| e.to_str()) == Some("silotrace"),
            "{p:?}"
        );
    }
    let mut direct_records = direct.run();

    let replay_specs: Vec<String> = paths
        .iter()
        .map(|p| format!("trace:file={}", p.display()))
        .collect();
    let replay = Simulation::builder()
        .systems(systems)
        .workloads(replay_specs)
        .cores([2])
        .seed(5)
        .threads(3)
        .warmup_refs(200)
        .epoch_refs(500)
        .build()
        .expect("replay sim builds");
    // The builder resolves replay names from the capture headers, so
    // report rows keep the original workload names.
    let resolved: Vec<String> = replay
        .spec()
        .workloads
        .iter()
        .map(|w| w.name.clone())
        .collect();
    assert_eq!(resolved, workload_names);
    let mut replay_records = replay.run();

    assert_eq!(direct_records.len(), replay_records.len());
    for (a, b) in direct_records.iter().zip(&replay_records) {
        assert_eq!(a.runs.len(), b.runs.len());
        for (x, y) in a.runs.iter().zip(&b.runs) {
            // RunStats compares every simulated field.
            assert_eq!(
                x.stats, y.stats,
                "{} {} replay diverged",
                a.point.workload.name, x.stats.system
            );
            assert_eq!(
                x.telemetry.timeline.rows(),
                y.telemetry.timeline.rows(),
                "{} {} timeline diverged",
                a.point.workload.name,
                x.stats.system
            );
        }
    }

    // The full silo-bench/v1 documents are byte-identical once the
    // host-dependent wall clocks are held constant.
    for records in [&mut direct_records, &mut replay_records] {
        for r in records.iter_mut() {
            for run in &mut r.runs {
                run.wall_ms = 0.0;
            }
        }
    }
    let a = bench::sweep_json(&direct_records, 5).to_string();
    let b = bench::sweep_json(&replay_records, 5).to_string();
    assert_eq!(a, b, "JSON documents diverged");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_trace_files_are_rejected_at_build_time() {
    let dir = temp_dir("corrupt");
    let sim = Simulation::builder()
        .workloads(["uniform-private"])
        .cores([2])
        .refs_per_core(200)
        .build()
        .expect("builds");
    let path = bench::record_traces(sim.spec(), &dir).expect("capture")[0].clone();
    let valid = std::fs::read(&path).expect("readable");

    let build_with = |p: &PathBuf| {
        Simulation::builder()
            .workloads([format!("trace:file={}", p.display())])
            .cores([2])
            .build()
    };

    // The pristine file builds.
    build_with(&path).expect("valid capture builds");

    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("missing magic", b"not a trace at all".to_vec()),
        ("truncated header", valid[..10].to_vec()),
        ("truncated records", valid[..valid.len() / 2].to_vec()),
        ("truncated footer", valid[..valid.len() - 3].to_vec()),
        ("flipped record byte", {
            let mut v = valid.clone();
            let mid = v.len() / 2;
            v[mid] ^= 0x20;
            v
        }),
        ("flipped checksum byte", {
            let mut v = valid.clone();
            let last = v.len() - 1;
            v[last] ^= 0x01;
            v
        }),
    ];
    for (what, bytes) in cases {
        let p = dir.join("bad.silotrace");
        std::fs::write(&p, bytes).expect("write corrupt file");
        let err = build_with(&p).expect_err(what);
        assert!(
            matches!(err, ConfigError::Trace { .. }),
            "{what}: wanted ConfigError::Trace, got {err:?}"
        );
    }

    // A missing file is a trace error too, reported with its path.
    let ghost = dir.join("ghost.silotrace");
    match build_with(&ghost).expect_err("missing file") {
        ConfigError::Trace { path, .. } => assert!(path.contains("ghost")),
        other => panic!("wanted ConfigError::Trace, got {other:?}"),
    }

    // Paths that bypass the builder hit the same validation:
    // WorkloadSpec::source verifies before streaming, so a truncated
    // file cannot silently truncate a run_silo/run_system replay.
    let p = dir.join("bad.silotrace");
    std::fs::write(&p, &valid[..valid.len() / 2]).expect("write corrupt file");
    let w = WorkloadSpec::parse(&format!("trace:file={}", p.display())).expect("parses");
    assert!(
        matches!(w.source(2, 64, 0), Err(ConfigError::Trace { .. })),
        "source() must reject unverifiable files"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warmup_check_uses_exact_record_counts_for_uneven_traces() {
    // Per-core streams of 100 and 50 records: refs_per_core resolves to
    // the longest stream (100), but the warmup check must use the exact
    // 150-record total — a 160-ref warmup swallows everything and has
    // to be rejected, even though 100 x 2 cores would suggest headroom.
    use silo_types::{LineAddr, MemRef};
    let dir = temp_dir("uneven");
    let path = dir.join("uneven.silotrace");
    let header = silo_sim::TraceHeader {
        cores: 2,
        refs_per_core: 100,
        seed: 0,
        name: "uneven".into(),
        provenance: "test".into(),
    };
    let traces: Vec<Vec<MemRef>> = vec![
        (0..100).map(|i| MemRef::read(LineAddr::new(i))).collect(),
        (0..50).map(|i| MemRef::read(LineAddr::new(i))).collect(),
    ];
    silo_trace::write_traces(&path, &header, &traces).expect("write");
    let build_with_warmup = |warmup: u64| {
        Simulation::builder()
            .workloads([format!("trace:file={}", path.display())])
            .cores([2])
            .warmup_refs(warmup)
            .build()
    };
    let err = build_with_warmup(160).expect_err("warmup swallows all 150 refs");
    match err {
        ConfigError::BadValue { what, reason, .. } => {
            assert_eq!(what, "warmup");
            assert!(reason.contains("150"), "exact total in message: {reason}");
        }
        other => panic!("wanted ConfigError::BadValue, got {other:?}"),
    }
    build_with_warmup(149).expect("one measurable ref remains");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_capture_replays_alongside_its_source_workload() {
    // The natural one-run validation of record/replay determinism:
    // select the synthetic workload AND its own capture. Uniqueness is
    // judged on the specs as typed, so this must build, and the two
    // rows must carry bit-identical stats under the shared name.
    let dir = temp_dir("alongside");
    let seeded = Simulation::builder()
        .workloads(["shared-mix"])
        .cores([2])
        .refs_per_core(300)
        .seed(21)
        .build()
        .expect("builds");
    let path = bench::record_traces(seeded.spec(), &dir).expect("capture")[0].clone();

    let both = Simulation::builder()
        .workloads([
            "shared-mix".to_string(),
            format!("trace:file={}", path.display()),
        ])
        .cores([2])
        .refs_per_core(300)
        .seed(21)
        .build()
        .expect("replay alongside its source must not be a duplicate");
    let records = both.run_sequential();
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].point.workload.name, "shared-mix");
    assert_eq!(records[1].point.workload.name, "shared-mix");
    for (a, b) in records[0].runs.iter().zip(&records[1].runs) {
        assert_eq!(a.stats, b.stats, "replay diverged from its source");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replays_reject_core_count_mismatches_and_empty_traces() {
    let dir = temp_dir("mismatch");
    let sim = Simulation::builder()
        .workloads(["pointer-chase"])
        .cores([2])
        .refs_per_core(150)
        .build()
        .expect("builds");
    let path = bench::record_traces(sim.spec(), &dir).expect("capture")[0].clone();

    // Recorded with 2 cores; replaying at 4 must fail with a message
    // naming both counts.
    let err = Simulation::builder()
        .workloads([format!("trace:file={}", path.display())])
        .cores([4])
        .build()
        .expect_err("core mismatch");
    match err {
        ConfigError::Trace { message, .. } => {
            assert!(message.contains('2') && message.contains('4'), "{message}");
        }
        other => panic!("wanted ConfigError::Trace, got {other:?}"),
    }

    // A zero-record capture resolves to zero references: rejected so
    // IPC and speedups cannot go undefined (NaN regression guard).
    let empty = dir.join("empty.silotrace");
    let header = silo_sim::TraceHeader {
        cores: 2,
        refs_per_core: 0,
        seed: 0,
        name: "empty".into(),
        provenance: "test".into(),
    };
    silo_trace::write_traces(&empty, &header, &[Vec::new(), Vec::new()]).expect("write empty");
    let err = Simulation::builder()
        .workloads([format!("trace:file={}", empty.display())])
        .cores([2])
        .build()
        .expect_err("empty trace");
    match err {
        ConfigError::BadValue { what, reason, .. } => {
            assert!(what.contains("empty"), "names the workload: {what}");
            assert!(reason.contains("zero references"), "{reason}");
        }
        other => panic!("wanted ConfigError::BadValue, got {other:?}"),
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_spec_grammar_is_validated_without_io() {
    for bad in [
        "trace",
        "trace:",
        "trace:file=",
        "trace:bogus=1",
        "trace:file",
    ] {
        assert!(
            matches!(
                WorkloadSpec::parse(bad),
                Err(ConfigError::BadWorkloadSpec { .. })
            ),
            "'{bad}' must be rejected"
        );
    }
    let w = WorkloadSpec::parse("trace:file=some/dir/x.silotrace").expect("parses without IO");
    assert_eq!(
        w.trace_file.as_deref(),
        Some(std::path::Path::new("some/dir/x.silotrace"))
    );
    assert_eq!(w.name, "trace:file=some/dir/x.silotrace");
}

#[test]
fn record_traces_skips_replay_workloads() {
    // Capture a trace, then build a mixed direct+replay selection:
    // recording that run must only capture the generator-backed
    // workload, not re-capture the replay.
    let dir = temp_dir("skip");
    let seeded = Simulation::builder()
        .workloads(["code-heavy"])
        .cores([2])
        .refs_per_core(120)
        .build()
        .expect("builds");
    let captured = bench::record_traces(seeded.spec(), &dir).expect("capture")[0].clone();

    let mixed = Simulation::builder()
        .workloads([
            "uniform-private".to_string(),
            format!("trace:file={}", captured.display()),
        ])
        .cores([2])
        .refs_per_core(120)
        .build()
        .expect("mixed builds");
    let out = temp_dir("skip-out");
    let written = bench::record_traces(mixed.spec(), &out).expect("capture");
    let names: Vec<String> = written
        .iter()
        .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
        .collect();
    assert_eq!(names, ["uniform-private-c2-s64.silotrace"]);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&out);
}
