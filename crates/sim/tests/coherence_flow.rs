//! Cross-crate integration tests: protocol sequences through the real
//! engines, consistency between the two systems, and a small end-to-end
//! timing run.

use silo_coherence::{
    PrivateMoesi, PrivateMoesiConfig, ServedBy, SharedMesi, SharedMesiConfig, State,
};
use silo_sim::{run_baseline, run_silo, Rng, SystemConfig, WorkloadSpec};
use silo_types::{LineAddr, MemRef};

fn silo_engine(cores: usize) -> PrivateMoesi {
    PrivateMoesi::new(
        cores,
        &PrivateMoesiConfig {
            scale: 64,
            ..PrivateMoesiConfig::default()
        },
    )
}

fn baseline_engine(cores: usize) -> SharedMesi {
    SharedMesi::new(
        cores,
        &SharedMesiConfig {
            scale: 64,
            ..SharedMesiConfig::default()
        },
    )
}

/// The ISSUE's canonical sequence: a read-share phase followed by a
/// write-invalidate, with every step's `ServedBy` classification checked.
#[test]
fn read_share_then_write_invalidate_classifications() {
    let mut p = silo_engine(4);
    let line = LineAddr::new(0xabcd);

    // Cold read: memory, installed E in core 0's vault.
    let r = p.access(0, MemRef::read(line));
    assert_eq!(r.served_by(), ServedBy::Memory);

    // Read-share: cores 1 and 2 pull the line from core 0's vault.
    let r = p.access(1, MemRef::read(line));
    assert_eq!(r.served_by(), ServedBy::RemoteVault);
    let r = p.access(2, MemRef::read(line));
    assert_eq!(r.served_by(), ServedBy::RemoteVault);

    // Re-reads are SRAM hits.
    let r = p.access(1, MemRef::read(line));
    assert_eq!(r.served_by(), ServedBy::L1);

    // Write-invalidate: core 3 takes M, everyone else drops to I.
    let r = p.access(3, MemRef::write(line));
    assert_eq!(r.served_by(), ServedBy::RemoteVault);
    for core in 0..3 {
        assert_eq!(p.directory().state_of(line, core), State::I);
    }
    assert_eq!(p.directory().state_of(line, 3), State::M);

    // The invalidated sharers must re-fetch — from core 3's dirty copy,
    // which moves to O without a memory writeback.
    let r = p.access(0, MemRef::read(line));
    assert_eq!(r.served_by(), ServedBy::RemoteVault);
    assert_eq!(p.directory().state_of(line, 3), State::O);

    // Core 3 still answers from its SRAM afterwards.
    let r = p.access(3, MemRef::read(line));
    assert_eq!(r.served_by(), ServedBy::L1);

    p.check().expect("MOESI invariants hold");
}

/// The same trace through both engines produces identical `llc_access`
/// counts. The SRAM hierarchies are configured identically, so the
/// engines must agree on which references escape the SRAM levels —
/// provided the trace avoids the two *legitimate* divergence sources
/// between the systems: direct-mapped vault conflict evictions (which
/// recall SRAM lines in SILO only; the footprint here stays under the
/// vault-set count) and writes to L1-evicted shared lines (SILO's
/// vault-level directory still sees sharers where the baseline's
/// L1-level directory re-grants E, so one system upgrades and the other
/// doesn't). The shared slice is read-only, matching the paper's
/// read-mostly sharing profile (Fig. 4).
#[test]
fn both_engines_agree_on_llc_access_counts() {
    let cores = 4;
    let mut moesi = silo_engine(cores);
    let mut mesi = baseline_engine(cores);

    // Lines 0..2048 all map to distinct sets of the 65536-set scaled
    // vault: no vault evictions, while the 16-line scaled L1s thrash
    // constantly.
    let mut rng = Rng::new(0xfeed);
    let mut moesi_llc = 0u64;
    let mut mesi_llc = 0u64;
    let mut checked = 0u64;
    for _ in 0..12_000 {
        let core = (rng.below(cores as u64)) as usize;
        let (line, shared) = if rng.chance(0.3) {
            (LineAddr::new(1600 + rng.below(448)), true) // shared slice
        } else {
            (LineAddr::new(core as u64 * 400 + rng.below(400)), false)
        };
        let mr = if !shared && rng.chance(0.2) {
            MemRef::write(line)
        } else {
            MemRef::read(line)
        };
        let a = moesi.access(core, mr);
        let b = mesi.access(core, mr);
        if a.llc_access {
            moesi_llc += 1;
        }
        if b.llc_access {
            mesi_llc += 1;
        }
        checked += 1;
        assert_eq!(
            a.llc_access,
            b.llc_access,
            "engines diverged at access {checked} ({line}, write={})",
            mr.kind.is_write()
        );
    }
    assert!(moesi_llc > 1_000, "trace must stress the LLC level");
    assert_eq!(moesi_llc, mesi_llc);
    moesi.check().expect("MOESI invariants hold");
    mesi.check().expect("MESI invariants hold");
}

/// Full-stack acceptance run: a 16-core mesh, both systems, three
/// workloads; SILO serves a nonzero fraction from the local vault, wins
/// on throughput, and the whole pipeline is deterministic.
#[test]
fn end_to_end_sixteen_core_comparison() {
    let cfg = SystemConfig::paper_16core();
    for spec in [
        WorkloadSpec::uniform_private(),
        WorkloadSpec::zipf_shared(),
        WorkloadSpec::shared_mix(),
    ] {
        let spec = WorkloadSpec {
            refs_per_core: 2_000,
            ..spec
        };
        let silo = run_silo(&cfg, &spec, 42);
        let base = run_baseline(&cfg, &spec, 42);
        assert!(
            silo.served.fraction(ServedBy::LocalVault) > 0.0,
            "{}: SILO must serve accesses from the local vault",
            spec.name
        );
        // Vault conflict evictions may recall a few SRAM lines in SILO,
        // so the counts match only approximately on random workloads.
        let diff = silo.llc_accesses.abs_diff(base.llc_accesses) as f64;
        assert!(
            diff / base.llc_accesses as f64 <= 0.01,
            "{}: LLC access counts diverged: {} vs {}",
            spec.name,
            silo.llc_accesses,
            base.llc_accesses
        );
        assert!(
            silo.ipc() > base.ipc(),
            "{}: SILO {} <= baseline {}",
            spec.name,
            silo.ipc(),
            base.ipc()
        );

        let again = run_silo(&cfg, &spec, 42);
        assert_eq!(
            silo.cycles, again.cycles,
            "{}: nondeterministic run",
            spec.name
        );
    }
}
