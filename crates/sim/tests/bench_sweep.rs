//! Sweep-harness integration tests: the parallel runner must be
//! bit-identical to sequential execution, and the emitted JSON must
//! parse and round-trip the key fields (including the legacy
//! `silo`/`baseline` point objects and the N-way `systems` array).

use silo_sim::bench::{run_sweep, run_sweep_sequential, sweep_json, SweepSpec, SCHEMA};
use silo_sim::{Json, MeterConfig, SystemConfig, SystemRegistry, VaultDesign, WorkloadSpec};

fn sweep_spec() -> SweepSpec {
    let shrink = |w: WorkloadSpec| WorkloadSpec {
        refs_per_core: 1_500,
        ..w
    };
    SweepSpec {
        base: SystemConfig::paper_16core(),
        systems: SystemRegistry::builtin().classic_pair(),
        cores: vec![2, 4],
        scales: vec![64, 128],
        mlps: vec![4],
        vaults: vec![VaultDesign::Table2],
        workloads: vec![
            shrink(WorkloadSpec::uniform_private()),
            shrink(WorkloadSpec::producer_consumer()),
        ],
        seed: 7,
        meter: MeterConfig::default(),
        check_every: None,
        profile: false,
    }
}

#[test]
fn parallel_sweep_is_bit_identical_to_sequential() {
    let spec = sweep_spec();
    let seq = run_sweep_sequential(&spec);
    let par = run_sweep(&spec, 4);
    assert_eq!(seq.len(), 8, "2 workloads x 2 cores x 2 scales");
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.point.workload.name, b.point.workload.name);
        assert_eq!(a.point.cores, b.point.cores);
        assert_eq!(a.point.scale, b.point.scale);
        assert_eq!(a.runs.len(), b.runs.len());
        for (x, y) in a.runs.iter().zip(&b.runs) {
            // RunStats compares every simulated field; only wall_ms may
            // differ between the parallel and sequential runs.
            assert_eq!(
                x.stats, y.stats,
                "{} {} diverged",
                a.point.workload.name, x.stats.system
            );
        }
    }
}

#[test]
fn oversubscribed_thread_counts_still_match() {
    // More threads than points: workers clamp to the point count and
    // the results stay in point order.
    let mut spec = sweep_spec();
    spec.cores = vec![2];
    spec.scales = vec![64];
    let seq = run_sweep_sequential(&spec);
    let par = run_sweep(&spec, 64);
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.stats.cycles, y.stats.cycles);
        }
    }
}

#[test]
fn emitted_json_parses_and_round_trips_key_fields() {
    let spec = sweep_spec();
    let records = run_sweep(&spec, 4);
    let text = sweep_json(&records, spec.seed).to_string();
    let doc = Json::parse(&text).expect("bench JSON must parse");

    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
    assert_eq!(doc.get("seed").and_then(Json::as_i64), Some(7));
    assert!(
        doc.get("geomean_speedup")
            .and_then(Json::as_f64)
            .expect("geomean")
            > 0.0
    );
    let systems = doc
        .get("systems")
        .and_then(Json::as_arr)
        .expect("top-level systems list");
    assert_eq!(systems.len(), 2);
    assert_eq!(systems[0].as_str(), Some("SILO"));

    let points = doc
        .get("points")
        .and_then(Json::as_arr)
        .expect("points array");
    assert_eq!(points.len(), records.len());
    for (p, r) in points.iter().zip(&records) {
        assert_eq!(
            p.get("workload").and_then(Json::as_str),
            Some(r.point.workload.name.as_str())
        );
        assert_eq!(
            p.get("cores").and_then(Json::as_i64),
            Some(r.point.cores as i64)
        );
        assert_eq!(
            p.get("vault_design").and_then(Json::as_str),
            Some(r.point.vault.name())
        );
        let speedup = p.get("speedup").and_then(Json::as_f64).expect("speedup");
        assert!((speedup - r.speedup().expect("pair present")).abs() < 1e-12);
        let listed = p
            .get("systems")
            .and_then(Json::as_arr)
            .expect("per-point systems array");
        assert_eq!(listed.len(), r.runs.len());
        for (key, run) in [
            ("silo", r.run("SILO").expect("silo ran")),
            ("baseline", r.run("baseline").expect("baseline ran")),
        ] {
            let stats = &run.stats;
            let sys = p.get(key).expect("legacy system object");
            assert_eq!(
                sys.get("system").and_then(Json::as_str),
                Some(stats.system.as_str())
            );
            assert_eq!(
                sys.get("cycles").and_then(Json::as_i64),
                Some(stats.cycles.as_u64() as i64),
                "{key} cycles must round-trip exactly"
            );
            assert_eq!(
                sys.get("instructions").and_then(Json::as_i64),
                Some(stats.instructions as i64)
            );
            assert_eq!(
                sys.get("llc_accesses").and_then(Json::as_i64),
                Some(stats.llc_accesses as i64)
            );
            let ipc = sys.get("ipc").and_then(Json::as_f64).expect("ipc");
            assert!((ipc - stats.ipc()).abs() < 1e-12);
            let served = sys.get("served").expect("served fractions");
            let mut total = 0.0;
            for level in [
                "l1",
                "l2",
                "local_vault",
                "remote_vault",
                "shared_llc",
                "memory",
            ] {
                let f = served.get(level).and_then(Json::as_f64).expect("fraction");
                assert!((0.0..=1.0).contains(&f), "{level} fraction {f}");
                total += f;
            }
            assert!((total - 1.0).abs() < 1e-9, "fractions must sum to 1");
            let lat = sys.get("llc_latency").expect("latency percentiles");
            let p50 = lat.get("p50").and_then(Json::as_i64).expect("p50");
            let p99 = lat.get("p99").and_then(Json::as_i64).expect("p99");
            assert!(p50 <= p99, "percentiles must be monotone");
        }
    }
}

#[test]
fn hit_only_ipc_stays_at_or_below_one_through_the_harness() {
    // Acceptance guard for the cursor fix, end to end: a workload whose
    // private region scales down to a single line is all-SRAM-hits
    // after warmup. One core, so aggregate IPC equals per-core IPC and
    // the base-CPI-1 ceiling applies literally.
    let spec = SweepSpec {
        base: SystemConfig::paper_16core(),
        systems: SystemRegistry::builtin().classic_pair(),
        cores: vec![1],
        scales: vec![64],
        mlps: vec![8],
        vaults: vec![VaultDesign::Table2],
        workloads: vec![WorkloadSpec {
            refs_per_core: 4_000,
            private_lines: 64,
            shared_lines: 64,
            code_lines: 128,
            shared_fraction: 0.0,
            ifetch_fraction: 0.0,
            write_fraction: 0.0,
            dependent_fraction: 0.0,
            ..WorkloadSpec::uniform_private()
        }],
        seed: 3,
        meter: MeterConfig::default(),
        check_every: None,
        profile: false,
    };
    for r in run_sweep(&spec, 2) {
        for run in &r.runs {
            assert!(
                run.stats.ipc() <= 1.0,
                "hit-heavy {} IPC {} above base-CPI ceiling",
                run.stats.system,
                run.stats.ipc()
            );
        }
    }
}
