//! Integration tests for the hot-loop throughput benchmark
//! (`silo_sim::bench::throughput`): the tracked matrix shape, row
//! determinism across worker-thread counts, and the `silo-hotloop/v1`
//! snapshot file round trip that `silo-sim bench --json` relies on.

use silo_sim::bench::throughput::{
    append_snapshot, compare_rows, geomean_refs_per_sec, hotloop_doc, load_snapshots,
    run_throughput, snapshot_json, ThroughputSpec,
};
use silo_sim::bench::SCHEMA_HOTLOOP;
use silo_sim::Json;

/// A fast matrix: the real hot-loop spec truncated to 2 systems × 2
/// workloads on 2 cores with a small reference count.
fn tiny_spec() -> ThroughputSpec {
    let mut spec = ThroughputSpec::hotloop_matrix(300);
    spec.cores = 2;
    spec.systems.truncate(2);
    spec.workloads.truncate(2);
    spec
}

/// A scratch path under the target-owned temp dir; each test uses its
/// own file name so they can run concurrently.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("silo-bench-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(name)
}

#[test]
fn tracked_matrix_is_every_builtin_system_by_three_workloads() {
    let spec = ThroughputSpec::hotloop_matrix(20_000);
    assert_eq!(spec.cores, 8, "the committed trajectory runs 8 cores");
    assert_eq!(
        spec.seed, 42,
        "the committed trajectory is pinned to seed 42"
    );
    assert!(
        spec.systems.len() >= 4,
        "every builtin system is timed, found {}",
        spec.systems.len()
    );
    let workloads: Vec<&str> = spec.workloads.iter().map(|w| w.name.as_str()).collect();
    assert_eq!(
        workloads,
        ["zipf-shared", "uniform-private", "pointer-chase"]
    );
    assert!(spec.workloads.iter().all(|w| w.refs_per_core == 20_000));
}

#[test]
fn rows_are_positive_and_in_matrix_order() {
    let spec = tiny_spec();
    let rows = run_throughput(&spec, 1);
    assert_eq!(rows.len(), spec.systems.len() * spec.workloads.len());
    let mut i = 0;
    for sys in &spec.systems {
        for w in &spec.workloads {
            assert_eq!(rows[i].system, sys.name());
            assert_eq!(rows[i].workload, w.name);
            assert_eq!(rows[i].refs, (spec.cores * spec.refs_per_core) as u64);
            assert!(rows[i].wall_ms >= 0.0);
            assert!(rows[i].refs_per_sec() > 0.0);
            i += 1;
        }
    }
    assert!(geomean_refs_per_sec(&rows) > 0.0);
}

#[test]
fn simulated_fields_do_not_depend_on_worker_threads() {
    let spec = tiny_spec();
    let sequential = run_throughput(&spec, 1);
    let parallel = run_throughput(&spec, 4);
    assert_eq!(sequential.len(), parallel.len());
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s.system, p.system);
        assert_eq!(s.workload, p.workload);
        assert_eq!(s.refs, p.refs, "only wall_ms may vary with the host");
    }
}

#[test]
fn snapshot_document_round_trips_through_the_parser() {
    let spec = tiny_spec();
    let rows = run_throughput(&spec, 2);
    let doc = hotloop_doc(vec![snapshot_json("pr-test", &spec, &rows)]);
    let parsed = Json::parse(&doc.to_string()).expect("emitted JSON parses");
    assert_eq!(
        parsed.get("schema").and_then(Json::as_str),
        Some(SCHEMA_HOTLOOP)
    );
    let snaps = parsed
        .get("snapshots")
        .and_then(Json::as_arr)
        .expect("snapshots array");
    assert_eq!(snaps.len(), 1);
    assert_eq!(
        snaps[0].get("label").and_then(Json::as_str),
        Some("pr-test")
    );
    assert_eq!(snaps[0].get("cores").and_then(Json::as_u64), Some(2));
    // Self-comparison against the snapshot we just emitted is exactly
    // 1.0x on every row.
    let (deltas, geo) = compare_rows(&rows, &snaps[0]);
    assert_eq!(deltas.len(), rows.len());
    for d in &deltas {
        assert!(!d.system.is_empty() && !d.workload.is_empty());
        assert!(d.now > 0.0 && d.then > 0.0);
        assert!((d.ratio - 1.0).abs() < 1e-9);
    }
    assert!((geo.expect("all rows matched") - 1.0).abs() < 1e-9);
}

#[test]
fn append_snapshot_grows_a_trajectory_file() {
    let spec = tiny_spec();
    let rows = run_throughput(&spec, 2);
    let path = scratch("trajectory.json");
    let _ = std::fs::remove_file(&path);

    let n = append_snapshot(&path, snapshot_json("first", &spec, &rows)).expect("create file");
    assert_eq!(n, 1);
    let n = append_snapshot(&path, snapshot_json("second", &spec, &rows)).expect("append");
    assert_eq!(n, 2);

    let snaps = load_snapshots(&path).expect("reload trajectory");
    assert_eq!(snaps.len(), 2);
    assert_eq!(snaps[0].get("label").and_then(Json::as_str), Some("first"));
    assert_eq!(snaps[1].get("label").and_then(Json::as_str), Some("second"));
    // The newest snapshot still compares 1.0x against the file copy.
    let (_, geo) = compare_rows(&rows, &snaps[1]);
    assert!((geo.expect("rows matched") - 1.0).abs() < 1e-9);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn load_snapshots_rejects_foreign_schemas() {
    let path = scratch("not-hotloop.json");
    std::fs::write(
        &path,
        "{\"schema\": \"silo-bench/v1\", \"snapshots\": []}\n",
    )
    .expect("write fixture");
    let err = load_snapshots(&path).expect_err("wrong schema must be rejected");
    assert!(err.to_string().contains("silo-hotloop/v1"));
    let _ = std::fs::remove_file(&path);
}
