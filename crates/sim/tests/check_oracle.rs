//! The run-time invariant oracle (`--check N`) must be a pure observer:
//! a checked run emits `silo-bench/v1` JSON byte-identical to the
//! unchecked run (only host wall-clock may differ), and a violation —
//! which would indicate a simulator bug — aborts the run instead of
//! producing corrupt rows.

use silo_sim::{bench, Json, Scenario, Simulation, SimulationBuilder};

/// Drops every `wall_ms` field, recursively: the one host-dependent
/// part of the schema.
fn strip_wall_ms(v: Json) -> Json {
    match v {
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| k != "wall_ms")
                .map(|(k, v)| (k, strip_wall_ms(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.into_iter().map(strip_wall_ms).collect()),
        other => other,
    }
}

fn pinned() -> SimulationBuilder {
    Simulation::builder()
        .systems(["SILO", "baseline", "silo-no-forward", "baseline-2x"])
        .workloads(["zipf-shared", "uniform-private"])
        .cores([4])
        .refs_per_core(1200)
        .seed(7)
        .warmup_refs(256)
        .epoch_refs(400)
        .threads(1)
}

#[test]
fn checked_run_is_bit_identical_to_an_unchecked_run() {
    let plain = pinned().build().expect("valid config").run();
    // A small period so the oracle fires many times per run, including
    // mid-epoch and inside the warmup window.
    let checked = pinned()
        .check_every(64)
        .build()
        .expect("valid config")
        .run();

    let want = strip_wall_ms(bench::sweep_json(&plain, 7)).to_string();
    let got = strip_wall_ms(bench::sweep_json(&checked, 7)).to_string();
    assert_eq!(
        want, got,
        "--check must not perturb simulated output (only wall_ms may differ)"
    );
}

#[test]
fn check_every_survives_into_the_sweep_spec() {
    let sim = pinned().check_every(64).build().expect("valid config");
    assert_eq!(sim.spec().check_every, Some(64));
    let sim = pinned().build().expect("valid config");
    assert_eq!(sim.spec().check_every, None, "oracle is off by default");
}

#[test]
fn check_every_zero_is_rejected() {
    let err = pinned().check_every(0).build().expect_err("0 is invalid");
    assert!(
        err.to_string().contains("at least 1"),
        "unexpected error: {err}"
    );
}

#[test]
fn scenario_check_key_reaches_the_builder() {
    let s = Scenario::parse("check = 128\n").expect("valid scenario");
    assert_eq!(s.check, Some(128));
    let sim = pinned().scenario(&s).build().expect("valid config");
    assert_eq!(sim.spec().check_every, Some(128));
}
