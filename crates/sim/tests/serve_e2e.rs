//! End-to-end tests of `silo-sim serve` through the library API: a real
//! daemon on a loopback port, a raw-socket HTTP client, and the real
//! simulation engine — checking the ISSUE acceptance criteria directly:
//! served documents are bit-identical to a direct CLI run (`wall_ms`
//! aside), resubmissions are served entirely from the cache with zero
//! recompute, concurrent overlapping sweeps share work, and a daemon
//! interrupted mid-sweep resumes from cached rows.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use silo_serve::{start, ServeConfig, ServerHandle};
use silo_sim::bench::{run_sweep_sequential, sweep_json};
use silo_sim::{Json, Scenario, SimJobEngine, Simulation};

const SCENARIO: &str = "\
systems = SILO, baseline
workloads = uniform-private
cores = 2
scale = 64, 128
refs = 400
seed = 9
";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("silo-serve-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn serve(tag: &str) -> ServerHandle<SimJobEngine> {
    start(
        SimJobEngine,
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            cache_dir: temp_dir(tag),
            ..ServeConfig::default()
        },
    )
    .expect("daemon starts")
}

fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("receive");
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in: {text}"));
    let (_, body) = text
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in: {text}"));
    (status, body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(addr, &format!("GET {path} HTTP/1.1\r\n\r\n"))
}

fn submit(addr: SocketAddr, client: &str, scenario: &str) -> (u16, String) {
    request(
        addr,
        &format!(
            "POST /jobs HTTP/1.1\r\nX-Client: {client}\r\nContent-Length: {}\r\n\r\n{scenario}",
            scenario.len()
        ),
    )
}

fn job_id(status: u16, body: &str) -> u64 {
    assert_eq!(status, 202, "{body}");
    body.strip_prefix("{\"job\":")
        .and_then(|rest| rest.split(',').next())
        .and_then(|id| id.parse().ok())
        .unwrap_or_else(|| panic!("no job id in: {body}"))
}

/// What a direct `silo-sim --scenario ... --json` run writes.
fn direct_document(scenario: &str) -> String {
    let scenario = Scenario::parse(scenario).expect("scenario parses");
    let spec = Simulation::builder()
        .scenario(&scenario)
        .build()
        .expect("scenario builds")
        .spec()
        .clone();
    format!("{}\n", sweep_json(&run_sweep_sequential(&spec), spec.seed))
}

/// Drops every `wall_ms` field — the one host-dependent value in a
/// bench document — then re-renders canonically.
fn strip_wall_ms(doc: &str) -> String {
    fn strip(j: &mut Json) {
        match j {
            Json::Obj(fields) => {
                fields.retain(|(k, _)| k != "wall_ms");
                for (_, v) in fields {
                    strip(v);
                }
            }
            Json::Arr(items) => {
                for item in items {
                    strip(item);
                }
            }
            _ => {}
        }
    }
    let mut parsed = Json::parse(doc).expect("document parses");
    strip(&mut parsed);
    parsed.to_string()
}

#[test]
fn served_document_matches_a_direct_run_wall_ms_aside() {
    let server = serve("direct");
    let addr = server.addr();
    let (status, body) = submit(addr, "e2e", SCENARIO);
    let id = job_id(status, &body);
    assert!(body.contains("\"points\":2"), "{body}");
    let (status, served) = get(addr, &format!("/jobs/{id}/result"));
    assert_eq!(status, 200, "{served}");
    assert_eq!(
        strip_wall_ms(&served),
        strip_wall_ms(&direct_document(SCENARIO)),
        "served document must be bit-identical to the direct run, wall_ms aside"
    );
    assert_eq!(server.points_computed(), 2);
    server.shutdown();
    server.join();
}

#[test]
fn resubmission_does_zero_recompute_and_differently_spelled_scenarios_share_rows() {
    let server = serve("cache");
    let addr = server.addr();
    let (status, body) = submit(addr, "first", SCENARIO);
    let (_, first) = get(addr, &format!("/jobs/{}/result", job_id(status, &body)));
    assert_eq!(server.points_computed(), 2);

    // Same sweep, different spelling: reordered keys, extra whitespace.
    // Canonical hashing resolves both to the same point keys.
    let respelled = "\
seed =   9
scale = 64,128
cores = 2

refs = 400
workloads = uniform-private
systems = SILO,baseline
";
    let (status, body) = submit(addr, "second", respelled);
    assert!(body.contains("\"cached\":2"), "{body}");
    let (_, second) = get(addr, &format!("/jobs/{}/result", job_id(status, &body)));
    assert_eq!(first, second, "cache-served document is byte-identical");
    assert_eq!(
        server.points_computed(),
        2,
        "zero recompute on resubmission"
    );
    assert_eq!(server.points_cached(), 2);

    // A half-overlapping sweep computes only its new point.
    let extended = SCENARIO.replace("scale = 64, 128", "scale = 64, 128, 256");
    let (status, body) = submit(addr, "third", &extended);
    assert!(body.contains("\"cached\":2"), "{body}");
    let (status, _) = get(addr, &format!("/jobs/{}/result", job_id(status, &body)));
    assert_eq!(status, 200);
    assert_eq!(server.points_computed(), 3, "only the new point ran");

    server.shutdown();
    server.join();
}

#[test]
fn concurrent_overlapping_clients_get_byte_identical_documents() {
    let server = serve("concurrent");
    let addr = server.addr();
    let docs: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|i| {
                scope.spawn(move || {
                    let (status, body) = submit(addr, &format!("client{i}"), SCENARIO);
                    let (status, doc) =
                        get(addr, &format!("/jobs/{}/result", job_id(status, &body)));
                    assert_eq!(status, 200, "{doc}");
                    doc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    // Shared inflight points and the cache mean every client sees the
    // same bytes — including wall_ms, since each point ran exactly once.
    assert_eq!(docs[0], docs[1]);
    assert_eq!(docs[0], docs[2]);
    assert_eq!(
        server.points_computed(),
        2,
        "overlap computed each point once"
    );
    server.shutdown();
    server.join();
}

#[test]
fn interrupted_sweep_resumes_from_cached_rows() {
    let dir = temp_dir("resume");
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        cache_dir: dir.clone(),
        ..ServeConfig::default()
    };
    // Heavier points so shutdown lands mid-sweep.
    let slow = SCENARIO
        .replace("refs = 400", "refs = 20000")
        .replace("scale = 64, 128", "scale = 64, 128, 256");

    let server = start(SimJobEngine, cfg.clone()).expect("daemon starts");
    let (status, body) = submit(server.addr(), "e2e", &slow);
    job_id(status, &body);
    while server.points_computed() == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    server.shutdown();
    server.join();

    let resumed = start(
        SimJobEngine,
        ServeConfig {
            resume: true,
            ..cfg
        },
    )
    .expect("daemon resumes");
    let interrupted = std::fs::read_dir(dir.join("queue")).is_ok_and(|mut d| d.next().is_none());
    let id = if interrupted {
        // The journal was replayed at startup as job 1 (or the first
        // run finished everything and left nothing to resume — the
        // resubmission below then completes from the cache either way).
        1
    } else {
        let (status, body) = submit(resumed.addr(), "e2e", &slow);
        job_id(status, &body)
    };
    let (status, served) = get(resumed.addr(), &format!("/jobs/{id}/result"));
    let served = if status == 404 {
        // Nothing was journalled because the first daemon finished the
        // whole sweep; a resubmission must then be fully cache-served.
        let (status, body) = submit(resumed.addr(), "e2e", &slow);
        assert!(body.contains("\"cached\":3"), "{body}");
        let (status, served) = get(
            resumed.addr(),
            &format!("/jobs/{}/result", job_id(status, &body)),
        );
        assert_eq!(status, 200, "{served}");
        served
    } else {
        assert_eq!(status, 200, "{served}");
        served
    };
    assert_eq!(
        strip_wall_ms(&served),
        strip_wall_ms(&direct_document(&slow)),
        "resumed document must match a direct run, wall_ms aside"
    );
    // At least one point was computed (and cached) before the shutdown,
    // so the resumed daemon cannot have recomputed the whole sweep.
    assert!(
        resumed.points_computed() < 3,
        "resume must reuse cached rows (recomputed {})",
        resumed.points_computed()
    );
    resumed.shutdown();
    resumed.join();
}
