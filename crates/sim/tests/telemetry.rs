//! Telemetry-subsystem integration tests: warmup-window semantics on
//! the default report path, timeline determinism under the parallel
//! sweep, and epoch-boundary accounting through the full harness.

use silo_coherence::ServedBy;
use silo_sim::{timeline_csv, Json, Simulation};
use silo_telemetry::ServiceLevel;

/// A small zipf comparison; `warmup` is in total references across all
/// cores (4 cores x 2000 refs = 8000 total).
fn zipf_sim(warmup: u64, epoch: Option<u64>, threads: usize) -> Simulation {
    let mut b = Simulation::builder()
        .systems(["SILO", "baseline"])
        .workloads(["zipf-shared"])
        .cores([4])
        .refs_per_core(2_000)
        .seed(11)
        .threads(threads)
        .warmup_refs(warmup);
    if let Some(e) = epoch {
        b = b.epoch_refs(e);
    }
    b.build().expect("valid builder")
}

#[test]
fn warmup_removes_cold_miss_bias_from_the_report_path() {
    // Satellite regression: with a 10% warmup window the served-by-level
    // fractions must come from post-warmup counters only, so the memory
    // fraction (dominated by cold misses early on) drops, and the
    // geomean speedup moves.
    let cold = zipf_sim(0, None, 1).run_sequential();
    let warm = zipf_sim(800, None, 1).run_sequential();
    for (c, w) in cold[0].runs.iter().zip(&warm[0].runs) {
        let sys = &c.stats.system;
        let cold_mem = c.stats.served.fraction(ServedBy::Memory);
        let warm_mem = w.stats.served.fraction(ServedBy::Memory);
        assert!(
            warm_mem < cold_mem,
            "{sys}: post-warmup memory fraction {warm_mem} not below cold-start {cold_mem}"
        );
        assert!(
            w.stats.served.total() < c.stats.served.total(),
            "{sys}: warmup refs must be excluded from the served counts"
        );
        assert_eq!(
            w.stats.served.total(),
            8_000 - 800,
            "{sys}: measurement window covers exactly the post-warmup refs"
        );
    }
    let cold_speedup = cold[0].speedup().expect("pair present");
    let warm_speedup = warm[0].speedup().expect("pair present");
    assert!(
        (cold_speedup - warm_speedup).abs() > 1e-9,
        "warmup must change the speedup ({cold_speedup} vs {warm_speedup})"
    );
}

#[test]
fn timeline_csv_is_bit_identical_across_sweep_threads() {
    // Satellite: the per-epoch CSV depends only on simulated state, so a
    // parallel sweep renders byte-for-byte the same document as the
    // sequential one.
    let sim = zipf_sim(500, Some(700), 3);
    let par = sim.run();
    let seq = sim.run_sequential();
    let csv_par = timeline_csv(&par);
    let csv_seq = timeline_csv(&seq);
    assert!(!csv_par.is_empty());
    assert_eq!(csv_par, csv_seq, "parallel CSV diverged from sequential");
}

#[test]
fn epochs_flush_the_partial_tail_and_sum_to_total_refs() {
    // 8000 total refs at 3000/epoch: two full epochs plus a 2000-ref
    // partial one, per system.
    let records = zipf_sim(0, Some(3_000), 1).run_sequential();
    for run in &records[0].runs {
        let rows = run.telemetry.timeline.rows();
        assert_eq!(rows.len(), 3, "{}", run.stats.system);
        assert_eq!(rows[0].refs, 3_000);
        assert_eq!(rows[1].refs, 3_000);
        assert_eq!(rows[2].refs, 2_000, "last partial epoch is flushed");
        let total: u64 = rows.iter().map(|r| r.refs).sum();
        assert_eq!(total, 8_000, "epoch ref counts sum to total refs");
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.epoch, i as u64);
            assert!(!row.warmup, "no warmup window configured");
            let served: u64 = row.served.iter().sum();
            assert_eq!(served, row.refs, "every ref is classified");
            assert!(row.ipc() > 0.0);
        }
    }
}

#[test]
fn warmup_epochs_are_flagged_and_measurement_matches_the_tail() {
    // Warmup 4000 at 2000/epoch: the first two epochs are warmup, the
    // last two are measurement; post-warmup instructions reported by the
    // run must equal the instructions of the measurement epochs.
    let records = zipf_sim(4_000, Some(2_000), 1).run_sequential();
    for run in &records[0].runs {
        let rows = run.telemetry.timeline.rows();
        let flags: Vec<bool> = rows.iter().map(|r| r.warmup).collect();
        assert_eq!(flags, [true, true, false, false], "{}", run.stats.system);
        let measured: u64 = rows
            .iter()
            .filter(|r| !r.warmup)
            .map(|r| r.instructions)
            .sum();
        assert_eq!(
            measured, run.stats.instructions,
            "{}: measurement epochs must cover exactly the reported instructions",
            run.stats.system
        );
        // SILO serves from vaults, so its vault occupancy shows up in
        // the timeline; the baseline has no vaults at all.
        let vault_busy: u64 = rows.iter().map(|r| r.vault_busy_cycles).sum();
        if run.stats.system == "SILO" {
            assert!(vault_busy > 0, "SILO vaults must be occupied");
            assert!(rows.iter().any(|r| r.vault_occupancy > 0.0));
        } else {
            assert_eq!(vault_busy, 0, "baseline has no vault banks");
        }
        // Mesh pressure is sampled per epoch and sums to the run total.
        let mesh: u64 = rows
            .iter()
            .filter(|r| !r.warmup)
            .map(|r| r.mesh_messages)
            .sum();
        assert_eq!(mesh, run.stats.mesh_messages);
    }
}

#[test]
fn json_telemetry_counters_track_coherence_events_per_system() {
    let records = zipf_sim(0, Some(4_000), 1).run_sequential();
    let doc = silo_sim::bench::sweep_json(&records, 11);
    let text = doc.to_string();
    let parsed = Json::parse(&text).expect("document parses");
    let tel = parsed.get("points").and_then(Json::as_arr).expect("points")[0]
        .get("telemetry")
        .and_then(Json::as_arr)
        .expect("per-point telemetry");
    let by_system = |name: &str| {
        tel.iter()
            .find(|t| t.get("system").and_then(Json::as_str) == Some(name))
            .expect("system present")
    };
    let silo = by_system("SILO");
    let base = by_system("baseline");
    let counter = |t: &Json, k: &str| {
        t.get("counters")
            .and_then(|c| c.get(k))
            .and_then(Json::as_u64)
            .expect("counter present")
    };
    // zipf-shared writes to shared lines: both protocols invalidate, but
    // only MOESI performs O-state dirty forwards.
    assert!(counter(silo, "invalidations") > 0);
    assert!(counter(silo, "o_state_forwards") > 0);
    assert_eq!(counter(base, "o_state_forwards"), 0);
    assert!(counter(base, "directory_evictions") > 0);
    assert!(counter(silo, "vault_busy_cycles") > 0);
    assert_eq!(counter(base, "vault_busy_cycles"), 0);
    // Every telemetry row carries interpolated latency percentiles.
    for t in tel {
        let lat = t.get("llc_latency").expect("latency object");
        let p50 = lat.get("p50").and_then(Json::as_f64).expect("p50");
        let p99 = lat.get("p99").and_then(Json::as_f64).expect("p99");
        assert!(p50 <= p99 && p50 > 0.0);
    }
}

#[test]
fn warmup_swallowing_every_reference_is_rejected_at_build_time() {
    // Satellite regression: a measurement window that is provably empty
    // (warmup >= total refs) used to run and report zero-IPC rows with
    // NaN-prone speedups; the builder now rejects it with a typed
    // error. 4 cores x 2000 refs = 8000 total.
    fn build_err(warmup: u64) -> silo_sim::ConfigError {
        Simulation::builder()
            .systems(["SILO", "baseline"])
            .workloads(["zipf-shared"])
            .cores([4])
            .refs_per_core(2_000)
            .warmup_refs(warmup)
            .build()
            .expect_err("empty measurement window must not build")
    }
    for warmup in [8_000, 9_000] {
        match build_err(warmup) {
            silo_sim::ConfigError::BadValue { what, reason, .. } => {
                assert_eq!(what, "warmup");
                assert!(reason.contains("8000"), "reason names the total: {reason}");
            }
            other => panic!("wanted BadValue, got {other:?}"),
        }
    }
    // One reference past the window is measurable again.
    zipf_sim(7_999, None, 1);
}

#[test]
fn warmup_larger_than_the_trace_yields_an_empty_window_not_full_run_stats() {
    // Regression at the run-loop level (the builder rejects this
    // configuration up front, but library callers can still drive
    // `run_metered` directly): a warmup window that overshoots the
    // trace must still reset at end of run, so the measurement window
    // is consistently empty — not silently identical to warmup 0.
    use silo_sim::{run_metered, MeterConfig, SystemConfig, SystemRegistry, WorkloadSpec};
    let cfg = SystemConfig::paper_16core().with_cores(4);
    let spec = WorkloadSpec {
        refs_per_core: 500,
        ..WorkloadSpec::zipf_shared()
    };
    let traces = spec.generate(cfg.cores, cfg.scale, 11);
    for warmup in [2_000, 9_000] {
        let mut inst = SystemRegistry::builtin()
            .get("SILO")
            .expect("builtin")
            .instantiate(&cfg);
        let (stats, _) = run_metered(
            &mut inst.engine,
            &mut inst.timing,
            &cfg,
            &spec.name,
            &traces,
            &MeterConfig {
                warmup_refs: warmup,
                epoch_refs: None,
            },
        );
        assert_eq!(stats.instructions, 0, "warmup {warmup}");
        assert_eq!(stats.served.total(), 0);
        assert_eq!(stats.llc_accesses, 0);
        assert_eq!(stats.mesh_messages, 0);
    }
}

#[test]
fn service_level_columns_cover_every_level() {
    // The CSV serializes the per-level counts in ServiceLevel order;
    // keep the header and the enum in sync.
    for level in ServiceLevel::ALL {
        assert!(
            silo_sim::TIMELINE_HEADER.contains(level.name()),
            "header misses column {}",
            level.name()
        );
    }
}
