//! Integration tests for the scenario-first API: registry dyn-dispatch
//! runs must be bit-identical to the old concrete-type paths, scenario
//! files must round-trip to the same results as equivalent builder
//! invocations, and malformed input must produce typed errors, never
//! panics.

use silo_sim::{
    run_baseline, run_silo, run_system, ConfigError, Scenario, Simulation, SystemConfig,
    SystemRegistry, WorkloadSpec,
};
use std::path::Path;

fn quick_cfg() -> SystemConfig {
    SystemConfig::paper_16core().with_cores(4)
}

fn quick_spec() -> WorkloadSpec {
    WorkloadSpec {
        refs_per_core: 2_000,
        ..WorkloadSpec::uniform_private()
    }
}

#[test]
fn dyn_dispatch_runs_are_bit_identical_to_concrete_runs() {
    let cfg = quick_cfg();
    let reg = SystemRegistry::builtin();
    for spec in [
        quick_spec(),
        WorkloadSpec {
            refs_per_core: 2_000,
            ..WorkloadSpec::producer_consumer()
        },
    ] {
        let silo_dyn = run_system(reg.get("SILO").expect("builtin"), &cfg, &spec, 42);
        let silo_concrete = run_silo(&cfg, &spec, 42);
        assert_eq!(
            silo_dyn, silo_concrete,
            "{}: registry SILO diverged from the concrete path",
            spec.name
        );

        let base_dyn = run_system(reg.get("baseline").expect("builtin"), &cfg, &spec, 42);
        let base_concrete = run_baseline(&cfg, &spec, 42);
        assert_eq!(
            base_dyn, base_concrete,
            "{}: registry baseline diverged from the concrete path",
            spec.name
        );
    }
}

#[test]
fn registry_variants_actually_differ_from_their_parents() {
    let cfg = quick_cfg();
    let reg = SystemRegistry::builtin();
    // producer-consumer exchanges dirty lines: the O state matters.
    let spec = WorkloadSpec {
        refs_per_core: 4_000,
        ..WorkloadSpec::producer_consumer()
    };

    let silo = run_system(reg.get("SILO").expect("builtin"), &cfg, &spec, 42);
    let no_fwd = run_system(
        reg.get("silo-no-forward").expect("builtin"),
        &cfg,
        &spec,
        42,
    );
    assert_eq!(no_fwd.system, "silo-no-forward");
    assert_ne!(
        silo.cycles, no_fwd.cycles,
        "disabling O-state forwarding must change timing"
    );
    assert!(
        no_fwd.ipc() <= silo.ipc(),
        "extra writebacks cannot make SILO faster ({} > {})",
        no_fwd.ipc(),
        silo.ipc()
    );

    let base = run_system(reg.get("baseline").expect("builtin"), &cfg, &spec, 42);
    let base2x = run_system(reg.get("baseline-2x").expect("builtin"), &cfg, &spec, 42);
    assert_eq!(base2x.system, "baseline-2x");
    assert!(
        base2x.served.memory.get() < base.served.memory.get(),
        "a doubled LLC must cut memory accesses ({} vs {})",
        base2x.served.memory.get(),
        base.served.memory.get()
    );
}

#[test]
fn scenario_round_trip_matches_equivalent_builder_invocation() {
    let text = "\
        systems = SILO, baseline, baseline-2x\n\
        workloads = uniform-private, zipf:theta=0.9,footprint=4x\n\
        cores = 4\n\
        scale = 64\n\
        mlp = 8\n\
        seed = 11\n\
        refs = 1500\n\
        threads = 2\n";
    let scenario = Scenario::parse(text).expect("valid scenario");
    let from_scenario = Simulation::builder()
        .scenario(&scenario)
        .build()
        .expect("scenario builds")
        .run();
    let from_flags = Simulation::builder()
        .systems(["SILO", "baseline", "baseline-2x"])
        .workloads(["uniform-private", "zipf:theta=0.9,footprint=4x"])
        .cores([4])
        .scales([64])
        .mlps([8])
        .seed(11)
        .refs_per_core(1500)
        .threads(2)
        .build()
        .expect("flags build")
        .run();
    assert_eq!(from_scenario.len(), from_flags.len());
    for (a, b) in from_scenario.iter().zip(&from_flags) {
        assert_eq!(a.runs.len(), 3);
        for (x, y) in a.runs.iter().zip(&b.runs) {
            assert_eq!(x.stats, y.stats, "scenario and flag paths diverged");
        }
    }
}

#[test]
fn three_way_scenario_keeps_pair_rows_bit_identical_to_concrete_runs() {
    // The acceptance criterion: adding a third system to the comparison
    // must not perturb the SILO and baseline rows.
    let scenario = Scenario::parse(
        "systems = SILO, baseline, silo-no-forward\n\
         workloads = zipf-shared\n\
         cores = 4\n\
         seed = 9\n\
         refs = 1200\n",
    )
    .expect("valid scenario");
    let records = Simulation::builder()
        .scenario(&scenario)
        .build()
        .expect("builds")
        .run_sequential();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].runs.len(), 3);

    let cfg = quick_cfg();
    let w = WorkloadSpec {
        refs_per_core: 1200,
        ..WorkloadSpec::zipf_shared()
    };
    assert_eq!(
        records[0].run("SILO").expect("ran").stats,
        run_silo(&cfg, &w, 9)
    );
    assert_eq!(
        records[0].run("baseline").expect("ran").stats,
        run_baseline(&cfg, &w, 9)
    );
}

#[test]
fn malformed_scenarios_produce_config_errors_not_panics() {
    for text in [
        "systems = ghost\n",
        "workloads = not-a-workload\n",
        "workloads = zipf:theta=big\n",
        "cores = 0\n",
        "cores = 99\n",
        "mlp = 0\n",
        "vault = warp\n",
        "refs = 0\n",
        "threads = 0\n",
    ] {
        let scenario = match Scenario::parse(text) {
            Ok(s) => s,
            // Some of these fail at parse time; that is fine too, as
            // long as the error is typed.
            Err(ConfigError::Scenario { .. }) => continue,
            Err(other) => panic!("'{text}' produced unexpected parse error {other:?}"),
        };
        let err = Simulation::builder()
            .scenario(&scenario)
            .build()
            .expect_err(text);
        // Every failure is a ConfigError with a useful message.
        assert!(!err.to_string().is_empty());
    }
}

#[test]
fn example_scenario_file_parses_builds_and_runs() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/paper_fig11.scenario");
    let scenario = Scenario::load(&path).expect("example scenario parses");
    assert!(
        scenario.systems.as_ref().expect("systems set").len() >= 3,
        "the example must be a >=3-way comparison"
    );
    assert!(scenario.warmup.is_some() && scenario.epoch.is_some());
    // Shrink the run so the test stays fast (scaling the warmup window
    // with it); the CI workflow runs the file as-is through the CLI.
    let records = Simulation::builder()
        .scenario(&scenario)
        .refs_per_core(300)
        .cores([2])
        .threads(2)
        .warmup_refs(60)
        .epoch_refs(200)
        .build()
        .expect("example scenario builds")
        .run();
    assert!(!records.is_empty());
    for r in &records {
        assert!(r.runs.len() >= 3);
        assert!(r.speedup().expect("SILO and baseline present") > 0.0);
        for run in &r.runs {
            assert_eq!(run.telemetry.timeline.total_refs(), 600);
        }
    }
}
