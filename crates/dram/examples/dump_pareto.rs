fn main() {
    let t = silo_dram::TechnologyParams::default();
    let s = silo_dram::VaultSweep::default();
    for p in s.pareto(&t) {
        println!(
            "{:>5} MiB  {:>6.2} ns  eff {:.3}  tile {}  page {}  banks/die {}",
            p.capacity_bucket_mib(),
            p.latency_ns,
            p.area_efficiency,
            p.config.tile,
            p.config.page_bytes,
            p.config.banks_per_die
        );
    }
}
