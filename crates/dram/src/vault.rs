//! Die-stacked vault design-space exploration (Fig. 8 and Table I).
//!
//! A SILO vault is a four-die stack of DRAM banks sitting directly above a
//! core, with a 5 mm^2 footprint matching the core beneath it (Sec. IV-D).
//! This module enumerates feasible vault designs over the same knobs the
//! paper sweeps — number of banks, page size, and tile dimensions (which
//! encode the divisions-per-bitline and divisions-per-wordline choices) —
//! and computes each design's capacity and access latency, producing the
//! capacity/latency scatter of Fig. 8 plus the latency-optimized and
//! capacity-optimized design points of Table I.

use crate::tech::{TechnologyParams, TileGeometry};

/// Geometry knobs of one vault design.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VaultConfig {
    /// Tile dimensions (bitline x local wordline cells).
    pub tile: TileGeometry,
    /// DRAM row (page) size in bytes.
    pub page_bytes: u32,
    /// Banks on each DRAM die of the stack.
    pub banks_per_die: u32,
    /// Fraction of the usable die area actually populated with DRAM
    /// arrays (1.0 = fill the footprint; smaller values model the
    /// low-capacity designs of Fig. 8 that deliberately underfill the
    /// 5 mm^2 budget).
    pub array_fraction: f64,
    /// Number of stacked DRAM dies (4 in the paper's conservative model).
    pub dies: u32,
    /// Vault footprint per die in mm^2 (5 mm^2, matching the core below).
    pub die_area_mm2: f64,
}

impl VaultConfig {
    /// Total banks visible to the vault controller.
    pub fn banks_per_vault(&self) -> u32 {
        self.banks_per_die * self.dies
    }
}

/// One evaluated design: the configuration plus its derived capacity,
/// latency and area efficiency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DesignPoint {
    /// The geometry that produced this point.
    pub config: VaultConfig,
    /// Usable vault capacity in bytes.
    pub capacity_bytes: u64,
    /// Random access latency of the vault array (ns), excluding the vault
    /// controller and link serialization (those are added by the system
    /// model).
    pub latency_ns: f64,
    /// Fraction of the whole die-stack area that is DRAM cells (includes
    /// tile periphery, bank decoders, I/O and any unfilled area), matching
    /// the paper's definition "DRAM cell area divided by total chip area".
    pub area_efficiency: f64,
}

impl DesignPoint {
    /// Capacity bucketed to the largest power-of-two MiB at or below the
    /// real capacity; Fig. 8's x-axis uses these buckets (8MB..512MB).
    pub fn capacity_bucket_mib(&self) -> u64 {
        let mib = self.capacity_bytes / (1024 * 1024);
        if mib == 0 {
            0
        } else {
            1u64 << (63 - mib.leading_zeros())
        }
    }

    /// Total tiles in the vault (used by the Table I tile-count ratio).
    pub fn tiles(&self) -> u64 {
        (self.capacity_bytes * 8) / self.config.tile.cells()
    }
}

/// The Fig. 8 sweep: evaluates every combination of the knob ranges.
#[derive(Clone, Debug)]
pub struct VaultSweep {
    /// Tile dimensions to try (square tiles).
    pub tile_dims: Vec<u32>,
    /// Page sizes to try, bytes.
    pub page_sizes: Vec<u32>,
    /// Banks-per-die values to try.
    pub banks_per_die: Vec<u32>,
    /// Array fill fractions to try.
    pub array_fractions: Vec<f64>,
    /// Dies in the stack.
    pub dies: u32,
    /// Die footprint, mm^2.
    pub die_area_mm2: f64,
}

impl Default for VaultSweep {
    fn default() -> Self {
        VaultSweep {
            tile_dims: vec![128, 256, 512, 1024, 2048],
            page_sizes: vec![512, 1024, 2048, 4096, 8192],
            banks_per_die: vec![4, 8, 16, 32, 64],
            array_fractions: vec![0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0],
            dies: 4,
            die_area_mm2: 5.0,
        }
    }
}

impl VaultSweep {
    /// Evaluates every design in the sweep, discarding infeasible ones
    /// (peripheral area exceeding the die budget or zero capacity).
    pub fn run(&self, tech: &TechnologyParams) -> Vec<DesignPoint> {
        let mut points = Vec::new();
        for &dim in &self.tile_dims {
            for &page in &self.page_sizes {
                // A page must span at least one tile row of cells.
                if (page as u64) * 8 < dim as u64 {
                    continue;
                }
                for &banks in &self.banks_per_die {
                    for &frac in &self.array_fractions {
                        let config = VaultConfig {
                            tile: TileGeometry::square(dim),
                            page_bytes: page,
                            banks_per_die: banks,
                            array_fraction: frac,
                            dies: self.dies,
                            die_area_mm2: self.die_area_mm2,
                        };
                        if let Some(p) = evaluate(tech, config) {
                            points.push(p);
                        }
                    }
                }
            }
        }
        points
    }

    /// Returns, for each power-of-two capacity bucket, the lowest-latency
    /// design (the lower envelope of the Fig. 8 scatter), sorted by
    /// capacity.
    pub fn pareto(&self, tech: &TechnologyParams) -> Vec<DesignPoint> {
        let mut best: std::collections::BTreeMap<u64, DesignPoint> =
            std::collections::BTreeMap::new();
        for p in self.run(tech) {
            let bucket = p.capacity_bucket_mib();
            if bucket == 0 {
                continue;
            }
            match best.get(&bucket) {
                Some(b) if b.latency_ns <= p.latency_ns => {}
                _ => {
                    best.insert(bucket, p);
                }
            }
        }
        best.into_values().collect()
    }

    /// The latency-optimized design point (Sec. IV-D): walking the Pareto
    /// envelope toward higher capacity, stop before the first doubling
    /// whose marginal latency increase exceeds `max_marginal` (the paper
    /// stops at 256 MB, where the next doubling costs ~80%).
    pub fn latency_optimized(
        &self,
        tech: &TechnologyParams,
        max_marginal: f64,
    ) -> Option<DesignPoint> {
        let pareto = self.pareto(tech);
        let mut chosen: Option<DesignPoint> = None;
        for p in pareto {
            match chosen {
                None => chosen = Some(p),
                Some(c) => {
                    let marginal = p.latency_ns / c.latency_ns - 1.0;
                    if marginal <= max_marginal {
                        chosen = Some(p);
                    } else {
                        break;
                    }
                }
            }
        }
        chosen
    }

    /// The capacity-optimized design point: the highest-capacity bucket's
    /// lowest-latency design (the paper's 512 MB point, justified for
    /// discrete DRAM caches where interconnect delays dwarf the array).
    pub fn capacity_optimized(&self, tech: &TechnologyParams) -> Option<DesignPoint> {
        self.pareto(tech).into_iter().last()
    }
}

/// Deepest row decoder a bank can drive: banks taller than this are not
/// buildable (commodity parts top out around 2^14 rows per bank).
pub const MAX_ROWS_PER_BANK: u64 = 16 * 1024;

/// Shallowest sensible bank (fewer rows wastes the decoder).
pub const MIN_ROWS_PER_BANK: u64 = 1024;

/// Evaluates a single vault configuration, returning `None` when the
/// peripheral area alone exceeds the die budget or the implied bank shape
/// is unbuildable (row decoder deeper than [`MAX_ROWS_PER_BANK`]).
///
/// The row-depth constraint is what couples page size, bank count and
/// capacity: a big, dense die cannot be carved into a few narrow-page
/// banks, so high-capacity designs are forced toward long rows and long
/// lines — the physics behind the Fig. 8 capacity/latency trade-off.
pub fn evaluate(tech: &TechnologyParams, config: VaultConfig) -> Option<DesignPoint> {
    if !(0.0..=1.0).contains(&config.array_fraction) || config.array_fraction <= 0.0 {
        return None;
    }
    let fixed = tech.die_io_mm2 + config.banks_per_die as f64 * tech.bank_fixed_mm2;
    let usable = (config.die_area_mm2 - fixed) * config.array_fraction;
    if usable <= 0.0 {
        return None;
    }
    let bits_per_die = tech.bits_in_area(config.tile, usable);
    let capacity_bytes = bits_per_die / 8 * config.dies as u64;
    if capacity_bytes == 0 {
        return None;
    }
    let bank_bits = bits_per_die / config.banks_per_die as u64;
    let rows_per_bank = bank_bits / (config.page_bytes as u64 * 8);
    if !(MIN_ROWS_PER_BANK..=MAX_ROWS_PER_BANK).contains(&rows_per_bank) {
        return None;
    }
    let latency_ns =
        tech.access_latency_ns(config.tile, config.page_bytes, config.banks_per_vault());
    let cell_area_mm2 = capacity_bytes as f64 * 8.0 * tech.cell_area_um2 / 1.0e6;
    let total_area_mm2 = config.die_area_mm2 * config.dies as f64;
    Some(DesignPoint {
        config,
        capacity_bytes,
        latency_ns,
        area_efficiency: cell_area_mm2 / total_area_mm2,
    })
}

/// One row of the Fig. 7 curve: a tile dimension with page size and bank
/// count scaled the way the paper's sweep does (smaller tiles come with
/// shorter pages and more banks), normalized to the 1024x1024 commodity
/// design.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig7Point {
    /// Square tile dimension in cells.
    pub tile_dim: u32,
    /// Access latency normalized to the 1024x1024 commodity baseline.
    pub norm_latency: f64,
    /// Array area per bit normalized to the same baseline.
    pub norm_area: f64,
}

/// Produces the Fig. 7 latency/area curve for a planar 1 Gb die.
///
/// The commodity baseline is a 1024x1024 tile, 8 KiB page, 8-bank chip
/// (Micron DDR3-class). Each smaller tile dimension is paired with a
/// proportionally shorter page and more banks, mirroring how the paper
/// varies banks, page size, Ndbl and Ndwl together.
pub fn fig7_curve(tech: &TechnologyParams) -> Vec<Fig7Point> {
    let chip_latency = |dim: u32| -> f64 {
        let page = (8192u64 * (dim as u64 * dim as u64) / (1024 * 1024)).clamp(512, 8192) as u32;
        let banks = (8u64 * (1024 * 1024) / (dim as u64 * dim as u64)).clamp(8, 128) as u32;
        // Planar chip: no TSV hop.
        tech.access_latency_ns(TileGeometry::square(dim), page, banks) - tech.t_tsv_ns
    };
    let base_lat = chip_latency(1024);
    let base_area = tech.area_factor(TileGeometry::square(1024));
    [1024u32, 512, 256, 128, 64]
        .iter()
        .map(|&dim| Fig7Point {
            tile_dim: dim,
            norm_latency: chip_latency(dim) / base_lat,
            norm_area: tech.area_factor(TileGeometry::square(dim)) / base_area,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> VaultSweep {
        VaultSweep::default()
    }

    fn tech() -> TechnologyParams {
        TechnologyParams::default()
    }

    #[test]
    fn sweep_produces_many_feasible_designs() {
        let pts = sweep().run(&tech());
        assert!(pts.len() > 50, "only {} designs", pts.len());
        for p in &pts {
            assert!(p.capacity_bytes > 0);
            assert!(p.latency_ns > 0.0);
            assert!(p.area_efficiency > 0.0 && p.area_efficiency < 1.0);
        }
    }

    #[test]
    fn pareto_is_sorted_and_monotone_enough() {
        let pareto = sweep().pareto(&tech());
        assert!(pareto.len() >= 4);
        for w in pareto.windows(2) {
            assert!(w[0].capacity_bucket_mib() < w[1].capacity_bucket_mib());
        }
    }

    #[test]
    fn fig8_latency_optimized_is_around_256mb_and_5_5ns() {
        let lat = sweep().latency_optimized(&tech(), 0.25).expect("point");
        let mib = lat.capacity_bucket_mib();
        assert!(
            (128..=256).contains(&mib),
            "latency-optimized bucket {mib} MiB outside [128,256]"
        );
        assert!(
            (4.5..=6.5).contains(&lat.latency_ns),
            "latency-optimized latency {} ns outside [4.5, 6.5]",
            lat.latency_ns
        );
    }

    #[test]
    fn fig8_capacity_optimized_is_around_512mb() {
        let cap = sweep().capacity_optimized(&tech()).expect("point");
        let mib = cap.capacity_bucket_mib();
        assert!(
            (512..=1024).contains(&mib),
            "capacity-optimized bucket {mib} MiB outside [512,1024]"
        );
    }

    #[test]
    fn table1_ratios_hold() {
        let s = sweep();
        let t = tech();
        let lat = s.latency_optimized(&t, 0.25).expect("lat point");
        let cap = s.capacity_optimized(&t).expect("cap point");
        // Paper Table I: capacity-optimized has ~1.74x better area
        // efficiency, ~1.8x higher latency, ~0.25x the tiles.
        let area_ratio = cap.area_efficiency / lat.area_efficiency;
        assert!(
            (1.3..=2.2).contains(&area_ratio),
            "area efficiency ratio {area_ratio} outside [1.3, 2.2]"
        );
        let lat_ratio = cap.latency_ns / lat.latency_ns;
        assert!(
            (1.5..=2.3).contains(&lat_ratio),
            "latency ratio {lat_ratio} outside [1.5, 2.3]"
        );
        assert!(
            cap.tiles() < lat.tiles(),
            "capacity-optimized should use fewer, larger tiles"
        );
    }

    #[test]
    fn fig8_small_vaults_pay_little_latency() {
        // Paper: 8MB -> 128MB costs < 10% latency; 256 -> 512 costs ~80%.
        let pareto = sweep().pareto(&tech());
        let by_bucket: std::collections::BTreeMap<u64, f64> = pareto
            .iter()
            .map(|p| (p.capacity_bucket_mib(), p.latency_ns))
            .collect();
        let min_lat = pareto
            .iter()
            .map(|p| p.latency_ns)
            .fold(f64::INFINITY, f64::min);
        if let Some(&l128) = by_bucket.get(&128) {
            assert!(
                l128 / min_lat < 1.15,
                "128MB latency {l128} vs min {min_lat} exceeds +15%"
            );
        }
        let (&last_bucket, &last_lat) = by_bucket.iter().next_back().unwrap();
        assert!(last_bucket >= 512);
        assert!(
            last_lat / min_lat > 1.5,
            "largest bucket latency {last_lat} vs min {min_lat} should jump"
        );
    }

    #[test]
    fn fig7_anchors() {
        let curve = fig7_curve(&tech());
        let find = |d: u32| curve.iter().find(|p| p.tile_dim == d).copied().unwrap();
        let p1024 = find(1024);
        assert!((p1024.norm_latency - 1.0).abs() < 1e-12);
        assert!((p1024.norm_area - 1.0).abs() < 1e-12);
        let p256 = find(256);
        assert!(
            (0.30..=0.45).contains(&p256.norm_latency),
            "256 latency {}",
            p256.norm_latency
        );
        assert!(
            (1.3..=1.7).contains(&p256.norm_area),
            "256 area {}",
            p256.norm_area
        );
        let p128 = find(128);
        let marginal = 1.0 - p128.norm_latency / p256.norm_latency;
        assert!(
            (-0.02..=0.12).contains(&marginal),
            "128 marginal latency gain {marginal}"
        );
        assert!(p128.norm_area > 2.0, "128 area {}", p128.norm_area);
        let p64 = find(64);
        assert!(p64.norm_area > p128.norm_area * 1.4);
    }

    #[test]
    fn capacity_bucket_rounds_down_to_power_of_two() {
        let mut p = evaluate(
            &tech(),
            VaultConfig {
                tile: TileGeometry::square(256),
                page_bytes: 512,
                banks_per_die: 32,
                array_fraction: 1.0,
                dies: 4,
                die_area_mm2: 5.0,
            },
        )
        .unwrap();
        p.capacity_bytes = 300 * 1024 * 1024;
        assert_eq!(p.capacity_bucket_mib(), 256);
        p.capacity_bytes = 100 * 1024;
        assert_eq!(p.capacity_bucket_mib(), 0);
    }

    #[test]
    fn evaluate_rejects_overcommitted_periphery() {
        // 64 banks at 0.045 mm^2 each plus IO > 3 mm^2 die: infeasible.
        let cfg = VaultConfig {
            tile: TileGeometry::square(256),
            page_bytes: 512,
            banks_per_die: 64,
            array_fraction: 1.0,
            dies: 4,
            die_area_mm2: 3.0,
        };
        assert!(evaluate(&tech(), cfg).is_none());
    }

    #[test]
    fn banks_per_vault_multiplies_dies() {
        let cfg = VaultConfig {
            tile: TileGeometry::square(256),
            page_bytes: 512,
            banks_per_die: 16,
            array_fraction: 1.0,
            dies: 4,
            die_area_mm2: 5.0,
        };
        assert_eq!(cfg.banks_per_vault(), 64);
    }
}
