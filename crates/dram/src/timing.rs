//! Bank/channel timing resources.
//!
//! The simulator models contention on DRAM banks (vault banks, main-memory
//! banks) and other serially-occupied resources with *next-free-time*
//! reservations: a request arriving at time `t` to a resource that is busy
//! until `f` starts service at `max(t, f)` and occupies the resource for
//! its service time. With a closed-page policy (assumed throughout the
//! paper, after BuMP) every access pays the full row cycle, so a single
//! occupancy number per access is an accurate model.

use silo_types::{Cycles, LineAddr};

/// A single serially-occupied resource with next-free-time semantics.
#[derive(Clone, Copy, Debug, Default)]
pub struct BankedResource {
    next_free: Cycles,
    busy_cycles: u64,
    accesses: u64,
}

impl BankedResource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the resource at `now` for `service` cycles; returns the
    /// cycle at which service *completes*.
    pub fn reserve(&mut self, now: Cycles, service: Cycles) -> Cycles {
        let start = now.max(self.next_free);
        let done = start + service;
        self.next_free = done;
        self.busy_cycles += service.as_u64();
        self.accesses += 1;
        done
    }

    /// Cycle at which the resource next becomes free.
    pub fn next_free(&self) -> Cycles {
        self.next_free
    }

    /// Total cycles of service performed.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Number of reservations made.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Clears reservation state and statistics.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// An array of banks addressed by scrambled line address, such as the
/// banks inside one DRAM vault or the banks of a main-memory channel.
#[derive(Clone, Debug)]
pub struct BankArray {
    banks: Vec<BankedResource>,
    service: Cycles,
}

impl BankArray {
    /// Creates `n_banks` banks each with the given per-access service
    /// (occupancy) time.
    ///
    /// # Panics
    ///
    /// Panics if `n_banks` is zero.
    pub fn new(n_banks: usize, service: Cycles) -> Self {
        assert!(n_banks > 0, "need at least one bank");
        BankArray {
            banks: vec![BankedResource::new(); n_banks],
            service,
        }
    }

    /// Number of banks.
    pub fn len(&self) -> usize {
        self.banks.len()
    }

    /// True when the array has no banks (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.banks.is_empty()
    }

    /// Per-access service time.
    pub fn service(&self) -> Cycles {
        self.service
    }

    /// Bank index for a line (scrambled to decorrelate from allocation
    /// patterns).
    pub fn bank_of(&self, line: LineAddr) -> usize {
        (line.scramble() % self.banks.len() as u64) as usize
    }

    /// Performs an access for `line` arriving at `now`: reserves the
    /// owning bank and returns the completion time (including any queuing
    /// delay behind earlier accesses to the same bank).
    pub fn access(&mut self, now: Cycles, line: LineAddr) -> Cycles {
        let bank = self.bank_of(line);
        self.banks[bank].reserve(now, self.service)
    }

    /// Performs an access that occupies the bank for a non-default
    /// duration (e.g. a multi-line directory update).
    pub fn access_with_service(&mut self, now: Cycles, line: LineAddr, service: Cycles) -> Cycles {
        let bank = self.bank_of(line);
        self.banks[bank].reserve(now, service)
    }

    /// Total accesses across all banks.
    pub fn total_accesses(&self) -> u64 {
        self.banks.iter().map(BankedResource::accesses).sum()
    }

    /// Total busy cycles across all banks.
    pub fn total_busy_cycles(&self) -> u64 {
        self.banks.iter().map(BankedResource::busy_cycles).sum()
    }

    /// Clears all reservations and statistics.
    pub fn reset(&mut self) {
        self.banks.iter_mut().for_each(BankedResource::reset);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = BankedResource::new();
        let done = r.reserve(Cycles(100), Cycles(10));
        assert_eq!(done, Cycles(110));
        assert_eq!(r.next_free(), Cycles(110));
    }

    #[test]
    fn busy_resource_queues() {
        let mut r = BankedResource::new();
        r.reserve(Cycles(0), Cycles(50));
        // Arrives at 10 while busy until 50: starts at 50, done at 60.
        let done = r.reserve(Cycles(10), Cycles(10));
        assert_eq!(done, Cycles(60));
        assert_eq!(r.busy_cycles(), 60);
        assert_eq!(r.accesses(), 2);
    }

    #[test]
    fn late_arrival_after_idle_gap() {
        let mut r = BankedResource::new();
        r.reserve(Cycles(0), Cycles(10));
        let done = r.reserve(Cycles(100), Cycles(10));
        assert_eq!(done, Cycles(110));
    }

    #[test]
    fn reset_clears_state() {
        let mut r = BankedResource::new();
        r.reserve(Cycles(0), Cycles(10));
        r.reset();
        assert_eq!(r.next_free(), Cycles::ZERO);
        assert_eq!(r.busy_cycles(), 0);
        assert_eq!(r.accesses(), 0);
    }

    #[test]
    fn bank_array_distributes_lines() {
        let arr = BankArray::new(16, Cycles(20));
        let mut seen = std::collections::HashSet::new();
        for i in 0..256 {
            seen.insert(arr.bank_of(LineAddr::new(i)));
        }
        assert!(seen.len() > 12, "only {} banks used", seen.len());
    }

    #[test]
    fn same_line_maps_to_same_bank() {
        let arr = BankArray::new(16, Cycles(20));
        assert_eq!(
            arr.bank_of(LineAddr::new(42)),
            arr.bank_of(LineAddr::new(42))
        );
    }

    #[test]
    fn bank_conflicts_serialize_but_distinct_banks_overlap() {
        let mut arr = BankArray::new(4, Cycles(100));
        let l = LineAddr::new(7);
        let first = arr.access(Cycles(0), l);
        let second = arr.access(Cycles(0), l);
        assert_eq!(first, Cycles(100));
        assert_eq!(second, Cycles(200), "same bank must serialize");

        // A line in a different bank is unaffected.
        let other = (0..64)
            .map(LineAddr::new)
            .find(|&x| arr.bank_of(x) != arr.bank_of(l))
            .expect("some line maps elsewhere");
        let third = arr.access(Cycles(0), other);
        assert_eq!(third, Cycles(100), "different bank should not queue");
    }

    #[test]
    fn array_statistics_accumulate() {
        let mut arr = BankArray::new(2, Cycles(10));
        for i in 0..8 {
            arr.access(Cycles(i * 5), LineAddr::new(i));
        }
        assert_eq!(arr.total_accesses(), 8);
        assert_eq!(arr.total_busy_cycles(), 80);
        arr.reset();
        assert_eq!(arr.total_accesses(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        BankArray::new(0, Cycles(10));
    }
}
