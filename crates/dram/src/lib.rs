//! Analytical DRAM technology model and bank timing resources.
//!
//! This crate replaces the CACTI-3DD technology analysis used by the SILO
//! paper (Sec. IV and VI-B). It provides:
//!
//! * [`tech`] — a tile-geometry area/latency model reproducing the
//!   capacity-vs-latency trade-off of Fig. 7: shorter bitlines/wordlines
//!   lower the access latency but add sense-amplifier and wordline-driver
//!   strips that cost area.
//! * [`vault`] — the die-stacked vault design-space sweep of Fig. 8 and the
//!   latency-/capacity-optimized design-point selection of Table I.
//! * [`timing`] — next-free-time bank/channel reservation models used by
//!   the simulator for DRAM cache vaults and main memory.
//!
//! # Examples
//!
//! ```
//! use silo_dram::tech::{TechnologyParams, TileGeometry};
//!
//! let tech = TechnologyParams::default();
//! let fast = tech.tile_latency_ns(TileGeometry::square(256));
//! let slow = tech.tile_latency_ns(TileGeometry::square(1024));
//! assert!(fast < slow);
//! ```

#![forbid(unsafe_code)]

pub mod tech;
pub mod timing;
pub mod vault;

pub use tech::{TechnologyParams, TileGeometry};
pub use timing::{BankArray, BankedResource};
pub use vault::{DesignPoint, VaultConfig, VaultSweep};
